"""Benchmarks: the beyond-paper ablation experiments."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import ExperimentConfig, run_experiment


def test_ablation_theory(benchmark):
    config = ExperimentConfig(scale="tiny", runs=3)
    results = run_once(benchmark, run_experiment, "ablation_theory", config)
    (result,) = results
    measured = result.series_by_name("measured").ys
    upper = result.series_by_name("upper_lemma4").ys
    lower = result.series_by_name("lower_lemma9").ys
    for m, u, lo in zip(measured, upper, lower):
        assert lo <= m <= u * 1.2  # bound holds up to run noise
    ratios = result.series_by_name("measured/lower").ys
    assert all(3.0 < r < 5.5 for r in ratios)


def test_ablation_sync(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "ablation_sync", bench_config)
    for result in results:
        exact = result.series_by_name("lazy_exact").ys
        paper = result.series_by_name("lazy_paper").ys
        push = result.series_by_name("local_push").ys
        # Exact and paper coordinators cost about the same.
        for e, p in zip(exact, paper):
            assert abs(e - p) / max(e, p) < 0.3
        # All three series decrease with the window.
        for ys in (exact, paper, push):
            assert ys[-1] < ys[0]


def test_ablation_structure(benchmark, bench_config):
    results = run_once(
        benchmark, run_experiment, "ablation_structure", bench_config
    )
    for result in results:
        assert (
            result.series_by_name("treap").ys
            == result.series_by_name("sorted").ys
        ), "treap and sorted-list candidate sets must be behaviourally equal"


def test_ablation_cache(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "ablation_cache", bench_config)
    for result in results:
        messages = result.series_by_name("messages").ys
        suppressed = result.series_by_name("suppressed_reports").ys
        # Cache 0 is the paper algorithm; any cache only removes messages.
        assert all(m <= messages[0] for m in messages)
        assert suppressed[0] == 0
        assert suppressed[-1] >= suppressed[1]


def test_ablation_obs1(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "ablation_obs1", bench_config)
    for result in results:
        measured = result.series_by_name("measured").ys
        obs1 = result.series_by_name("obs1_bound").ys
        lemma4 = result.series_by_name("lemma4_bound").ys
        xs = result.series_by_name("measured").xs
        by_method = dict(zip(xs, zip(measured, obs1, lemma4)))
        # Observation 1 never exceeds Lemma 4; equality under flooding.
        for method, (_m, o, l4) in by_method.items():
            assert o <= l4 * 1.0001, method
        # Random distribution: measured within the first-occurrence bound
        # (duplicates rarely land under the threshold at random k=5).
        m_rand, o_rand, _ = by_method["random"]
        assert m_rand <= o_rand * 1.5


def test_ablation_hash(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "ablation_hash", bench_config)
    for result in results:
        values = [series.ys[0] for series in result.series]
        assert max(values) / min(values) < 1.3, (
            "message counts should not depend on the hash family"
        )
