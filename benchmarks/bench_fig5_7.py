"""Benchmark: Figure 5.7 — sliding windows: per-site memory vs window size.

Paper shape: memory grows logarithmically in w (Lemma 10), far below w.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_7(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_7", bench_config)
    for result in results:
        mean = result.series_by_name("mean").ys
        ws = result.series_by_name("mean").xs
        # Sublinear: 32x window growth yields < 4x memory growth.
        assert mean[-1] / mean[0] < 4
        assert all(m < w for m, w in zip(mean, ws))
        maxima = result.series_by_name("max").ys
        assert all(mx >= mn for mx, mn in zip(maxima, mean))
