"""Benchmark: regenerate Table 5.1 (dataset summary)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_table5_1(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "table5_1", bench_config)
    (result,) = results
    # Distinct ratios match the paper's datasets to within 0.3 %.
    ratios = result.series_by_name("ratio").ys
    paper = result.series_by_name("paper_ratio").ys
    for got, want in zip(ratios, paper):
        assert abs(got - want) < 0.003
