"""Micro-benchmarks for the hot paths.

These measure raw throughput of the pieces that dominate experiment
runtimes: hashing, site ingestion, dominance-set maintenance, and the
two candidate-set backends (the wall-clock side of ``ablation_structure``).
"""

from __future__ import annotations

import numpy as np
from conftest import scenario_events

from repro import make_sampler
from repro.hashing import UnitHasher, unit_hash_array
from repro.structures.bottomk import BottomK
from repro.structures.dominance import SortedDominanceSet, TreapDominanceSet

_N = 20_000


def test_hash_murmur2_strings(benchmark):
    hasher = UnitHasher(1, "murmur2")
    items = [f"10.0.{i % 256}.{i // 256}>172.16.0.1" for i in range(2000)]

    def run():
        unit = hasher.unit
        for item in items:
            unit(item)

    benchmark(run)


def test_hash_mix64_vectorized(benchmark):
    ids = np.arange(_N, dtype=np.int64)
    benchmark(unit_hash_array, ids, 7)


def test_infinite_ingest_fast_path(benchmark):
    sites, elements = zip(*scenario_events("uniform", _N, 8, seed=0))
    hashes = unit_hash_array(np.array(elements), 5).tolist()

    def run():
        system = make_sampler(
            "infinite", num_sites=8, sample_size=16, seed=5, algorithm="mix64"
        )
        site_objs = system.sites
        network = system.network
        for element, h, site in zip(elements, hashes, sites):
            site_objs[site].observe_hashed(element, h, network)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def test_sliding_ingest(benchmark):
    events = scenario_events("sliding-churn", 10_000, 5, seed=1, window=200)

    def run():
        system = make_sampler(
            "sliding", num_sites=5, window=200, seed=3, algorithm="mix64"
        )
        system.observe_batch(events)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def _drive_dominance(structure_cls):
    rng = np.random.default_rng(2)
    arrivals = rng.integers(0, 2000, 5000).tolist()
    hashes = unit_hash_array(np.arange(2000), 9).tolist()

    def run():
        ds = structure_cls(1)
        for t, element in enumerate(arrivals):
            ds.expire(t)
            ds.observe(element, t + 300, hashes[element])
        return len(ds)

    return run


def test_dominance_sorted(benchmark):
    assert benchmark(_drive_dominance(SortedDominanceSet)) >= 1


def test_dominance_treap(benchmark):
    assert benchmark(_drive_dominance(TreapDominanceSet)) >= 1


def test_bottomk_offer(benchmark):
    hashes = unit_hash_array(np.arange(_N), 11).tolist()

    def run():
        bk = BottomK(64)
        for element, h in enumerate(hashes):
            bk.offer(h, element)
        return bk.threshold()

    threshold = benchmark(run)
    assert 0 < threshold < 1
