"""Benchmark: Figure 5.6 — ours vs Broadcast across dominate rates.

Paper shape: our cost falls as one site dominates (approaching
centralized monitoring); Broadcast stays above it throughout.  A
reproduction finding: Broadcast's cost is exactly distribution-
independent (synced thresholds), so its curve is flat.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_6(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_6", bench_config)
    for result in results:
        ours = result.series_by_name("ours").ys
        broadcast = result.series_by_name("broadcast").ys
        assert ours[-1] < ours[0]
        assert all(b > o for o, b in zip(ours, broadcast))
        assert max(broadcast) - min(broadcast) < 0.05 * max(broadcast)
