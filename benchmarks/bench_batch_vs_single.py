"""Batch vs single-item vs columnar ingestion through the unified protocol.

Quantifies the ingestion-path ladder on one stream:

* a loop of per-item ``observe`` calls (the slow floor);
* tuple-batch ``observe_batch`` (NumPy bulk hashing + chunked threshold
  pre-filtering; the >= 3x acceptance floor in ``tests/test_perf.py``);
* columnar ``observe_batch`` over an
  :class:`~repro.core.events.EventBatch` — the same workload with the
  tuple churn removed entirely (cached hash columns, array routing; the
  sharded-workload twin of this gap is gated >= 2x in
  ``tests/test_perf.py``).

All three paths produce byte-identical coordinator state (asserted in
the batch-equivalence tests).  The workload comes from the shared
scenario registry (:mod:`repro.perf.scenarios`) — the same ``uniform``
recipe the ``repro perf`` suite measures and CI gates.
"""

from __future__ import annotations

from conftest import scenario_batch, scenario_events

from repro import make_sampler

_N = 20_000
_SITES = 8
_SAMPLE = 16


def _workload():
    return scenario_events("uniform", _N, _SITES, seed=7)


def _build():
    return make_sampler(
        "infinite", num_sites=_SITES, sample_size=_SAMPLE, seed=5,
        algorithm="mix64",
    )


def test_single_item_observe(benchmark):
    events = _workload()

    def run():
        system = _build()
        observe = system.observe
        for site, element in events:
            observe(site, element)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def test_observe_batch(benchmark):
    events = _workload()

    def run():
        system = _build()
        system.observe_batch(events)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def test_observe_columnar(benchmark):
    # Workload generation stays outside the timer (like the other two
    # series); only the cheap EventBatch wrap is rebuilt per iteration,
    # so the hash-column cache is cold every run but the rng work is not
    # being measured.
    source = scenario_batch("uniform", _N, _SITES, seed=7)
    items, sites = source.items, source.sites

    def run():
        from repro import EventBatch

        system = _build()
        system.observe_batch(EventBatch(items, sites=sites))
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0
