"""Batch vs single-item ingestion through the unified protocol.

Quantifies what the vectorized ``observe_batch`` fast path buys over a
loop of per-item ``observe`` calls on the same stream.  The infinite
system's batch path pre-hashes the whole batch with NumPy and prunes
elements that provably cannot be reported (site thresholds only ever
decrease), so on duplicate-heavy streams it skips most of the per-element
Python work; both paths produce byte-identical coordinator state (also
asserted here and in the conformance tests).
"""

from __future__ import annotations

import numpy as np

from repro import make_sampler

_N = 20_000
_SITES = 8
_SAMPLE = 16


def _workload():
    rng = np.random.default_rng(7)
    elements = rng.integers(0, 5000, _N).tolist()
    sites = rng.integers(0, _SITES, _N).tolist()
    return list(zip(sites, elements))


def _build():
    return make_sampler(
        "infinite", num_sites=_SITES, sample_size=_SAMPLE, seed=5,
        algorithm="mix64",
    )


def test_single_item_observe(benchmark):
    events = _workload()

    def run():
        system = _build()
        observe = system.observe
        for site, element in events:
            observe(site, element)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def test_observe_batch(benchmark):
    events = _workload()

    def run():
        system = _build()
        system.observe_batch(events)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def test_batch_equals_single():
    # Not a timing: the two paths must agree exactly on sample and costs.
    events = _workload()
    single = _build()
    for site, element in events:
        single.observe(site, element)
    batched = _build()
    batched.observe_batch(events)
    assert batched.sample() == single.sample()
    assert batched.stats() == single.stats()
