"""Batch vs single-item ingestion through the unified protocol.

Quantifies what the vectorized ``observe_batch`` fast path buys over a
loop of per-item ``observe`` calls on the same stream (the acceptance
floor tracked by ``tests/test_perf.py`` is >= 3x on this 20k-element
infinite-window workload).  The batch path bulk-hashes with NumPy and
pre-filters elements that provably cannot be reported (site thresholds
only ever decrease, re-read chunk by chunk), so it skips most of the
per-element Python work; both paths produce byte-identical coordinator
state (asserted in the batch-equivalence tests).

The workload comes from the shared scenario registry
(:mod:`repro.perf.scenarios`) — the same ``uniform`` recipe the
``repro perf`` suite measures and CI gates.
"""

from __future__ import annotations

from conftest import scenario_events

from repro import make_sampler

_N = 20_000
_SITES = 8
_SAMPLE = 16


def _workload():
    return scenario_events("uniform", _N, _SITES, seed=7)


def _build():
    return make_sampler(
        "infinite", num_sites=_SITES, sample_size=_SAMPLE, seed=5,
        algorithm="mix64",
    )


def test_single_item_observe(benchmark):
    events = _workload()

    def run():
        system = _build()
        observe = system.observe
        for site, element in events:
            observe(site, element)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0


def test_observe_batch(benchmark):
    events = _workload()

    def run():
        system = _build()
        system.observe_batch(events)
        return system.total_messages

    messages = benchmark(run)
    assert messages > 0
