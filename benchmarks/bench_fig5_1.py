"""Benchmark: Figure 5.1 — messages vs elements per distribution method.

Paper shape: flooding ≫ random ≈ round-robin; cumulative curves concave.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_1(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_1", bench_config)
    for result in results:
        flooding = result.series_by_name("flooding").ys
        random = result.series_by_name("random").ys
        round_robin = result.series_by_name("round_robin").ys
        assert flooding[-1] > 2 * random[-1], result.title
        assert abs(random[-1] - round_robin[-1]) / random[-1] < 0.25
        # Concavity proxy: the second half adds fewer messages than the
        # first half (message rate decays as the sample stabilizes).
        mid = len(flooding) // 2
        for ys in (flooding, random):
            assert ys[-1] - ys[mid] < ys[mid] - 0
