"""Shared configuration for the benchmark suite.

Every paper table/figure has a ``bench_*`` module here.  Benchmarks run
the same experiment code as ``python -m repro run <id>`` at a reduced
scale (so ``pytest benchmarks/ --benchmark-only`` completes in minutes)
and assert the paper's qualitative shape on the produced series.

To regenerate figures at a larger scale, use the CLI:
``python -m repro run fig5_4 --scale medium --runs 10``.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The scale at which benchmark runs execute."""
    return ExperimentConfig(scale="tiny", runs=2)


@pytest.fixture(scope="session")
def bench_config_small() -> ExperimentConfig:
    """A single-run small-scale config for the heavier figures."""
    return ExperimentConfig(scale="small", runs=1)


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
