"""Shared configuration for the benchmark suite.

Every paper table/figure has a ``bench_*`` module here.  Benchmarks run
the same experiment code as ``python -m repro run <id>`` at a reduced
scale (so ``pytest benchmarks/ --benchmark-only`` completes in minutes)
and assert the paper's qualitative shape on the produced series.

To regenerate figures at a larger scale, use the CLI:
``python -m repro run fig5_4 --scale medium --runs 10``.
"""

from __future__ import annotations

import pytest

from repro.core.events import EventBatch
from repro.experiments import ExperimentConfig
from repro.perf import ScenarioParams, get_scenario


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The scale at which benchmark runs execute."""
    return ExperimentConfig(scale="tiny", runs=2)


@pytest.fixture(scope="session")
def bench_config_small() -> ExperimentConfig:
    """A single-run small-scale config for the heavier figures."""
    return ExperimentConfig(scale="small", runs=1)


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def scenario_events(
    name: str,
    n_events: int,
    num_sites: int,
    seed: int = 7,
    window: int = 64,
) -> list:
    """Build a workload from the shared perf scenario registry.

    The single source of stream-generation truth for these benchmarks —
    the ad-hoc ``rng.integers`` helpers that used to be copy-pasted
    across the ``bench_*`` modules now all resolve to
    :mod:`repro.perf.scenarios` recipes, the same ones ``repro perf run``
    measures and CI gates.
    """
    params = ScenarioParams(
        n_events=n_events, num_sites=num_sites, seed=seed, window=window
    )
    return get_scenario(name).build(params)


def scenario_batch(
    name: str,
    n_events: int,
    num_sites: int,
    seed: int = 7,
    window: int = 64,
) -> EventBatch:
    """The columnar twin of :func:`scenario_events`: the same workload as
    an :class:`~repro.core.events.EventBatch` (built fresh on every call,
    so benchmark iterations never reuse a warm hash-column cache).
    Raw-item scenarios (``sharded-uniform``) come back site-less —
    routing is still the driver's job there."""
    events = scenario_events(name, n_events, num_sites, seed, window)
    if isinstance(events, EventBatch):
        return events
    if events and not isinstance(events[0], tuple):
        return EventBatch(events)
    return EventBatch.from_events(events)
