"""Benchmark: Figure 5.5 — ours vs Broadcast across sample sizes.

Paper shape: both linear in s; Broadcast's slope considerably higher.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_5(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_5", bench_config)
    for result in results:
        ours = result.series_by_name("ours").ys
        broadcast = result.series_by_name("broadcast").ys
        assert all(b > o for o, b in zip(ours, broadcast))
        # Slope comparison between the first and last sample sizes.
        xs = result.series_by_name("ours").xs
        slope_ours = (ours[-1] - ours[0]) / (xs[-1] - xs[0])
        slope_bc = (broadcast[-1] - broadcast[0]) / (xs[-1] - xs[0])
        assert slope_bc > slope_ours
