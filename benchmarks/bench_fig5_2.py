"""Benchmark: Figure 5.2 — messages vs sample size s.

Paper shape: near-linear growth in s, distribution-dependent slope.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_2(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_2", bench_config)
    for result in results:
        for name in ("flooding", "random"):
            series = result.series_by_name(name)
            assert all(a < b for a, b in zip(series.ys, series.ys[1:]))
        flooding = result.series_by_name("flooding").ys
        random = result.series_by_name("random").ys
        assert flooding[-1] > 2 * random[-1]
