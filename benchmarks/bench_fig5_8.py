"""Benchmark: Figure 5.8 — sliding windows: messages vs window size.

Paper shape: messages decrease as the window grows (rarer sample churn).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_8(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_8", bench_config)
    for result in results:
        ys = result.series_by_name("messages").ys
        assert ys[-1] < ys[0], result.title
        # Mostly monotone decreasing (tiny-scale noise tolerated once).
        decreases = sum(a >= b for a, b in zip(ys, ys[1:]))
        assert decreases >= len(ys) - 2
