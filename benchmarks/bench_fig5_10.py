"""Benchmark: Figure 5.10 — sliding windows: messages vs sites.

Paper shape: total messages grow with the number of sites.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_10(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_10", bench_config)
    for result in results:
        ys = result.series_by_name("messages").ys
        assert all(a < b for a, b in zip(ys, ys[1:])), result.title
