"""Benchmark: Figure 5.9 — sliding windows: per-site memory vs sites.

Paper shape: per-site memory decreases as sites are added (each sees a
smaller share of the stream).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_9(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_9", bench_config)
    for result in results:
        ys = result.series_by_name("mean").ys
        assert ys[-1] < ys[0], result.title
