"""Benchmark: Figure 5.3 — messages vs number of sites k.

Paper shape: flooding linear in k; random nearly independent of k.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_3(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_3", bench_config)
    for result in results:
        ks = result.series_by_name("flooding").xs
        flooding = result.series_by_name("flooding").ys
        random = result.series_by_name("random").ys
        # Flooding grows at least half-proportionally to k.
        assert flooding[-1] / flooding[0] > 0.5 * ks[-1] / ks[0]
        # Random: < 2.5x growth across a 25x range of k.
        assert random[-1] / random[0] < 2.5
