"""Benchmark: Figure 5.4 — ours vs Algorithm Broadcast over the stream.

Paper shape: Broadcast sends several times more messages at k=100.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5_4(benchmark, bench_config):
    results = run_once(benchmark, run_experiment, "fig5_4", bench_config)
    for result in results:
        ours = result.series_by_name("ours").ys
        broadcast = result.series_by_name("broadcast").ys
        assert broadcast[-1] > 2 * ours[-1], result.title
        # Both cumulative series are non-decreasing.
        for ys in (ours, broadcast):
            assert all(a <= b for a, b in zip(ys, ys[1:]))
