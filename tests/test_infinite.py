"""Tests for the infinite-window protocol (Algorithms 1 & 2).

The strongest check is *exactness*: given a shared hash function, the
distributed sample must equal the centralized bottom-s of the union stream
at every point in time, regardless of how elements are distributed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CentralizedDistinctSampler,
    ConfigurationError,
    DistinctSamplerSystem,
)
from repro.errors import ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, Message, MessageKind


def drive(system, oracle, elements, sites):
    for element, site in zip(elements, sites):
        system.observe(site, element)
        oracle.observe(element)


class TestExactness:
    """Distributed sample == centralized bottom-s, always."""

    @pytest.mark.parametrize("num_sites", [1, 2, 5])
    @pytest.mark.parametrize("sample_size", [1, 3, 10])
    def test_equals_oracle_random_distribution(self, num_sites, sample_size):
        hasher = UnitHasher(99)
        system = DistinctSamplerSystem(num_sites, sample_size, hasher=hasher)
        oracle = CentralizedDistinctSampler(sample_size, hasher)
        rng = np.random.default_rng(num_sites * 100 + sample_size)
        for _ in range(1500):
            element = int(rng.integers(0, 300))
            site = int(rng.integers(0, num_sites))
            system.observe(site, element)
            oracle.observe(element)
            assert system.sample() == oracle.sample()
            assert system.threshold == oracle.threshold

    def test_equals_oracle_flooding(self):
        hasher = UnitHasher(5)
        system = DistinctSamplerSystem(4, 5, hasher=hasher)
        oracle = CentralizedDistinctSampler(5, hasher)
        rng = np.random.default_rng(0)
        for _ in range(800):
            element = int(rng.integers(0, 150))
            system.flood(element)
            oracle.observe(element)
            assert system.sample() == oracle.sample()

    def test_equals_oracle_adversarial_order(self):
        # All elements funnelled to one site, then duplicates from another.
        hasher = UnitHasher(7)
        system = DistinctSamplerSystem(2, 4, hasher=hasher)
        oracle = CentralizedDistinctSampler(4, hasher)
        for element in range(100):
            system.observe(0, element)
            oracle.observe(element)
        for element in range(100):
            system.observe(1, element)  # all duplicates, via the other site
            oracle.observe(element)
            assert system.sample() == oracle.sample()

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 2)),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_equals_oracle_hypothesis(self, pairs):
        hasher = UnitHasher(123)
        system = DistinctSamplerSystem(3, 4, hasher=hasher)
        oracle = CentralizedDistinctSampler(4, hasher)
        for element, site in pairs:
            system.observe(site, element)
            oracle.observe(element)
        assert system.sample() == oracle.sample()


class TestSampleSemantics:
    def test_sample_size_min_s_d(self):
        system = DistinctSamplerSystem(2, 10, seed=1)
        for element in range(4):
            system.observe(0, element)
        assert len(system.sample()) == 4  # d < s: whole distinct set
        for element in range(4, 50):
            system.observe(1, element)
        assert len(system.sample()) == 10  # d > s: exactly s

    def test_duplicates_never_grow_sample(self):
        system = DistinctSamplerSystem(2, 10, seed=1)
        for _ in range(30):
            system.observe(0, "same")
        assert system.sample() == ["same"]

    def test_sample_pairs_sorted(self):
        system = DistinctSamplerSystem(2, 5, seed=2)
        for element in range(100):
            system.observe(element % 2, element)
        pairs = system.sample_pairs()
        hashes = [h for h, _ in pairs]
        assert hashes == sorted(hashes)
        assert system.threshold == hashes[-1]

    def test_threshold_nonincreasing(self):
        system = DistinctSamplerSystem(3, 5, seed=3)
        last = 1.0
        rng = np.random.default_rng(0)
        for element in range(500):
            system.observe(int(rng.integers(0, 3)), element)
            assert system.threshold <= last
            last = system.threshold


class TestMessageAccounting:
    def test_two_messages_per_report(self):
        system = DistinctSamplerSystem(3, 5, seed=4)
        rng = np.random.default_rng(1)
        for element in range(400):
            system.observe(int(rng.integers(0, 3)), element)
        stats = system.network.stats
        assert stats.total_messages == 2 * stats.site_to_coordinator
        assert stats.site_to_coordinator == system.coordinator.reports_received

    def test_s1_duplicates_cost_nothing(self):
        # For s = 1 a repeat of the sampled element fails the strict test.
        system = DistinctSamplerSystem(1, 1, seed=5)
        system.observe(0, "a")
        base = system.total_messages
        for _ in range(50):
            system.observe(0, "a")
        assert system.total_messages == base

    def test_local_duplicates_cost_nothing_when_threshold_passed(self):
        # Once u_i < h(e), repeats of e at the same site are silent.
        hasher = UnitHasher(11)
        system = DistinctSamplerSystem(1, 3, hasher=hasher)
        for element in range(200):
            system.observe(0, element)
        # The next element is not in the sample: send it twice.
        probe = 10_001
        assert hasher.unit(probe) > system.threshold  # rejected candidate
        before = system.total_messages
        system.observe(0, probe)
        system.observe(0, probe)
        assert system.total_messages == before

    def test_sublinear_in_distinct_count(self):
        # On all-distinct streams the cost grows harmonically: 10x the
        # distinct elements costs nowhere near 10x the messages (Lemma 3).
        short = DistinctSamplerSystem(5, 10, seed=6, algorithm="mix64")
        rng = np.random.default_rng(2)
        for element in range(1000):
            short.observe(int(rng.integers(0, 5)), element)
        long = DistinctSamplerSystem(5, 10, seed=6, algorithm="mix64")
        rng = np.random.default_rng(2)
        for element in range(10_000):
            long.observe(int(rng.integers(0, 5)), element)
        assert long.total_messages < short.total_messages * 2

    def test_repeat_reports_cost_messages_for_s_greater_than_1(self):
        # Documented reproduction finding: Algorithms 1-2 as written re-send
        # repeats of *in-sample* elements when s > 1 — the site's scalar
        # threshold cannot distinguish "would enter the sample" from
        # "already in the sample".  Lemma 2's no-cost-for-repeats claim
        # holds only for s = 1 (see module docs of repro.core.infinite).
        hasher = UnitHasher(13)
        system = DistinctSamplerSystem(1, 5, hasher=hasher)
        for element in range(500):
            system.observe(0, element)
        # Pick a sampled element that is NOT the s-th smallest (strictly
        # below the threshold) and repeat it.
        victim = system.sample()[0]
        before = system.total_messages
        for _ in range(10):
            system.observe(0, victim)
        assert system.total_messages == before + 20  # 10 reports + replies
        # The sample itself is unaffected (duplicates never skew it).
        assert system.sample()[0] == victim


class TestSiteInvariants:
    def test_site_view_at_least_global(self):
        # u_i >= u at all times (Lemma 1's supporting invariant).
        system = DistinctSamplerSystem(4, 5, seed=7)
        rng = np.random.default_rng(3)
        for element in range(1000):
            system.observe(int(rng.integers(0, 4)), int(rng.integers(0, 200)))
            u = system.threshold
            for site in system.sites:
                assert site.u_local >= u

    def test_site_memory_is_one_float(self):
        # The site's protocol state is exactly u_local (O(1) memory).
        system = DistinctSamplerSystem(2, 5, seed=8)
        site = system.sites[0]
        assert set(site.__slots__) == {"site_id", "hasher", "u_local"}


class TestErrorsAndValidation:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            DistinctSamplerSystem(0, 5)
        with pytest.raises(ConfigurationError):
            DistinctSamplerSystem(3, 0)

    def test_site_rejects_foreign_message(self):
        system = DistinctSamplerSystem(2, 5, seed=9)
        bad = Message(COORDINATOR, 0, MessageKind.BROADCAST, 0.5)
        with pytest.raises(ProtocolError):
            system.sites[0].handle_message(bad, system.network)

    def test_coordinator_rejects_foreign_message(self):
        system = DistinctSamplerSystem(2, 5, seed=9)
        bad = Message(0, COORDINATOR, MessageKind.SW_REPORT, None)
        with pytest.raises(ProtocolError):
            system.coordinator.handle_message(bad, system.network)

    def test_properties(self):
        system = DistinctSamplerSystem(3, 7, seed=10)
        assert system.num_sites == 3
        assert system.sample_size == 7


class TestElementTypes:
    def test_string_elements(self):
        system = DistinctSamplerSystem(2, 3, seed=11)
        for name in ["alice", "bob", "carol", "alice"]:
            system.observe(0, name)
        assert set(system.sample()) == {"alice", "bob", "carol"}

    def test_tuple_elements(self):
        system = DistinctSamplerSystem(2, 3, seed=12)
        system.observe(0, ("10.0.0.1", "10.0.0.2"))
        system.observe(1, ("10.0.0.1", "10.0.0.2"))
        assert len(system.sample()) == 1
