"""Tests for the shape-fitting helpers, including fits of the real
experiment outputs (quantifying the paper's narrated shapes)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.fits import best_shape, fit_shape
from repro.experiments import ExperimentConfig, run_experiment


class TestFitShape:
    def test_linear_recovered(self):
        xs = [1, 2, 5, 10, 20]
        ys = [3 * x + 4 for x in xs]
        fit = fit_shape(xs, ys, "linear")
        assert fit.params[0] == pytest.approx(3.0)
        assert fit.params[1] == pytest.approx(4.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(40) == pytest.approx(124.0)

    def test_log_recovered(self):
        xs = [10, 100, 1000, 10000]
        ys = [2 * math.log(x) + 1 for x in xs]
        fit = fit_shape(xs, ys, "log")
        assert fit.params[0] == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_powerlaw_recovered(self):
        xs = [1, 2, 4, 8, 16]
        ys = [5 * x**1.5 for x in xs]
        fit = fit_shape(xs, ys, "powerlaw")
        assert fit.params[0] == pytest.approx(5.0, rel=1e-6)
        assert fit.params[1] == pytest.approx(1.5, rel=1e-6)
        assert fit.predict(32) == pytest.approx(5 * 32**1.5, rel=1e-6)

    def test_constant(self):
        fit = fit_shape([1, 2, 3], [7.0, 7.0, 7.0], "constant")
        assert fit.params == (0.0, 7.0)
        assert fit.r_squared == 1.0
        assert fit.predict(99) == 7.0

    def test_inverse_recovered(self):
        xs = [1, 2, 4, 8]
        ys = [10 / x + 3 for x in xs]
        fit = fit_shape(xs, ys, "inverse")
        assert fit.params[0] == pytest.approx(10.0)
        assert fit.params[1] == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_shape([1, 2], [1, 2], "cubic")
        with pytest.raises(ValueError):
            fit_shape([1], [1], "linear")
        with pytest.raises(ValueError):
            fit_shape([0, 1], [1, 2], "log")
        with pytest.raises(ValueError):
            fit_shape([1, 2], [0, 2], "powerlaw")
        with pytest.raises(ValueError):
            fit_shape([0, 1], [1, 2], "inverse")

    def test_best_shape_picks_right_model(self):
        xs = [1, 2, 4, 8, 16, 32]
        log_ys = [3 * math.log(x) + 2 for x in xs]
        assert best_shape(xs, log_ys).model in ("log", "powerlaw")
        lin_ys = [3 * x + 2 for x in xs]
        assert best_shape(xs, lin_ys).model == "linear"

    def test_best_shape_no_model(self):
        with pytest.raises(ValueError):
            best_shape([1, 2], [1, 2], models=())


class TestPaperShapesQuantified:
    """Fit the claimed functional forms to real experiment output."""

    @pytest.fixture(scope="class")
    def tiny(self):
        return ExperimentConfig(scale="tiny", runs=2, datasets=("oc48",))

    def test_memory_vs_window_is_logarithmic(self, tiny):
        (result,) = run_experiment("fig5_7", tiny)
        xs = result.series_by_name("mean").xs
        ys = result.series_by_name("mean").ys
        # At tiny scale the stream spans 800 slots; larger windows never
        # fill, so the curve saturates — fit only the filled-window regime.
        filled = [(x, y) for x, y in zip(xs, ys) if x <= 400]
        fxs = [x for x, _ in filled]
        fys = [y for _, y in filled]
        log_fit = fit_shape(fxs, fys, "log")
        lin_fit = fit_shape(fxs, fys, "linear")
        assert log_fit.r_squared > 0.95
        assert log_fit.r_squared > lin_fit.r_squared

    def test_messages_vs_s_is_near_linear(self, tiny):
        (result,) = run_experiment("fig5_2", tiny)
        for name in ("flooding", "random"):
            series = result.series_by_name(name)
            fit = fit_shape(series.xs, series.ys, "powerlaw")
            # "almost linearly": exponent near 1 (the ln(d/s) factor bends
            # it slightly below).
            assert 0.55 < fit.params[1] < 1.2, (name, fit.params)

    def test_flooding_vs_k_is_linear(self, tiny):
        (result,) = run_experiment("fig5_3", tiny)
        series = result.series_by_name("flooding")
        fit = fit_shape(series.xs, series.ys, "linear")
        assert fit.r_squared > 0.999  # exactly k x per-site cost

    def test_sw_messages_vs_window_is_inverse_like(self, tiny):
        (result,) = run_experiment("fig5_8", tiny)
        series = result.series_by_name("messages")
        fit = fit_shape(series.xs, series.ys, "powerlaw")
        # Messages ~ 1/w: exponent near -1.
        assert -1.5 < fit.params[1] < -0.6, fit.params
