"""Batch/single/columnar ingestion equivalence, for every registered variant.

The vectorized ``observe_batch`` overrides (bulk hashing, threshold
pre-filtering, same-slot dedup, per-copy delegation) must be *invisible*:
feeding N events through one ``observe_batch`` call has to leave the
sampler in exactly the state N single ``observe`` calls would — same
:class:`SampleResult`, same :class:`SamplerStats` (message counts
included), same full ``state_dict``.  The columnar
:class:`~repro.core.events.EventBatch` fast paths (cached hash columns,
array shard splits, vectorized dedup) carry the same contract: columnar
== tuple-batch == single-observe.  These tests pin all three legs for
every variant in the registry, under both the NumPy-vectorizable
``mix64`` hash and the scalar ``murmur2`` path.
"""

from __future__ import annotations

import pytest

from repro import EventBatch, SamplerConfig, make_sampler, sampler_variants
from repro.errors import ConfigurationError, ProtocolError

#: One config per registered variant and per concrete facade flavour.
CONFIGS = {
    "infinite": SamplerConfig(variant="infinite", num_sites=3, sample_size=4),
    "broadcast": SamplerConfig(variant="broadcast", num_sites=3, sample_size=4),
    "caching": SamplerConfig(variant="caching", num_sites=3, sample_size=4),
    "sliding-s1": SamplerConfig(variant="sliding", num_sites=3, window=12),
    "sliding-s1-paper": SamplerConfig(
        variant="sliding", num_sites=3, window=12, coordinator_mode="paper"
    ),
    "sliding-s3": SamplerConfig(
        variant="sliding", num_sites=3, window=12, sample_size=3
    ),
    "sliding-feedback": SamplerConfig(
        variant="sliding-feedback", num_sites=3, window=12, sample_size=3
    ),
    "sliding-local-push": SamplerConfig(
        variant="sliding-local-push", num_sites=3, window=12, sample_size=3
    ),
    "wr-infinite": SamplerConfig(
        variant="with-replacement", num_sites=3, sample_size=3
    ),
    "wr-sliding": SamplerConfig(
        variant="with-replacement", num_sites=3, window=12, sample_size=3
    ),
    # Sharded wrappers: the batch path additionally hash-partitions each
    # run across coordinator groups before the per-group fast paths run.
    "sharded-infinite": SamplerConfig(
        variant="sharded:infinite", num_sites=3, sample_size=4, shards=3
    ),
    "sharded-broadcast": SamplerConfig(
        variant="sharded:broadcast", num_sites=3, sample_size=4, shards=2
    ),
    "sharded-caching": SamplerConfig(
        variant="sharded:caching", num_sites=3, sample_size=4, shards=2
    ),
    "sharded-sliding-s1": SamplerConfig(
        variant="sharded:sliding", num_sites=3, window=12, shards=2
    ),
    "sharded-sliding-feedback": SamplerConfig(
        variant="sharded:sliding-feedback",
        num_sites=3,
        window=12,
        sample_size=3,
        shards=2,
    ),
    "sharded-sliding-local-push": SamplerConfig(
        variant="sharded:sliding-local-push",
        num_sites=3,
        window=12,
        sample_size=3,
        shards=2,
    ),
}


def slotted_workload(n_slots: int = 40, sites: int = 3) -> list:
    """Deterministic slot-stamped events with plenty of repeats.

    Every slot delivers five events, deliberately including an exact
    same-site/same-element repeat (the case the dedup fast paths must
    prove silent) and cross-slot repeats from a small id universe.
    """
    events = []
    for slot in range(1, n_slots + 1):
        base = (slot * 13) % 23
        events.append(((slot * 7) % sites, base, slot))
        events.append(((slot * 7 + 1) % sites, (base + 5) % 23, slot))
        # exact duplicate of the first arrival, same site, same slot
        events.append(((slot * 7) % sites, base, slot))
        events.append(((slot + 2) % sites, (slot * 31) % 47, slot))
        events.append(((slot + 2) % sites, (slot * 31) % 47, slot))
    return events


def flat_workload(n: int = 200, sites: int = 3) -> list:
    """Unstamped 2-tuple events (infinite-window driving)."""
    return [((i * 5) % sites, (i * 17) % 37) for i in range(n)]


@pytest.fixture(params=sorted(CONFIGS), ids=sorted(CONFIGS))
def config(request) -> SamplerConfig:
    return CONFIGS[request.param]


@pytest.mark.parametrize("algorithm", ["mix64", "murmur2"])
class TestBatchSingleEquivalence:
    def _pair(self, config, algorithm):
        config = SamplerConfig(**{**config.to_dict(), "algorithm": algorithm})
        return make_sampler(config), make_sampler(config)

    def _trio(self, config, algorithm):
        config = SamplerConfig(**{**config.to_dict(), "algorithm": algorithm})
        return make_sampler(config), make_sampler(config), make_sampler(config)

    @staticmethod
    def _assert_all_equal(single, batched, columnar):
        for other in (batched, columnar):
            assert single.sample() == other.sample()
            assert single.sample().pairs == other.sample().pairs
            assert single.sample().threshold == other.sample().threshold
            assert single.stats() == other.stats()
            assert single.state_dict() == other.state_dict()

    def test_slotted_stream(self, config, algorithm):
        single, batched, columnar = self._trio(config, algorithm)
        events = slotted_workload()
        for site, item, slot in events:
            single.observe(site, item, slot=slot)
        assert batched.observe_batch(events) == len(events)
        assert columnar.observe_batch(EventBatch.from_events(events)) == len(
            events
        )
        self._assert_all_equal(single, batched, columnar)

    def test_flat_stream(self, config, algorithm):
        if config.window:
            pytest.skip("flat stream drives the infinite-window variants")
        single, batched, columnar = self._trio(config, algorithm)
        events = flat_workload()
        for site, item in events:
            single.observe(site, item)
        assert batched.observe_batch(events) == len(events)
        assert columnar.observe_batch(EventBatch.from_events(events)) == len(
            events
        )
        self._assert_all_equal(single, batched, columnar)

    def test_mixed_stamped_and_unstamped(self, config, algorithm):
        """2-tuples interleaved after slot stamps join the current slot."""
        single, batched = self._pair(config, algorithm)
        events = [
            (0, 3, 1),
            (1, 9),
            (2, 3),
            (0, 14, 2),
            (0, 14),
            (1, 21, 4),
            (2, 21),
        ]
        for event in events:
            if len(event) == 3:
                single.observe(event[0], event[1], slot=event[2])
            else:
                single.observe(event[0], event[1])
        assert batched.observe_batch(events) == len(events)
        assert single.sample() == batched.sample()
        assert single.stats() == batched.stats()
        assert single.state_dict() == batched.state_dict()

    def test_incremental_batches_match_one_batch(self, config, algorithm):
        """Chunked observe_batch calls compose to the same state."""
        one, chunked = self._pair(config, algorithm)
        events = slotted_workload(n_slots=20)
        one.observe_batch(events)
        for start in range(0, len(events), 7):
            chunked.observe_batch(events[start : start + 7])
        assert one.sample() == chunked.sample()
        assert one.stats() == chunked.stats()
        assert one.state_dict() == chunked.state_dict()

    def test_incremental_columnar_batches_compose(self, config, algorithm):
        """Chunked EventBatch ingestion composes like chunked tuples."""
        one, chunked = self._pair(config, algorithm)
        events = slotted_workload(n_slots=20)
        one.observe_batch(EventBatch.from_events(events))
        for start in range(0, len(events), 7):
            chunked.observe_batch(
                EventBatch.from_events(events[start : start + 7])
            )
        assert one.sample() == chunked.sample()
        assert one.stats() == chunked.stats()
        assert one.state_dict() == chunked.state_dict()

    def test_columnar_via_engine_explicit_policy(self, config, algorithm):
        """An Engine pass-through delivers a columnar batch unchanged."""
        from repro.runtime.engine import Engine

        direct, routed = self._pair(config, algorithm)
        events = slotted_workload(n_slots=15)
        batch = EventBatch.from_events(events)
        direct.observe_batch(batch)
        engine = Engine(routed, policy="explicit")
        assert engine.observe_batch(batch) == len(events)
        assert direct.sample() == routed.sample()
        assert direct.stats() == routed.stats()
        assert direct.state_dict() == routed.state_dict()


class TestBatchEdgeCases:
    def test_empty_batch(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=2)
        assert sampler.observe_batch([]) == 0
        assert sampler.observe_batch(iter(())) == 0
        assert sampler.stats().messages_total == 0

    def test_generator_input(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=4)
        assert sampler.observe_batch((i % 2, i) for i in range(50)) == 50

    def test_longer_events_still_advance_like_the_generic_loop(self):
        """Anything that is not a 2-tuple is slot-stamped via event[2],
        exactly as in the generic Sampler.observe_batch branch."""
        single = make_sampler("sliding", num_sites=2, window=8)
        batched = make_sampler("sliding", num_sites=2, window=8)
        events = [(0, 1, 3, "extra"), (1, 2, 5, "extra")]
        for site, item, slot, _ in events:
            single.observe(site, item, slot=slot)
        batched.observe_batch(events)
        assert batched.current_slot == 5
        assert single.sample() == batched.sample()
        assert single.stats() == batched.stats()

    def test_non_monotone_slot_raises(self):
        sampler = make_sampler("sliding", num_sites=2, window=8)
        with pytest.raises(ProtocolError):
            sampler.observe_batch([(0, 1, 5), (0, 2, 3)])
        # The first run was delivered before the bad stamp raised.
        assert sampler.current_slot == 5

    def test_mix64_rejects_non_integers_in_batch(self):
        sampler = make_sampler(
            "infinite", num_sites=2, sample_size=2, algorithm="mix64"
        )
        with pytest.raises(TypeError):
            sampler.observe_batch([(0, "alice"), (1, "bob")])

    def test_mix64_bools_match_scalar_path(self):
        """bools must dodge NumPy coercion and hash like the scalar path."""
        single = make_sampler(
            "infinite", num_sites=2, sample_size=4, algorithm="mix64"
        )
        batched = make_sampler(
            "infinite", num_sites=2, sample_size=4, algorithm="mix64"
        )
        events = [(0, True), (1, 1), (0, False), (1, 0), (0, 7)]
        for site, item in events:
            single.observe(site, item)
        batched.observe_batch(events)
        assert single.sample() == batched.sample()
        assert single.stats() == batched.stats()

    def test_mix64_huge_ints_fall_back(self):
        """Out-of-int64 ints take the scalar hasher, same as the loop."""
        single = make_sampler(
            "infinite", num_sites=1, sample_size=4, algorithm="mix64"
        )
        batched = make_sampler(
            "infinite", num_sites=1, sample_size=4, algorithm="mix64"
        )
        events = [(0, 2**80), (0, -(2**70)), (0, 5)]
        for site, item in events:
            single.observe(site, item)
        batched.observe_batch(events)
        assert single.sample() == batched.sample()
        assert single.stats() == batched.stats()

    def test_empty_columnar_batch(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=2)
        assert sampler.observe_batch(EventBatch.from_events([])) == 0
        assert sampler.stats().messages_total == 0

    def test_mixed_arity_events_keep_the_tuple_path(self):
        with pytest.raises(ConfigurationError):
            EventBatch.from_events([(0, 1, 3), (1, 9)])

    def test_exotic_elements_keep_the_tuple_path(self):
        with pytest.raises(ConfigurationError):
            EventBatch.from_events([(0, "alice")])
        with pytest.raises(ConfigurationError):
            EventBatch.from_events([(0, True), (1, 1)])
        with pytest.raises(ConfigurationError):
            EventBatch.from_events([(0, 2**80)])

    def test_siteless_batch_needs_an_engine(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=2)
        with pytest.raises(ConfigurationError, match="no site column"):
            sampler.observe_batch(EventBatch([1, 2, 3]))

    def test_every_variant_is_covered_here(self):
        assert set(sampler_variants()) == {c.variant for c in CONFIGS.values()}


class TestDelayedNetworkEquivalence:
    """The dedup proofs assume synchronous replies; on a DelayedNetwork
    a same-slot repeat legitimately re-reports (the reply that would
    have lowered the site threshold is still queued), so the batch path
    must skip the dedup there and match the loop message-for-message."""

    @pytest.mark.parametrize(
        "variant_config",
        [
            CONFIGS["sliding-s1"],
            CONFIGS["sliding-s3"],
            CONFIGS["sliding-local-push"],
            CONFIGS["infinite"],
        ],
        ids=["sliding-s1", "sliding-s3", "sliding-local-push", "infinite"],
    )
    def test_batch_matches_loop_under_delay(self, variant_config):
        from repro.netsim.delayed import DelayedNetwork

        def build():
            sampler = make_sampler(variant_config)
            DelayedNetwork.rewire(sampler)
            return sampler

        single, batched, columnar = build(), build(), build()
        assert single.network.synchronous is False
        # Same-site same-slot repeats: the case synchronous dedup elides.
        events = [(0, 5, 1), (0, 5, 1), (0, 7, 1), (1, 5, 1), (0, 5, 2)]
        if not variant_config.window:
            events = [event[:2] for event in events]
        for event in events:
            if len(event) == 3:
                single.observe(event[0], event[1], slot=event[2])
            else:
                single.observe(event[0], event[1])
        batched.observe_batch(events)
        columnar.observe_batch(EventBatch.from_events(events))
        assert single.stats() == batched.stats()
        assert single.stats() == columnar.stats()
        single.network.pump()
        batched.network.pump()
        columnar.network.pump()
        assert single.sample() == batched.sample() == columnar.sample()
        assert single.stats() == batched.stats() == columnar.stats()
