"""Tests for harmonic numbers, the paper's bounds, and stats helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    EULER_GAMMA,
    Summary,
    drs_message_bound,
    harmonic,
    harmonic_diff,
    lower_bound_total,
    optimality_gap,
    ratio_to_bound,
    sliding_window_space,
    summarize,
    upper_bound_observation1,
    upper_bound_per_site,
    upper_bound_total,
)


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_large_matches_asymptotic(self):
        n = 10_000_000
        approx = math.log(n) + EULER_GAMMA
        assert harmonic(n) == pytest.approx(approx, rel=1e-8)

    def test_continuity_at_table_boundary(self):
        # Exact table ends at 1e6; the asymptotic must join smoothly.
        below = harmonic(1_000_000)
        above = harmonic(1_000_001)
        assert 0 < above - below < 2e-6

    def test_diff(self):
        assert harmonic_diff(100, 10) == pytest.approx(
            harmonic(100) - harmonic(10)
        )
        assert harmonic_diff(5, 5) == 0.0

    def test_errors(self):
        with pytest.raises(ValueError):
            harmonic(-1)
        with pytest.raises(ValueError):
            harmonic_diff(5, 10)


class TestBounds:
    def test_per_site_small_d(self):
        assert upper_bound_per_site(10, 5) == 10.0  # 2 * d_i when d_i <= s

    def test_per_site_formula(self):
        s, d = 10, 1000
        want = 2 * s + 2 * s * (harmonic(d) - harmonic(s))
        assert upper_bound_per_site(s, d) == pytest.approx(want)

    def test_total_is_k_times_per_site(self):
        assert upper_bound_total(7, 10, 500) == pytest.approx(
            7 * upper_bound_per_site(10, 500)
        )

    def test_observation1_tighter_when_partitioned(self):
        k, s, d = 10, 10, 10_000
        flooded = upper_bound_total(k, s, d)
        partitioned = upper_bound_observation1(k, s, [d // k] * k)
        assert partitioned < flooded

    def test_observation1_equals_lemma4_when_flooded(self):
        k, s, d = 5, 10, 1000
        assert upper_bound_observation1(k, s, [d] * k) == pytest.approx(
            upper_bound_total(k, s, d)
        )

    def test_observation1_length_check(self):
        with pytest.raises(ValueError):
            upper_bound_observation1(3, 10, [100, 100])

    def test_lower_bound_formula(self):
        k, s, d = 5, 10, 1000
        want = 0.5 * k * s * (harmonic(d) - harmonic(s) + 1)
        assert lower_bound_total(k, s, d) == pytest.approx(want)

    def test_lower_bound_small_d(self):
        assert lower_bound_total(8, 10, 4) == 8.0  # k*d/4 regime

    def test_gap_approaches_four(self):
        # upper/lower = 4 * (1 + H_d - H_s) / (H_d - H_s + 1) = 4 exactly
        # in this parameterization.
        assert optimality_gap(5, 10, 10_000) == pytest.approx(4.0)
        assert optimality_gap(100, 20, 10**6) == pytest.approx(4.0)

    def test_bounds_monotone_in_d(self):
        values = [upper_bound_total(5, 10, d) for d in (100, 1000, 10_000)]
        assert values == sorted(values)
        lows = [lower_bound_total(5, 10, d) for d in (100, 1000, 10_000)]
        assert lows == sorted(lows)

    def test_sliding_window_space(self):
        assert sliding_window_space(0) == 0.0
        assert sliding_window_space(100) == pytest.approx(harmonic(100))
        with pytest.raises(ValueError):
            sliding_window_space(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            upper_bound_total(0, 10, 100)
        with pytest.raises(ValueError):
            upper_bound_total(5, 0, 100)
        with pytest.raises(ValueError):
            upper_bound_total(5, 10, -1)


class TestDRSBound:
    def test_small_s_regime(self):
        k, s, n = 100, 2, 10**6  # s < k/8
        want = k * math.log(n / s) / math.log(k / s)
        assert drs_message_bound(k, s, n) == pytest.approx(want)

    def test_large_s_regime(self):
        k, s, n = 10, 50, 10**6  # s >= k/8
        assert drs_message_bound(k, s, n) == pytest.approx(
            s * math.log(n / s)
        )

    def test_tiny_n(self):
        assert drs_message_bound(10, 5, 3) == 3.0

    def test_dds_exceeds_drs_asymptotically(self):
        # The intro's comparison: DDS cost grows as k*s, DRS as max(k, s).
        k, s = 50, 50
        dds = upper_bound_total(k, s, 10**6)
        drs = drs_message_bound(k, s, 10**6)
        assert dds > 10 * drs


class TestStats:
    def test_summarize_single(self):
        summary = summarize([5.0])
        assert summary == Summary(mean=5.0, std=0.0, low=5.0, high=5.0, n=1)

    def test_summarize_many(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)
        assert summary.low < 2.0 < summary.high
        assert summary.n == 3

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ratio_to_bound(self):
        assert ratio_to_bound(8.0, 4.0) == 2.0
        assert ratio_to_bound(8.0, 0.0) == math.inf
