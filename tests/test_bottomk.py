"""Tests for the BottomK structure (the coordinator's sample store)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.bottomk import BottomK


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BottomK(0)

    def test_empty(self):
        bk = BottomK(3)
        assert len(bk) == 0
        assert not bk.is_full
        assert bk.threshold() == 1.0
        assert bk.elements() == []
        assert bk.min_pair() is None

    def test_fill_and_threshold(self):
        bk = BottomK(2)
        assert bk.offer(0.5, "a") == (True, None)
        assert bk.threshold() == 1.0  # not yet full
        assert bk.offer(0.3, "b") == (True, None)
        assert bk.threshold() == 0.5  # full: s-th smallest hash
        assert bk.elements() == ["b", "a"]

    def test_eviction(self):
        bk = BottomK(2)
        bk.offer(0.5, "a")
        bk.offer(0.3, "b")
        accepted, evicted = bk.offer(0.1, "c")
        assert accepted and evicted == "a"
        assert bk.elements() == ["c", "b"]
        assert bk.threshold() == 0.3

    def test_rejection_above_threshold(self):
        bk = BottomK(2)
        bk.offer(0.2, "a")
        bk.offer(0.3, "b")
        assert bk.offer(0.9, "c") == (False, None)
        assert "c" not in bk

    def test_duplicate_is_noop(self):
        bk = BottomK(2)
        bk.offer(0.2, "a")
        assert bk.offer(0.2, "a") == (False, None)
        assert len(bk) == 1

    def test_contains(self):
        bk = BottomK(2)
        bk.offer(0.2, "a")
        assert "a" in bk
        assert "z" not in bk

    def test_discard(self):
        bk = BottomK(3)
        bk.offer(0.2, "a")
        bk.offer(0.4, "b")
        assert bk.discard("a") is True
        assert bk.discard("a") is False
        assert bk.elements() == ["b"]

    def test_min_pair(self):
        bk = BottomK(3)
        bk.offer(0.4, "b")
        bk.offer(0.2, "a")
        assert bk.min_pair() == (0.2, "a")

    def test_clear(self):
        bk = BottomK(2)
        bk.offer(0.2, "a")
        bk.clear()
        assert len(bk) == 0
        assert bk.threshold() == 1.0


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.integers(0, 500)),
            max_size=150,
            # Unique elements AND unique hashes: ties between distinct
            # elements are measure-zero with real hashes, and the structure
            # resolves them first-come (either resolution is a valid
            # bottom-k).
            unique_by=(lambda p: p[1], lambda p: p[0]),
        ),
        st.integers(1, 12),
    )
    @settings(max_examples=120)
    def test_keeps_exactly_bottom_k(self, pairs, capacity):
        bk = BottomK(capacity)
        for h, element in pairs:
            bk.offer(h, element)
        bk.check_invariants()
        expected = sorted(pairs)[:capacity]
        assert bk.pairs() == expected

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.integers(0, 100)),
            max_size=80,
            unique_by=lambda p: p[1],
        )
    )
    @settings(max_examples=80)
    def test_threshold_monotone_nonincreasing(self, pairs):
        bk = BottomK(5)
        last = 1.0
        for h, element in pairs:
            bk.offer(h, element)
            threshold = bk.threshold()
            assert threshold <= last
            last = threshold

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.integers(0, 100)),
            min_size=1,
            max_size=60,
            unique_by=lambda p: p[1],
        ),
        st.data(),
    )
    @settings(max_examples=60)
    def test_discard_consistency(self, pairs, data):
        bk = BottomK(8)
        for h, element in pairs:
            bk.offer(h, element)
        retained = bk.elements()
        if retained:
            victim = data.draw(st.sampled_from(retained))
            assert bk.discard(victim)
            bk.check_invariants()
            assert victim not in bk
