"""Unit tests for the chaos-mode transport (drop/duplicate/reorder/dead
sites).  The protocol-level convergence guarantees live in
``test_properties.py``; this file pins the transport mechanics: seeded
determinism, counting semantics, and the dead-site blackhole rules."""

from __future__ import annotations

import pytest

from repro import CentralizedDistinctSampler, DistinctSamplerSystem
from repro.errors import ConfigurationError, ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, ChaosNetwork, MessageKind


class Collector:
    def __init__(self):
        self.payloads = []

    def handle_message(self, message, network):
        self.payloads.append(message.payload)


def linked_net(**kwargs):
    net = ChaosNetwork(**kwargs)
    node = Collector()
    net.register(0, node)
    net.register(1, Collector())
    return net, node


class TestValidation:
    @pytest.mark.parametrize("field", ["drop", "duplicate", "reorder"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probabilities_are_checked(self, field, value):
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosNetwork(**{field: value})

    def test_unknown_profile_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown link profile"):
            ChaosNetwork(link_profiles={(0, 1): {"lose": 0.5}})

    def test_profile_probability_checked(self):
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosNetwork(link_profiles={(0, 1): {"drop": 2.0}})

    def test_unknown_destination_rejected_uncounted(self):
        net, _ = linked_net()
        with pytest.raises(ProtocolError, match="no node registered"):
            net.send(COORDINATOR, 99, MessageKind.REPORT, None)
        assert net.stats.total_messages == 0
        assert net.dropped_messages == 0


class TestDropDuplicateReorder:
    def test_certain_drop_counts_send_but_delivers_nothing(self):
        net, node = linked_net(drop=1.0)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        # The sender paid for the message (it was sent), the network ate it.
        assert net.stats.total_messages == 1
        assert net.dropped_messages == 1
        assert net.in_flight == 0
        assert net.pump() == 0
        assert node.payloads == []

    def test_certain_duplication_delivers_twice(self):
        net, node = linked_net(duplicate=1.0)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        assert net.stats.total_messages == 1  # the copy is the network's fault
        assert net.duplicated_messages == 1
        assert net.in_flight == 2
        assert net.pump() == 2
        assert node.payloads == [0.5, 0.5]

    def test_reorder_perturbs_fifo_and_counts(self):
        net, node = linked_net(reorder=1.0, seed=3)
        for i in range(6):
            net.send(COORDINATOR, 0, MessageKind.THRESHOLD, i)
        assert net.pump() == 6
        assert sorted(node.payloads) == [0, 1, 2, 3, 4, 5]
        assert node.payloads != [0, 1, 2, 3, 4, 5]
        assert net.reordered_messages > 0

    def test_same_seed_same_fault_schedule(self):
        def run(seed):
            net, node = linked_net(
                drop=0.3, duplicate=0.3, reorder=0.3, seed=seed
            )
            for i in range(40):
                net.send(COORDINATOR, 0, MessageKind.THRESHOLD, i)
            net.pump()
            return (
                node.payloads,
                net.dropped_messages,
                net.duplicated_messages,
                net.reordered_messages,
            )

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_link_profiles_override_defaults(self):
        net, node = linked_net(
            drop=0.0, link_profiles={(COORDINATOR, 1): {"drop": 1.0}}
        )
        assert net.link_profile(COORDINATOR, 0) == (0.0, 0.0, 0.0)
        assert net.link_profile(COORDINATOR, 1) == (1.0, 0.0, 0.0)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.1)
        net.send(COORDINATOR, 1, MessageKind.THRESHOLD, 0.2)
        assert net.dropped_messages == 1
        assert net.pump() == 1
        assert node.payloads == [0.1]


class TestDeadSites:
    def test_kill_requires_registered_address(self):
        net, _ = linked_net()
        with pytest.raises(ProtocolError, match="no node registered"):
            net.kill_site(7)

    def test_dead_source_sends_nothing_and_pays_nothing(self):
        net, node = linked_net()
        net.kill_site(1)
        assert net.dead_sites == frozenset({1})
        net.send(1, 0, MessageKind.REPORT, "from-the-grave")
        assert net.stats.total_messages == 0
        assert net.dropped_messages == 1
        net.pump()
        assert node.payloads == []

    def test_dead_destination_counts_the_send_but_swallows_it(self):
        net, _ = linked_net()
        net.kill_site(0)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        # The sender did send (and pays); the dead node never sees it.
        assert net.stats.total_messages == 1
        assert net.dropped_messages == 1
        assert net.in_flight == 0

    def test_queued_message_dropped_if_destination_dies_before_delivery(self):
        net, node = linked_net()
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        assert net.in_flight == 1
        net.kill_site(0)
        assert net.pump() == 0
        assert net.dropped_messages == 1
        assert node.payloads == []

    def test_revive_restores_delivery_without_replay(self):
        net, node = linked_net()
        net.kill_site(0)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, "lost")
        net.revive_site(0)
        net.revive_site(0)  # idempotent
        assert net.dead_sites == frozenset()
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, "kept")
        net.pump()
        assert node.payloads == ["kept"]


class TestChaosOverProtocol:
    def test_duplication_and_reorder_are_invisible_at_quiescence(self):
        hasher = UnitHasher(23)
        system = DistinctSamplerSystem(3, 5, hasher=hasher)
        ChaosNetwork.rewire(system, duplicate=0.4, reorder=0.4, seed=23)
        oracle = CentralizedDistinctSampler(5, hasher)
        for i in range(1500):
            element = (i * 131) % 240
            system.observe(i % 3, element)
            oracle.observe(element)
        system.network.pump()
        assert system.network.duplicated_messages > 0
        assert system.sample() == oracle.sample()

    def test_chaos_drops_still_count_message_costs(self):
        hasher = UnitHasher(29)
        system = DistinctSamplerSystem(2, 3, hasher=hasher)
        ChaosNetwork.rewire(system, drop=0.5, seed=29)
        for i in range(400):
            system.observe(i % 2, (i * 37) % 90)
        system.network.pump()
        assert system.network.dropped_messages > 0
        # Chaos drops happen in the network, after the sender paid.
        assert system.network.stats.total_messages >= (
            system.network.delivered_messages
        )
