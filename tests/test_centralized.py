"""Tests for the centralized reference samplers (the oracles themselves)."""

from __future__ import annotations

import pytest

from repro import CentralizedDistinctSampler, CentralizedWindowSampler
from repro.errors import ConfigurationError
from repro.hashing import UnitHasher


class TestCentralizedDistinct:
    def test_bottom_s_semantics(self):
        hasher = UnitHasher(1)
        sampler = CentralizedDistinctSampler(3, hasher)
        elements = list(range(50))
        for element in elements:
            sampler.observe(element)
        want = sorted(elements, key=hasher.unit)[:3]
        assert sampler.sample() == want
        assert sampler.elements_seen == 50

    def test_duplicates_ignored(self):
        sampler = CentralizedDistinctSampler(5, UnitHasher(2))
        for _ in range(20):
            sampler.observe("x")
        assert sampler.sample() == ["x"]

    def test_observe_hashed(self):
        hasher = UnitHasher(3)
        a = CentralizedDistinctSampler(4, hasher)
        b = CentralizedDistinctSampler(4, hasher)
        for element in range(30):
            a.observe(element)
            b.observe_hashed(element, hasher.unit(element))
        assert a.sample() == b.sample()

    def test_threshold(self):
        hasher = UnitHasher(4)
        sampler = CentralizedDistinctSampler(2, hasher)
        sampler.observe("a")
        assert sampler.threshold == 1.0
        sampler.observe("b")
        assert sampler.threshold == max(hasher.unit("a"), hasher.unit("b"))

    def test_sample_pairs_sorted(self):
        sampler = CentralizedDistinctSampler(5, UnitHasher(5))
        for element in range(40):
            sampler.observe(element)
        pairs = sampler.sample_pairs()
        assert pairs == sorted(pairs)


class TestCentralizedWindow:
    def test_window_eviction(self):
        sampler = CentralizedWindowSampler(3, 2, UnitHasher(6))
        sampler.observe("a", 1)
        sampler.observe("b", 2)
        sampler.advance(3)
        assert set(sampler.live_elements()) == {"a", "b"}
        sampler.advance(4)  # "a" (slot 1) leaves a 3-slot window at slot 4
        assert sampler.live_elements() == ["b"]
        sampler.advance(5)
        assert sampler.live_elements() == []
        assert sampler.min_element() is None

    def test_refresh_moves_expiry(self):
        sampler = CentralizedWindowSampler(3, 1, UnitHasher(7))
        sampler.observe("a", 1)
        sampler.observe("a", 5)
        sampler.advance(6)
        assert sampler.live_elements() == ["a"]

    def test_sample_is_bottom_s(self):
        hasher = UnitHasher(8)
        sampler = CentralizedWindowSampler(100, 3, hasher)
        for element in range(30):
            sampler.observe(element, 1)
        want = sorted(range(30), key=hasher.unit)[:3]
        assert sampler.sample() == want

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CentralizedWindowSampler(0, 1, UnitHasher(0))
        with pytest.raises(ConfigurationError):
            CentralizedWindowSampler(5, 0, UnitHasher(0))
