"""Tests for the general-s sliding-window local-push system."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CentralizedWindowSampler, SlidingWindowBottomS
from repro.errors import ConfigurationError, ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, Message, MessageKind


def random_schedule(rng, num_sites, universe, slots, max_per_slot=5):
    for slot in range(1, slots + 1):
        burst = int(rng.integers(0, max_per_slot))
        yield slot, [
            (int(rng.integers(0, num_sites)), int(rng.integers(0, universe)))
            for _ in range(burst)
        ]


class TestExactness:
    @pytest.mark.parametrize("sample_size", [1, 2, 4, 8])
    def test_equals_oracle_every_slot(self, sample_size):
        hasher = UnitHasher(sample_size + 60)
        system = SlidingWindowBottomS(
            num_sites=3, window=20, sample_size=sample_size, hasher=hasher
        )
        oracle = CentralizedWindowSampler(20, sample_size, hasher)
        rng = np.random.default_rng(sample_size)
        for slot, arrivals in random_schedule(rng, 3, 50, 500):
            system.advance(slot)
            system.observe_batch(arrivals)
            for _site, element in arrivals:
                oracle.observe(element, slot)
            oracle.advance(slot)
            assert system.sample() == oracle.sample(), f"slot {slot}"

    def test_sample_shrinks_with_window(self):
        system = SlidingWindowBottomS(
            num_sites=2, window=4, sample_size=3, seed=1
        )
        system.advance(1)
        system.observe_batch([(0, "a"), (1, "b")])
        assert len(system.sample()) == 2
        for slot in range(2, 10):
            system.advance(slot)
        assert system.sample() == []

    def test_refresh_keeps_elements_alive(self):
        system = SlidingWindowBottomS(
            num_sites=1, window=3, sample_size=2, seed=2
        )
        for slot in range(1, 30):
            system.advance(slot)
            system.observe_batch([(0, "keeper")])
            assert "keeper" in system.sample()


class TestMessages:
    def test_one_way_traffic(self):
        system = SlidingWindowBottomS(
            num_sites=3, window=15, sample_size=2, seed=3
        )
        rng = np.random.default_rng(0)
        for slot, arrivals in random_schedule(rng, 3, 40, 400):
            system.advance(slot)
            system.observe_batch(arrivals)
        stats = system.network.stats
        assert stats.coordinator_to_site == 0
        assert stats.total_messages == stats.site_to_coordinator
        assert stats.total_messages == system.coordinator.reports_received

    def test_memory_reporting(self):
        system = SlidingWindowBottomS(
            num_sites=2, window=10, sample_size=2, seed=4
        )
        assert system.per_site_memory() == [0, 0]
        system.advance(1)
        system.observe_batch([(0, "x")])
        assert system.per_site_memory()[0] == 1


class TestErrors:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowBottomS(num_sites=0, window=5, sample_size=1)
        with pytest.raises(ConfigurationError):
            SlidingWindowBottomS(num_sites=2, window=0, sample_size=1)
        with pytest.raises(ConfigurationError):
            SlidingWindowBottomS(num_sites=2, window=5, sample_size=0)

    def test_site_receives_nothing(self):
        system = SlidingWindowBottomS(
            num_sites=1, window=5, sample_size=1, seed=5
        )
        bad = Message(COORDINATOR, 0, MessageKind.SW_SAMPLE, None)
        with pytest.raises(ProtocolError):
            system.sites[0].handle_message(bad, system.network)

    def test_coordinator_rejects_foreign(self):
        system = SlidingWindowBottomS(
            num_sites=1, window=5, sample_size=1, seed=5
        )
        bad = Message(0, COORDINATOR, MessageKind.REPORT, None)
        with pytest.raises(ProtocolError):
            system.coordinator.handle_message(bad, system.network)
