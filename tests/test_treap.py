"""Tests for the treap (randomized BST)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.treap import Treap


def build(pairs):
    t = Treap()
    for key, priority in pairs:
        t.insert(key, priority, value=f"v{key}")
    return t


class TestBasics:
    def test_empty(self):
        t = Treap()
        assert len(t) == 0
        assert not t
        assert t.min_priority() is None
        assert t.min_key() is None
        assert t.max_key() is None
        assert list(t) == []

    def test_insert_find(self):
        t = build([(5, 0.5), (3, 0.3), (8, 0.8)])
        assert len(t) == 3
        assert t.find(3).value == "v3"
        assert t.find(99) is None
        assert 5 in t
        assert 99 not in t

    def test_inorder_sorted(self):
        t = build([(5, 0.5), (3, 0.3), (8, 0.8), (1, 0.9), (7, 0.1)])
        assert [n.key for n in t] == [1, 3, 5, 7, 8]

    def test_items(self):
        t = build([(2, 0.2), (1, 0.1)])
        assert list(t.items()) == [(1, "v1"), (2, "v2")]

    def test_min_priority_is_root(self):
        t = build([(5, 0.5), (3, 0.01), (8, 0.8)])
        assert t.min_priority().key == 3

    def test_min_max_key(self):
        t = build([(5, 0.5), (3, 0.3), (8, 0.8)])
        assert t.min_key().key == 3
        assert t.max_key().key == 8

    def test_duplicate_key_rejected(self):
        t = build([(1, 0.1)])
        with pytest.raises(KeyError):
            t.insert(1, 0.2)

    def test_remove(self):
        t = build([(5, 0.5), (3, 0.3), (8, 0.8)])
        assert t.remove(3) == "v3"
        assert 3 not in t
        assert len(t) == 2
        t.check_invariants()

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            build([(1, 0.1)]).remove(2)

    def test_clear(self):
        t = build([(1, 0.1), (2, 0.2)])
        t.clear()
        assert len(t) == 0
        assert list(t) == []


class TestNeighbours:
    def test_predecessor_successor(self):
        t = build([(10, 0.1), (20, 0.2), (30, 0.3)])
        assert t.predecessor(20).key == 10
        assert t.predecessor(10) is None
        assert t.predecessor(15).key == 10
        assert t.successor(20).key == 30
        assert t.successor(30) is None
        assert t.successor(25).key == 30

    def test_neighbours_empty(self):
        t = Treap()
        assert t.predecessor(5) is None
        assert t.successor(5) is None


class TestSplit:
    def test_split_leq(self):
        t = build([(i, i / 10) for i in range(10)])
        removed = t.split_leq(4)
        assert [n.key for n in removed] == [0, 1, 2, 3, 4]
        assert [n.key for n in t] == [5, 6, 7, 8, 9]
        assert len(t) == 5
        t.check_invariants()

    def test_split_leq_none_match(self):
        t = build([(5, 0.5)])
        assert t.split_leq(1) == []
        assert len(t) == 1

    def test_split_leq_all_match(self):
        t = build([(1, 0.1), (2, 0.2)])
        assert len(t.split_leq(10)) == 2
        assert len(t) == 0


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.floats(0, 1, allow_nan=False)),
            max_size=120,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=100)
    def test_invariants_after_inserts(self, pairs):
        t = build(pairs)
        t.check_invariants()
        assert len(t) == len(pairs)
        assert [n.key for n in t] == sorted(p[0] for p in pairs)

    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=80,
            unique_by=lambda p: p[0],
        ),
        st.data(),
    )
    @settings(max_examples=100)
    def test_invariants_after_mixed_ops(self, pairs, data):
        t = build(pairs)
        keys = [p[0] for p in pairs]
        to_remove = data.draw(
            st.lists(st.sampled_from(keys), max_size=len(keys), unique=True)
        )
        for key in to_remove:
            t.remove(key)
        t.check_invariants()
        remaining = sorted(set(keys) - set(to_remove))
        assert [n.key for n in t] == remaining
        if remaining:
            min_pri_key = min(
                ((p[1], p[0]) for p in pairs if p[0] in set(remaining))
            )[1]
            assert t.min_priority().key == min_pri_key

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.floats(0, 1, allow_nan=False)),
            max_size=100,
            unique_by=lambda p: p[0],
        ),
        st.integers(0, 500),
    )
    @settings(max_examples=100)
    def test_split_leq_partition(self, pairs, bound):
        t = build(pairs)
        removed = t.split_leq(bound)
        assert all(n.key <= bound for n in removed)
        assert all(n.key > bound for n in t)
        assert len(removed) + len(t) == len(pairs)
        t.check_invariants()

    def test_expected_depth_logarithmic(self):
        # With random priorities the expected depth is O(log n); for
        # n = 2000 the depth should comfortably sit below 60.
        rng = np.random.default_rng(3)
        t = Treap()
        for i in range(2000):
            t.insert(i, float(rng.random()))

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(t.min_priority()) < 60
