"""Tests for the beyond-paper extensions: duplicate-suppression caches,
snapshots, batch ingestion, sampling reductions, quantile estimation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    CachingSamplerSystem,
    CentralizedDistinctSampler,
    DistinctSamplerSystem,
    restore,
    snapshot,
)
from repro.core.reductions import (
    with_replacement_from_without,
    without_replacement_from_with,
    without_replacement_needed,
)
from repro.errors import ConfigurationError, EstimationError
from repro.estimators import estimate_cdf_band, estimate_quantile
from repro.hashing import UnitHasher, unit_hash_array


class TestCachingSystem:
    def test_exactness_preserved(self):
        # The cache never changes the sample — only the message count.
        hasher = UnitHasher(3)
        cached = CachingSamplerSystem(3, 8, cache_size=16, hasher=hasher)
        oracle = CentralizedDistinctSampler(8, hasher)
        rng = np.random.default_rng(0)
        for _ in range(3000):
            element = int(rng.integers(0, 150))
            cached.observe(int(rng.integers(0, 3)), element)
            oracle.observe(element)
            assert cached.sample() == oracle.sample()
            assert cached.threshold == oracle.threshold

    def test_cache_zero_is_paper_algorithm(self):
        hasher = UnitHasher(5)
        plain = DistinctSamplerSystem(2, 5, hasher=hasher)
        cache0 = CachingSamplerSystem(2, 5, cache_size=0, hasher=hasher)
        rng = np.random.default_rng(1)
        for _ in range(2000):
            element = int(rng.integers(0, 80))
            site = int(rng.integers(0, 2))
            plain.observe(site, element)
            cache0.observe(site, element)
        assert plain.total_messages == cache0.total_messages
        assert plain.sample() == cache0.sample()
        assert cache0.total_suppressed == 0

    def test_cache_saves_messages_on_duplicates(self):
        hasher = UnitHasher(7)
        plain = DistinctSamplerSystem(2, 10, hasher=hasher)
        cached = CachingSamplerSystem(2, 10, cache_size=32, hasher=hasher)
        rng = np.random.default_rng(2)
        for _ in range(5000):
            element = int(rng.integers(0, 100))  # duplicate-heavy
            site = int(rng.integers(0, 2))
            plain.observe(site, element)
            cached.observe(site, element)
        assert cached.total_messages < plain.total_messages
        assert cached.total_suppressed > 0
        assert cached.sample() == plain.sample()

    def test_lru_eviction(self):
        system = CachingSamplerSystem(1, 4, cache_size=2, seed=1)
        site = system.sites[0]
        # Fill the sample so hashes matter; then probe the LRU directly.
        for element in range(50):
            system.observe(0, element)
        assert len(site._cache) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CachingSamplerSystem(2, 5, cache_size=-1)
        with pytest.raises(ConfigurationError):
            CachingSamplerSystem(0, 5, cache_size=4)


class TestSnapshot:
    def _build(self):
        system = DistinctSamplerSystem(3, 6, seed=11)
        rng = np.random.default_rng(4)
        for _ in range(800):
            system.observe(int(rng.integers(0, 3)), int(rng.integers(0, 200)))
        return system

    def test_round_trip(self):
        original = self._build()
        revived = restore(snapshot(original))
        assert revived.sample() == original.sample()
        assert revived.threshold == original.threshold
        assert revived.num_sites == original.num_sites
        assert revived.sample_size == original.sample_size

    def test_json_serializable(self):
        original = self._build()
        wire = json.dumps(snapshot(original))
        revived = restore(json.loads(wire))
        assert revived.sample() == original.sample()

    def test_revived_system_continues_exactly(self):
        # After restore, feeding the same continuation stream produces the
        # same samples as the uninterrupted system.
        original = self._build()
        revived = restore(snapshot(original))
        rng = np.random.default_rng(5)
        for _ in range(500):
            element = int(rng.integers(0, 400))
            site = int(rng.integers(0, 3))
            original.observe(site, element)
            revived.observe(site, element)
            assert original.sample() == revived.sample()

    def test_tuple_elements_survive_json(self):
        system = DistinctSamplerSystem(1, 3, seed=12)
        system.observe(0, ("10.0.0.1", "10.0.0.2"))
        wire = json.dumps(snapshot(system))
        revived = restore(json.loads(wire))
        assert revived.sample() == [("10.0.0.1", "10.0.0.2")]

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            restore({"version": 1})
        with pytest.raises(ConfigurationError):
            restore({**snapshot(self._build()), "version": 99})

    def test_duplicate_sample_rejected(self):
        state = snapshot(self._build())
        sample = state["state"]["system"]["sample"]
        sample.append(sample[0])
        with pytest.raises(ConfigurationError):
            restore(state)

    def test_v1_snapshot_still_readable(self):
        # The pre-protocol layout (infinite-window only) must keep
        # restoring; site thresholds come back as the sample threshold.
        original = self._build()
        v1 = {
            "version": 1,
            "num_sites": original.num_sites,
            "sample_size": original.sample_size,
            "hash_seed": original.hasher.seed,
            "hash_algorithm": original.hasher.algorithm,
            "sample": [[h, e] for h, e in original.sample_pairs()],
            "messages_so_far": original.total_messages,
        }
        revived = restore(json.loads(json.dumps(v1)))
        assert revived.sample() == original.sample()
        assert revived.threshold == original.threshold


class TestBatchIngestion:
    def test_equivalent_to_sequential(self):
        rng = np.random.default_rng(6)
        n = 5000
        elements = rng.integers(0, 600, n).tolist()
        hashes = unit_hash_array(np.array(elements), 13).tolist()
        sites = rng.integers(0, 4, n)

        seq = DistinctSamplerSystem(4, 12, seed=13, algorithm="mix64")
        for element, h, site in zip(elements, hashes, sites.tolist()):
            seq.observe_hashed(site, element, h)

        batched = DistinctSamplerSystem(4, 12, seed=13, algorithm="mix64")
        # Split into a few chunks to exercise threshold carry-over.
        for lo in range(0, n, 1000):
            hi = lo + 1000
            batched.process_batch(
                sites[lo:hi], elements[lo:hi], hashes[lo:hi]
            )

        assert batched.sample() == seq.sample()
        assert batched.total_messages == seq.total_messages
        assert batched.threshold == seq.threshold

    def test_prefilter_reduces_slow_path(self):
        rng = np.random.default_rng(7)
        n = 4000
        elements = rng.integers(0, 200, n).tolist()
        hashes = unit_hash_array(np.array(elements), 14).tolist()
        sites = rng.integers(0, 2, n)
        system = DistinctSamplerSystem(2, 5, seed=14, algorithm="mix64")
        # Warm up so thresholds drop.
        system.process_batch(sites[:2000], elements[:2000], hashes[:2000])
        slow = system.process_batch(sites[2000:], elements[2000:], hashes[2000:])
        assert slow < 2000 * 0.25  # the pre-filter removed most work

    def test_length_mismatch(self):
        system = DistinctSamplerSystem(2, 5, seed=15, algorithm="mix64")
        with pytest.raises(ConfigurationError):
            system.process_batch([0, 1], [1], [0.5])


class TestReductions:
    def test_with_from_without(self):
        rng = np.random.default_rng(8)
        draws = with_replacement_from_without(["a", "b", "c"], 50, rng)
        assert len(draws) == 50
        assert set(draws) <= {"a", "b", "c"}

    def test_with_from_without_empty(self):
        rng = np.random.default_rng(8)
        with pytest.raises(EstimationError):
            with_replacement_from_without([], 5, rng)

    def test_without_from_with(self):
        draws = ["a", "b", "a", "c", "b", "d"]
        assert without_replacement_from_with(draws, 3) == ["a", "b", "c"]

    def test_without_from_with_insufficient(self):
        with pytest.raises(EstimationError):
            without_replacement_from_with(["a", "a", "a"], 2)

    def test_needed_is_sufficient(self):
        # Empirically: drawing the recommended count collects s distinct
        # values in (nearly) every trial.
        s, d = 10, 100
        m = without_replacement_needed(s, d, delta=0.01)
        assert m >= s
        rng = np.random.default_rng(9)
        failures = 0
        for _ in range(300):
            draws = rng.integers(0, d, m).tolist()
            try:
                out = without_replacement_from_with(draws, s)
                assert len(set(out)) == s
            except EstimationError:
                failures += 1
        assert failures <= 6  # nominal 1 %, allow 2 %

    def test_needed_full_collection(self):
        m = without_replacement_needed(20, 20, delta=0.05)
        assert m > 20 * 3  # coupon collector needs ~ d ln d

    def test_needed_validation(self):
        with pytest.raises(EstimationError):
            without_replacement_needed(10, 5)

    def test_round_trip_uniformity(self):
        # without -> with -> without stays uniform over the source set.
        from collections import Counter

        source = list(range(10))
        counts = Counter()
        for seed in range(2000):
            rng = np.random.default_rng(seed)
            draws = with_replacement_from_without(source, 1, rng)
            counts[draws[0]] += 1
        expected = 2000 / 10
        chi2 = sum((counts[i] - expected) ** 2 / expected for i in range(10))
        assert chi2 < 28  # 9 dof, p ~ 0.001


class TestQuantiles:
    def test_median_of_uniform_population(self):
        # Sample = exact distinct set: quantiles are exact order stats.
        sample = list(range(101))  # 0..100
        est = estimate_quantile(sample, 0.5)
        assert est.value == 50
        assert est.low <= est.value <= est.high
        assert est.sample_size == 101

    def test_statistical_accuracy(self):
        # Real sketch over a known population: the q-quantile estimate
        # lands within the DKW band around the truth.
        hasher = UnitHasher(21)
        sampler = CentralizedDistinctSampler(200, hasher)
        d = 5000
        for element in range(d):
            sampler.observe(element)
        est = estimate_quantile(sampler.sample(), 0.9)
        truth = 0.9 * d
        assert abs(est.value - truth) / d < est.epsilon + 0.05

    def test_validation(self):
        with pytest.raises(EstimationError):
            estimate_quantile([1, 2], 0.0)
        with pytest.raises(EstimationError):
            estimate_quantile([1, 2], 1.0)
        with pytest.raises(EstimationError):
            estimate_quantile([], 0.5)
        with pytest.raises(EstimationError):
            estimate_quantile([1], 0.5, delta=0.0)

    def test_cdf_band(self):
        sample = list(range(100))
        band = estimate_cdf_band(sample, [25, 50, 75])
        for point, low, cdf, high in band:
            assert 0.0 <= low <= cdf <= high <= 1.0
        assert band[1][2] == pytest.approx(0.51, abs=0.02)

    def test_cdf_band_empty(self):
        with pytest.raises(EstimationError):
            estimate_cdf_band([], [1.0])

    def test_cdf_monotone(self):
        sample = [3, 1, 4, 1, 5, 9, 2, 6]
        band = estimate_cdf_band(list(set(sample)), [0, 2, 4, 6, 8, 10])
        cdfs = [cdf for _, _, cdf, _ in band]
        assert cdfs == sorted(cdfs)
        assert cdfs[0] == 0.0 and cdfs[-1] == 1.0
