"""Empirical validation of the paper's theorems.

Message counts measured on controlled inputs are compared against the
executable bound formulas from :mod:`repro.analysis.bounds`:

* Lemma 3/4 upper bounds hold on all-distinct streams (where the analysis
  is airtight) — with a small multiplicative slack for run noise.
* Observation 1 explains the flooding-vs-random gap.
* The Lemma 9 adversarial input forces ~4x the lower bound (the upper
  bound is achieved, so measured/lower ≈ optimality gap ≈ 4).
* Lemma 10's space bound holds for sliding-window candidate sets.
"""

from __future__ import annotations

import numpy as np

from repro import DistinctSamplerSystem, SlidingWindowSystem
from repro.analysis import (
    harmonic,
    lower_bound_total,
    upper_bound_observation1,
    upper_bound_total,
)
from repro.hashing import unit_hash_array
from repro.streams import adversarial_input


def run_all_distinct(k, s, d, seed, flood=False):
    """Messages for an all-distinct stream under random or flooding."""
    system = DistinctSamplerSystem(k, s, seed=seed, algorithm="mix64")
    ids = np.arange(d)
    hashes = unit_hash_array(ids, seed)
    rng = np.random.default_rng(seed)
    sites = rng.integers(0, k, d).tolist()
    for i, (element, h) in enumerate(zip(ids.tolist(), hashes.tolist())):
        if flood:
            system.flood_hashed(element, h)
        else:
            system.observe_hashed(sites[i], element, h)
    return system.total_messages


class TestUpperBounds:
    def test_lemma4_holds_flooding(self):
        k, s, d, runs = 4, 8, 3000, 8
        measured = np.mean(
            [run_all_distinct(k, s, d, seed, flood=True) for seed in range(runs)]
        )
        bound = upper_bound_total(k, s, d)
        assert measured <= bound * 1.10, (measured, bound)

    def test_lemma4_loose_for_random_distribution(self):
        # Under random distribution the Lemma 4 bound is very loose; the
        # Observation 1 bound is the right yardstick.
        k, s, d, runs = 4, 8, 3000, 8
        measured = np.mean(
            [run_all_distinct(k, s, d, seed + 50) for seed in range(runs)]
        )
        lemma4 = upper_bound_total(k, s, d)
        assert measured < 0.6 * lemma4

    def test_observation1_holds_random_distribution(self):
        k, s, d, runs = 4, 8, 3000, 8
        per_site = [d // k] * k
        bound = upper_bound_observation1(k, s, per_site)
        measured = np.mean(
            [run_all_distinct(k, s, d, seed + 100) for seed in range(runs)]
        )
        assert measured <= bound * 1.15, (measured, bound)

    def test_flooding_beats_random_at_least_by_observation1_ratio(self):
        # Flooding essentially achieves the Lemma 4 bound, while random
        # distribution sits *below* even the Observation 1 bound (threshold
        # information shared through replies makes the per-site analysis
        # conservative).  Hence the measured gap must be at least the
        # bounds' ratio — and substantial in absolute terms.
        k, s, d = 5, 10, 4000
        flood = np.mean(
            [run_all_distinct(k, s, d, seed, flood=True) for seed in range(5)]
        )
        random = np.mean(
            [run_all_distinct(k, s, d, seed + 10) for seed in range(5)]
        )
        predicted_floor = upper_bound_total(k, s, d) / upper_bound_observation1(
            k, s, [d // k] * k
        )
        assert flood / random > predicted_floor
        assert flood / random > 2.0


class TestLowerBound:
    def test_adversarial_forces_lower_bound(self):
        k, s, d, runs = 5, 10, 2000, 6
        elements, distributor = adversarial_input(d, k)
        totals = []
        for seed in range(runs):
            system = DistinctSamplerSystem(k, s, seed=seed, algorithm="mix64")
            hashes = unit_hash_array(elements, seed)
            for element, h in zip(elements.tolist(), hashes.tolist()):
                system.flood_hashed(element, h)
            totals.append(system.total_messages)
        measured = np.mean(totals)
        lower = lower_bound_total(k, s, d)
        assert measured >= lower, (measured, lower)
        # Optimality gap: ratio stays near 4 (never dramatically above).
        assert measured / lower < 5.0, measured / lower

    def test_gap_stable_across_d(self):
        k, s = 4, 8
        ratios = []
        for d in (500, 2000):
            elements, _ = adversarial_input(d, k)
            totals = []
            for seed in range(4):
                system = DistinctSamplerSystem(k, s, seed=seed, algorithm="mix64")
                hashes = unit_hash_array(elements, seed)
                for element, h in zip(elements.tolist(), hashes.tolist()):
                    system.flood_hashed(element, h)
                totals.append(system.total_messages)
            ratios.append(np.mean(totals) / lower_bound_total(k, s, d))
        assert abs(ratios[0] - ratios[1]) < 1.0


class TestSpaceBound:
    def test_lemma10_candidate_set_size(self):
        # Per-site expected |T_i| <= H_{M_i}; measure time-average size
        # against the harmonic bound with slack.
        window, k = 400, 2
        system = SlidingWindowSystem(
            num_sites=k, window=window, seed=9, algorithm="mix64"
        )
        rng = np.random.default_rng(9)
        sizes = []
        element = 0
        for slot in range(1, 3000):
            arrivals = []
            for _ in range(2):
                arrivals.append((int(rng.integers(0, k)), element))
                element += 1  # all distinct
            system.advance(slot)
            system.observe_batch(arrivals)
            if slot > window:  # steady state
                sizes.extend(system.per_site_memory())
        mean_size = np.mean(sizes)
        # M_i ~ window live distinct per site; H_400 ≈ 6.6.  The
        # coordinator-feedback insertions add at most O(1) amortized.
        assert mean_size <= harmonic(window) + 2.0, mean_size
