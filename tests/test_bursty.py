"""Tests for the bursty stream generator and its protocol interactions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CachingSamplerSystem, DistinctSamplerSystem
from repro.errors import DatasetError
from repro.hashing import UnitHasher
from repro.streams import bursty_stream, mean_run_length


class TestGenerator:
    def test_exact_counts(self):
        stream = bursty_stream(5000, 400, 0.9, 8.0, np.random.default_rng(0))
        assert stream.size == 5000
        assert np.unique(stream).size == 400

    def test_burstiness_measurable(self):
        rng = np.random.default_rng(1)
        bursty = bursty_stream(20_000, 500, 0.9, 10.0, rng)
        shuffled = bursty_stream(20_000, 500, 0.9, 1.0, np.random.default_rng(1))
        assert mean_run_length(bursty) > 3 * mean_run_length(shuffled)
        # burst_mean=1 behaves like a shuffle: run length near 1.
        assert mean_run_length(shuffled) < 1.5

    def test_burst_mean_one_is_valid(self):
        stream = bursty_stream(1000, 100, 0.5, 1.0, np.random.default_rng(2))
        assert np.unique(stream).size == 100

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            bursty_stream(10, 20, 1.0, 2.0, rng)
        with pytest.raises(DatasetError):
            bursty_stream(10, 0, 1.0, 2.0, rng)
        with pytest.raises(DatasetError):
            bursty_stream(10, 5, 1.0, 0.5, rng)

    def test_mean_run_length_validation(self):
        with pytest.raises(DatasetError):
            mean_run_length(np.array([]))
        assert mean_run_length(np.array([1, 1, 1])) == 3.0
        assert mean_run_length(np.array([1, 2, 3])) == 1.0


class TestProtocolInteraction:
    def test_sample_identical_regardless_of_burstiness(self):
        # The distinct sample is order-free: bursty vs shuffled layouts of
        # the same multiset yield the same final sample.
        hasher = UnitHasher(5)
        rng_a = np.random.default_rng(3)
        bursty = bursty_stream(8000, 600, 0.9, 12.0, rng_a)
        shuffled = bursty.copy()
        np.random.default_rng(4).shuffle(shuffled)

        samples = []
        for stream in (bursty, shuffled):
            system = DistinctSamplerSystem(3, 10, hasher=hasher)
            for i, element in enumerate(stream.tolist()):
                system.observe(i % 3, element)
            samples.append(system.sample())
        assert samples[0] == samples[1]

    def test_cache_of_one_eats_back_to_back_repeats(self):
        # Burst repeats hit the same site consecutively only if routed
        # there; route round-robin-per-burst by sending everything to one
        # site to isolate the effect.
        hasher = UnitHasher(7)
        stream = bursty_stream(
            10_000, 300, 0.9, 15.0, np.random.default_rng(5)
        ).tolist()

        plain = DistinctSamplerSystem(1, 10, hasher=hasher)
        tiny_cache = CachingSamplerSystem(1, 10, cache_size=1, hasher=hasher)
        for element in stream:
            plain.observe(0, element)
            tiny_cache.observe(0, element)
        assert tiny_cache.sample() == plain.sample()
        # A single cache slot already removes a large share of repeats.
        saved = plain.total_messages - tiny_cache.total_messages
        assert saved >= 0
        if plain.total_messages > 300:  # repeats actually occurred
            assert saved > 0
