"""Fixture-based tests for the ``repro lint`` rule engine.

Every rule (RPR001–RPR008) has a fixture under ``tests/lint_fixtures/``
with known violations on known lines, plus must-NOT-fire counterparts in
the same file, so these tests pin both halves of each rule's contract.
The suite also covers the suppression syntax, the JSON report schema,
the CLI subcommand, and — the acceptance criterion that matters most —
a self-check that the real ``src/`` tree is clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import (
    JSON_SCHEMA_VERSION,
    all_rules,
    get_rules,
    run_lint,
)
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = Path(__file__).parent.parent / "src"


def lint_fixture(name: str, *rules: str):
    return run_lint([FIXTURES / name], rules=rules or None)


def codes(report) -> list[str]:
    return [v.rule for v in report.violations]


class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert [r.code for r in all_rules()] == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
        ]

    def test_every_rule_is_documented(self):
        for rule in all_rules():
            assert rule.name
            assert rule.summary
            assert rule.severity in ("error", "warning")

    def test_rule_selection_is_case_insensitive_and_deduplicated(self):
        selected = get_rules(["rpr005", "RPR005", "RPR001"])
        assert [r.code for r in selected] == ["RPR005", "RPR001"]

    def test_unknown_rule_code_raises(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rules(["RPR999"])
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            run_lint([FIXTURES / "clean_module.py"], rules=["NOPE"])

    def test_missing_path_raises(self):
        with pytest.raises(ConfigurationError, match="no such file"):
            run_lint([FIXTURES / "does_not_exist.py"])
        with pytest.raises(ConfigurationError, match="at least one path"):
            run_lint([])


class TestRPR001TupleMaterialization:
    def test_fires_on_each_materialization_shape(self):
        report = lint_fixture("rpr001_tuple_materialization.py", "RPR001")
        assert codes(report) == ["RPR001"] * 4
        messages = " ".join(v.message for v in report.violations)
        assert ".to_events()" in messages
        assert ".from_events()" in messages
        assert "zip(*...)" in messages

    def test_tuple_paths_stay_free_to_transpose(self):
        report = lint_fixture("rpr001_tuple_materialization.py", "RPR001")
        # observe_batch's zip(*events) on line 21 must not be flagged.
        assert all(v.line != 21 for v in report.violations)


class TestRPR002PickleSafety:
    def test_fires_on_resources_and_shipped_caches(self):
        report = lint_fixture("rpr002_pickle_safety.py", "RPR002")
        assert codes(report) == ["RPR002"] * 5
        messages = [v.message for v in report.violations]
        assert any("LeakyExecutor._lock" in m for m in messages)
        assert any("LeakyExecutor._pool" in m for m in messages)
        assert any("ShmHolder._block" in m for m in messages)
        assert any("'_hash_columns'" in m for m in messages)
        assert any("'_items_list'" in m for m in messages)

    def test_override_exempts_the_class(self):
        report = lint_fixture("rpr002_pickle_safety.py", "RPR002")
        assert not any("SafeExecutor" in v.message for v in report.violations)
        assert not any(
            "SafeShmHolder" in v.message for v in report.violations
        )


class TestRPR003RegistryCompleteness:
    def test_orphan_facade_fires_twice(self):
        project = FIXTURES / "rpr003_project"
        report = run_lint([project / "src"], rules=["RPR003"], root=project)
        assert codes(report) == ["RPR003"] * 2
        messages = [v.message for v in report.violations]
        assert all("OrphanSampler" in m for m in messages)
        assert any("registers variants" in m for m in messages)
        assert any("test_protocol_conformance" in m for m in messages)

    def test_root_is_inferred_from_fixture_pyproject(self):
        # No explicit root: the nearest pyproject.toml is the fixture's.
        report = run_lint([FIXTURES / "rpr003_project" / "src"], rules=["RPR003"])
        assert codes(report) == ["RPR003"] * 2

    def test_helpers_bases_and_abstract_classes_exempt(self):
        project = FIXTURES / "rpr003_project"
        report = run_lint([project / "src"], rules=["RPR003"], root=project)
        for exempt in ("_HelperSampler", "SamplerFacadeBase", "AbstractSampler",
                       "CoveredSampler"):
            assert not any(exempt in v.message for v in report.violations)

    def test_conformance_half_skipped_without_root(self, tmp_path):
        # A lone hierarchy outside any project: no registry modules are
        # scanned and no conformance file exists, so nothing can fire.
        lone = tmp_path / "lone.py"
        lone.write_text(
            "class Sampler:\n    pass\n\n"
            "class LoneSampler(Sampler):\n    pass\n"
        )
        report = run_lint([lone], rules=["RPR003"])
        assert report.violations == ()


class TestRPR004SnapshotSymmetry:
    def test_fires_in_both_directions(self):
        report = lint_fixture("rpr004_snapshot_symmetry.py", "RPR004")
        assert codes(report) == ["RPR004"] * 2
        messages = " ".join(v.message for v in report.violations)
        assert "'orphan'" in messages and "never consumes" in messages
        assert "'phantom'" in messages and "never writes" in messages

    def test_symmetric_pair_is_clean(self):
        report = lint_fixture("rpr004_snapshot_symmetry.py", "RPR004")
        assert not any(
            "SymmetricSampler" in v.message for v in report.violations
        )


class TestRPR005Determinism:
    def test_fires_on_each_nondeterminism_shape(self):
        report = lint_fixture("rpr005_determinism.py", "RPR005")
        assert codes(report) == ["RPR005"] * 6
        messages = " ".join(v.message for v in report.violations)
        assert "wall-clock" in messages
        assert "global-RNG" in messages
        assert "numpy global RNG" in messages
        assert "default_rng() without a seed" in messages
        assert "hash-order dependent" in messages

    def test_seeded_and_sorted_constructs_are_clean(self):
        report = lint_fixture("rpr005_determinism.py", "RPR005")
        # deterministic_ok spans lines 25-31; nothing there may fire.
        assert all(v.line < 25 for v in report.violations)


class TestRPR006ExecutorSharedState:
    def test_fires_on_worker_side_mutation(self):
        report = lint_fixture("rpr006_executor_state.py", "RPR006")
        assert codes(report) == ["RPR006"] * 3
        messages = " ".join(v.message for v in report.violations)
        assert "writes through parameter 'group'" in messages
        assert "mutates module global 'COUNTER'" in messages
        assert "declares global COUNTER_TOTAL" in messages

    def test_local_rebuild_pattern_is_clean(self):
        report = lint_fixture("rpr006_executor_state.py", "RPR006")
        assert not any(
            "good_worker" in v.message for v in report.violations
        )


class TestRPR007ShmUnlinkPairing:
    def test_fires_on_unguarded_and_module_level_creation(self):
        report = lint_fixture("rpr007_shm_lifecycle.py", "RPR007")
        assert codes(report) == ["RPR007"] * 3
        assert [v.line for v in report.violations] == [8, 45, 56]
        messages = " ".join(v.message for v in report.violations)
        assert "leaky_create" in messages
        assert "nested_unlink_does_not_protect" in messages
        assert "module-level" in messages

    def test_guarded_finally_and_attach_shapes_are_clean(self):
        report = lint_fixture("rpr007_shm_lifecycle.py", "RPR007")
        messages = " ".join(v.message for v in report.violations)
        assert "guarded_create" not in messages
        assert "finally_create" not in messages
        assert "attach_only" not in messages


class TestRPR008QueryPathPythonSort:
    def test_fires_on_sort_and_sorted_in_query_fast_paths(self):
        report = lint_fixture("rpr008_query_sort.py", "RPR008")
        assert codes(report) == ["RPR008"] * 3
        assert [v.line for v in report.violations] == [9, 13, 21]
        messages = " ".join(v.message for v in report.violations)
        assert "'sample'" in messages
        assert "'sample_columns'" in messages
        assert "'_merge_groups'" in messages

    def test_numpy_kernels_and_non_query_sorts_are_clean(self):
        report = lint_fixture("rpr008_query_sort.py", "RPR008")
        lines = {v.line for v in report.violations}
        # GoodMergingSampler.sample (np.argsort/np.sort) and
        # rebuild_index (outside the fast path) must not fire.
        assert all(line <= 21 for line in lines)


class TestSuppressions:
    def test_same_line_previous_line_and_wildcard(self):
        report = lint_fixture("suppressed_lines.py", "RPR005")
        # Four violations exist; three carry suppressions, one survives.
        assert codes(report) == ["RPR005"]
        assert report.violations[0].line == 13

    def test_file_level_disable(self):
        report = lint_fixture("suppressed_file.py", "RPR005")
        assert report.violations == ()

    def test_suppression_is_rule_specific(self):
        # disable=RPR005 must not silence other rules on that line.
        report = lint_fixture("suppressed_lines.py")
        assert codes(report) == ["RPR005"]


class TestReportAndEngine:
    def test_clean_module_is_clean(self):
        report = lint_fixture("clean_module.py")
        assert report.ok
        assert report.violations == ()
        assert report.files_checked == 1

    def test_json_schema(self):
        report = lint_fixture("rpr005_determinism.py", "RPR005")
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == JSON_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["rules"] == ["RPR005"]
        assert len(payload["violations"]) == 6
        record = payload["violations"][0]
        assert set(record) == {
            "rule", "severity", "path", "line", "col", "message",
        }
        assert record["rule"] == "RPR005"
        assert record["severity"] == "error"

    def test_violations_sorted_by_location(self):
        report = run_lint(
            [FIXTURES / "rpr005_determinism.py",
             FIXTURES / "rpr001_tuple_materialization.py"],
        )
        keys = [(v.path, v.line, v.col, v.rule) for v in report.violations]
        assert keys == sorted(keys)

    def test_render_format(self):
        report = lint_fixture("rpr004_snapshot_symmetry.py", "RPR004")
        line = report.render().splitlines()[0]
        assert "rpr004_snapshot_symmetry.py:" in line
        assert "RPR004 [error]" in line

    def test_syntax_error_becomes_parse_violation(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        ok = tmp_path / "fine.py"
        ok.write_text("x = 1\n")
        report = run_lint([tmp_path])
        assert report.files_checked == 2
        assert codes(report) == ["PARSE"]
        assert not report.ok


class TestCLI:
    def test_lint_fixture_exits_nonzero(self, capsys):
        rc = main(
            ["lint", str(FIXTURES / "rpr005_determinism.py"),
             "--rule", "RPR005"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR005" in out and "6 violation(s)" in out

    def test_lint_clean_exits_zero(self, capsys):
        rc = main(["lint", str(FIXTURES / "clean_module.py")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        rc = main(
            ["lint", str(FIXTURES / "clean_module.py"), "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["schema_version"] == JSON_SCHEMA_VERSION

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                     "RPR006", "RPR007", "RPR008"):
            assert code in out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        rc = main(["lint", str(FIXTURES / "clean_module.py"),
                   "--rule", "RPR999"])
        assert rc != 0


class TestSelfCheck:
    def test_repro_src_is_clean(self):
        report = run_lint([REPO_SRC])
        assert report.ok, report.render()
        assert report.violations == (), report.render()
        assert report.files_checked > 50
