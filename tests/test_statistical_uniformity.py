"""Statistical tests of the defining property of a *distinct* sample:
every distinct element is equally likely to be sampled, regardless of its
frequency in the stream.

These tests aggregate over many independent hash seeds and apply
chi-square / proportion bounds with p ~ 0.001 critical values; they are
deterministic given the seed list (no flaky randomness).
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import (
    DistinctSamplerSystem,
    ProcessExecutor,
    SlidingWindowBottomS,
    SlidingWindowSystem,
    make_sampler,
)


class TestInfiniteWindowUniformity:
    def test_inclusion_uniform_over_distinct(self):
        # 30 distinct elements, wildly different frequencies; sample size 3.
        universe, s, trials = 30, 3, 400
        counts: Counter = Counter()
        for seed in range(trials):
            system = DistinctSamplerSystem(3, s, seed=seed)
            rng = np.random.default_rng(seed)
            # Element e appears (e+1)^2 times: 1 to 900 occurrences.
            stream = [e for e in range(universe) for _ in range((e + 1) ** 2 % 37 + 1)]
            rng.shuffle(stream)
            for element in stream:
                system.observe(int(rng.integers(0, 3)), element)
            for member in system.sample():
                counts[member] += 1
        total = sum(counts.values())
        assert total == trials * s
        expected = total / universe
        chi2 = sum(
            (counts.get(e, 0) - expected) ** 2 / expected
            for e in range(universe)
        )
        # 29 dof; p=0.001 critical ≈ 58.3.
        assert chi2 < 58.3, f"chi2={chi2:.1f}"

    def test_heavy_hitter_not_favoured(self):
        # One element with 99% of occurrences must be sampled no more
        # often than any rare element (s=1 → P = 1/universe each).
        universe, trials = 20, 600
        hot_hits = 0
        for seed in range(trials):
            system = DistinctSamplerSystem(2, 1, seed=seed * 7 + 1)
            stream = [0] * 500 + list(range(1, universe))
            rng = np.random.default_rng(seed)
            rng.shuffle(stream)
            for element in stream:
                system.observe(int(rng.integers(0, 2)), element)
            hot_hits += system.sample() == [0]
        share = hot_hits / trials
        # Expected 1/20 = 0.05; 3.3-sigma bound ≈ 0.05 ± 0.030.
        assert 0.02 < share < 0.08, share

    def test_sample_without_replacement(self):
        # The s members are always distinct elements.
        system = DistinctSamplerSystem(2, 10, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            system.observe(int(rng.integers(0, 2)), int(rng.integers(0, 100)))
        members = system.sample()
        assert len(members) == len(set(members)) == 10

    def test_distribution_strategy_does_not_bias(self):
        # The sampled set depends only on (hash fn, distinct set) — never
        # on how elements were routed to sites.
        for seed in range(10):
            elements = list(range(200))
            sampled = []
            for strategy in ("one_site", "round_robin", "flood"):
                system = DistinctSamplerSystem(4, 5, seed=seed)
                for i, element in enumerate(elements):
                    if strategy == "one_site":
                        system.observe(0, element)
                    elif strategy == "round_robin":
                        system.observe(i % 4, element)
                    else:
                        system.flood(element)
                sampled.append(tuple(system.sample()))
            assert len(set(sampled)) == 1


class TestParallelShardedUniformity:
    """The defining distinct-sample property must survive the parallel
    path: merged sharded samples ingested through the ProcessExecutor
    are uniform over the distinct elements, regardless of frequency —
    the multi-core mirror of the serial chi-square test above."""

    def test_merged_sample_inclusion_uniform_under_process_executor(self):
        universe, s, trials = 24, 3, 150
        counts: Counter = Counter()
        # One shared pool across the seed sweep; each trial's sampler is
        # fresh (new hash seed) but rides the same two worker processes.
        executor = ProcessExecutor(workers=2)
        try:
            for seed in range(trials):
                sampler = make_sampler(
                    "sharded:infinite",
                    num_sites=2,
                    sample_size=s,
                    shards=2,
                    seed=seed,
                    executor="process",
                    workers=2,
                )
                sampler.executor = executor
                rng = np.random.default_rng(seed)
                # Element e appears 1 to 7 times: skewed frequencies.
                stream = [
                    e for e in range(universe) for _ in range((e + 1) ** 2 % 7 + 1)
                ]
                rng.shuffle(stream)
                sites = rng.integers(0, 2, len(stream)).tolist()
                sampler.observe_batch(list(zip(sites, stream)))
                members = sampler.sample().items
                assert len(members) == s
                for member in members:
                    counts[member] += 1
        finally:
            executor.close()
        total = sum(counts.values())
        assert total == trials * s
        expected = total / universe
        chi2 = sum(
            (counts.get(e, 0) - expected) ** 2 / expected
            for e in range(universe)
        )
        # 23 dof; p=0.001 critical ≈ 49.7.
        assert chi2 < 49.7, f"chi2={chi2:.1f}"


class TestSlidingWindowUniformity:
    def test_uniform_over_live_window(self):
        # Fixed schedule, varying hash seeds: each live element equally
        # likely to be the (s=1) sample.
        universe, trials = 15, 600
        counts: Counter = Counter()
        schedule = []
        rng = np.random.default_rng(42)
        for slot in range(1, 40):
            schedule.append(
                (slot, [(int(rng.integers(0, 2)), int(e)) for e in rng.integers(0, universe, 2)])
            )
        # Live set at the final slot is schedule-determined.
        window = 20
        final_slot = schedule[-1][0]
        live = set()
        for slot, arrivals in schedule:
            if slot > final_slot - window:
                live.update(e for _, e in arrivals)
        for seed in range(trials):
            system = SlidingWindowSystem(num_sites=2, window=window, seed=seed)
            for slot, arrivals in schedule:
                system.advance(slot)
                system.observe_batch(arrivals)
            counts[system.sample().first] += 1
        expected = trials / len(live)
        chi2 = sum(
            (counts.get(e, 0) - expected) ** 2 / expected for e in live
        )
        # len(live)-1 dof; generous p≈0.001 bound.
        dof = len(live) - 1
        assert chi2 < dof + 3.3 * (2 * dof) ** 0.5 + 10, f"chi2={chi2:.1f}, dof={dof}"

    @pytest.mark.parametrize(
        "variant", ["sliding-feedback", "sliding-local-push"]
    )
    def test_general_s_inclusion_uniform_over_live_window(self, variant):
        # The bottom-s window sample must include every live distinct
        # element with equal probability s/|live|, regardless of arrival
        # frequency — chi-square over many independent hash seeds,
        # mirroring the infinite-window uniformity test.
        universe, s, trials = 18, 3, 300
        window = 20
        counts: Counter = Counter()
        schedule = []
        rng = np.random.default_rng(7)
        for slot in range(1, 40):
            # Heavily skewed arrivals: low ids repeat far more often.
            arrivals = [
                (int(rng.integers(0, 2)), int(e * e) % universe)
                for e in rng.integers(0, universe, 3)
            ]
            schedule.append((slot, arrivals))
        final_slot = schedule[-1][0]
        live = set()
        for slot, arrivals in schedule:
            if slot > final_slot - window:
                live.update(e for _, e in arrivals)
        assert len(live) > s
        for seed in range(trials):
            system = make_sampler(
                variant, num_sites=2, window=window, sample_size=s, seed=seed
            )
            for slot, arrivals in schedule:
                system.advance(slot)
                system.observe_batch(arrivals)
            members = system.sample().items
            assert len(members) == s
            assert set(members) <= live
            for member in members:
                counts[member] += 1
        total = sum(counts.values())
        assert total == trials * s
        expected = total / len(live)
        chi2 = sum(
            (counts.get(e, 0) - expected) ** 2 / expected for e in live
        )
        dof = len(live) - 1
        bound = dof + 3.3 * (2 * dof) ** 0.5 + 10  # generous p ~ 0.001
        assert chi2 < bound, f"{variant}: chi2={chi2:.1f}, dof={dof}"

    def test_bottom_s_without_replacement(self):
        system = SlidingWindowBottomS(
            num_sites=2, window=30, sample_size=5, seed=3
        )
        rng = np.random.default_rng(1)
        for slot in range(1, 100):
            arrivals = [
                (int(rng.integers(0, 2)), int(rng.integers(0, 50)))
                for _ in range(3)
            ]
            system.advance(slot)
            system.observe_batch(arrivals)
        members = system.sample().items
        assert len(members) == len(set(members)) == 5
