"""Shared fixtures and Hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.hashing import UnitHasher

# Hypothesis profiles: CI runs derandomized (fixed seed — a red build
# must be reproducible by anyone checking out the commit) and without
# deadlines (shared runners + coverage tracing make per-example timing
# meaningless).  Local runs keep fresh randomness to actually explore,
# but drop the deadline for the same timing-noise reason.
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def hasher() -> UnitHasher:
    """A deterministic murmur2 unit hasher."""
    return UnitHasher(seed=42, algorithm="murmur2")


@pytest.fixture
def mix_hasher() -> UnitHasher:
    """The integer fast-path hasher."""
    return UnitHasher(seed=42, algorithm="mix64")
