"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import UnitHasher


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def hasher() -> UnitHasher:
    """A deterministic murmur2 unit hasher."""
    return UnitHasher(seed=42, algorithm="murmur2")


@pytest.fixture
def mix_hasher() -> UnitHasher:
    """The integer fast-path hasher."""
    return UnitHasher(seed=42, algorithm="mix64")
