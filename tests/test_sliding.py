"""Tests for the sliding-window protocol (Algorithms 3 & 4).

Exact-mode systems are differentially tested against a brute-force window
oracle at every slot; paper-mode systems get the weaker (but guaranteed)
live-element property plus high agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CentralizedWindowSampler, SlidingWindowSystem
from repro.errors import ConfigurationError, ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, Message, MessageKind


def random_schedule(rng, num_sites, universe, slots, max_per_slot=4):
    """Yield (slot, arrivals) with random bursts, including empty slots."""
    for slot in range(1, slots + 1):
        burst = int(rng.integers(0, max_per_slot))
        yield slot, [
            (int(rng.integers(0, num_sites)), int(rng.integers(0, universe)))
            for _ in range(burst)
        ]


def drive_against_oracle(system, oracle, schedule, check):
    for slot, arrivals in schedule:
        system.advance(slot)
        system.observe_batch(arrivals)
        for _site, element in arrivals:
            oracle.observe(element, slot)
        oracle.advance(slot)
        check(slot)


class TestExactMode:
    @pytest.mark.parametrize("structure", ["treap", "sorted"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equals_oracle_every_slot(self, structure, seed):
        hasher = UnitHasher(seed + 40)
        system = SlidingWindowSystem(
            num_sites=3, window=25, structure=structure, hasher=hasher
        )
        oracle = CentralizedWindowSampler(25, 1, hasher)
        rng = np.random.default_rng(seed)

        def check(slot):
            assert system.sample().first == oracle.min_element(), f"slot {slot}"

        drive_against_oracle(
            system, oracle, random_schedule(rng, 3, 60, 600), check
        )

    def test_small_window_heavy_churn(self):
        hasher = UnitHasher(77)
        system = SlidingWindowSystem(num_sites=2, window=3, hasher=hasher)
        oracle = CentralizedWindowSampler(3, 1, hasher)
        rng = np.random.default_rng(9)

        def check(slot):
            assert system.sample().first == oracle.min_element(), f"slot {slot}"

        drive_against_oracle(
            system, oracle, random_schedule(rng, 2, 10, 400, max_per_slot=6), check
        )

    def test_empty_window_returns_none(self):
        system = SlidingWindowSystem(num_sites=2, window=5, seed=1)
        system.advance(1)
        system.observe_batch([(0, "x")])
        assert system.sample().first == "x"
        # Nothing arrives for > w slots: the window empties.
        for slot in range(2, 12):
            system.advance(slot)
        assert system.sample().first is None

    def test_slot_gaps(self):
        hasher = UnitHasher(50)
        system = SlidingWindowSystem(num_sites=2, window=10, hasher=hasher)
        oracle = CentralizedWindowSampler(10, 1, hasher)
        rng = np.random.default_rng(4)
        slot = 0
        for _ in range(150):
            slot += int(rng.integers(1, 6))  # jump 1-5 slots
            arrivals = [
                (int(rng.integers(0, 2)), int(rng.integers(0, 30)))
                for _ in range(int(rng.integers(0, 3)))
            ]
            system.advance(slot)
            system.observe_batch(arrivals)
            for _site, element in arrivals:
                oracle.observe(element, slot)
            oracle.advance(slot)
            assert system.sample().first == oracle.min_element()

    def test_refresh_extends_membership(self):
        system = SlidingWindowSystem(num_sites=1, window=5, seed=2)
        system.advance(1)
        system.observe_batch([(0, "a")])
        # Keep re-observing "a": it must stay sampled forever.
        for slot in range(2, 40):
            system.advance(slot)
            system.observe_batch([(0, "a")])
            assert system.sample().first == "a"

    def test_expiry_is_exclusive_of_window_edge(self):
        system = SlidingWindowSystem(num_sites=1, window=3, seed=3)
        system.observe(0, "a", slot=1)  # live slots 1,2,3
        system.advance(3)
        assert system.sample().first == "a"
        system.advance(4)
        assert system.sample().first is None


class TestPaperMode:
    def test_always_live_and_mostly_minimal(self):
        hasher = UnitHasher(3)
        system = SlidingWindowSystem(
            num_sites=3, window=20, coordinator_mode="paper", hasher=hasher
        )
        oracle = CentralizedWindowSampler(20, 1, hasher)
        rng = np.random.default_rng(1)
        agree = total = 0
        for slot, arrivals in random_schedule(rng, 3, 50, 1500):
            system.advance(slot)
            system.observe_batch(arrivals)
            for _site, element in arrivals:
                oracle.observe(element, slot)
            oracle.advance(slot)
            got = system.sample().first
            live = set(oracle.live_elements())
            if got is not None:
                assert got in live, f"slot {slot}: served a dead element"
            elif live:
                # paper mode may transiently miss; exact mode never does.
                pass
            total += 1
            agree += got == oracle.min_element()
        assert agree / total > 0.9, "paper mode should usually be minimal"

    def test_mode_validation(self):
        from repro.core.sliding import SlidingWindowCoordinator
        from repro.netsim import SlotClock

        with pytest.raises(ConfigurationError):
            SlidingWindowCoordinator(SlotClock(), mode="psychic")


class TestStructureEquivalence:
    def test_treap_and_sorted_identical_messages(self):
        rng = np.random.default_rng(11)
        schedule = list(random_schedule(rng, 4, 80, 800))
        results = {}
        for structure in ("treap", "sorted"):
            system = SlidingWindowSystem(
                num_sites=4, window=30, seed=21, structure=structure
            )
            queries = []
            for slot, arrivals in schedule:
                system.advance(slot)
                system.observe_batch(arrivals)
                queries.append(system.sample().first)
            results[structure] = (system.total_messages, queries)
        assert results["treap"] == results["sorted"]

    def test_unknown_structure(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowSystem(num_sites=1, window=5, structure="btree")


class TestMessageAccounting:
    def test_every_report_answered(self):
        system = SlidingWindowSystem(num_sites=3, window=15, seed=5)
        rng = np.random.default_rng(2)
        for slot, arrivals in random_schedule(rng, 3, 40, 500):
            system.advance(slot)
            system.observe_batch(arrivals)
        stats = system.network.stats
        assert stats.total_messages == 2 * stats.site_to_coordinator
        assert stats.by_kind[MessageKind.SW_REPORT] == stats.site_to_coordinator
        assert stats.by_kind[MessageKind.SW_SAMPLE] == stats.coordinator_to_site

    def test_larger_window_fewer_messages(self):
        # Fig 5.8's shape, as an invariant.
        totals = {}
        for window in (10, 100):
            system = SlidingWindowSystem(
                num_sites=3, window=window, seed=6, algorithm="mix64"
            )
            rng = np.random.default_rng(3)
            for slot in range(1, 1200):
                arrivals = [
                    (int(rng.integers(0, 3)), int(rng.integers(0, 10_000)))
                    for _ in range(3)
                ]
                system.advance(slot)
                system.observe_batch(arrivals)
            totals[window] = system.total_messages
        assert totals[100] < totals[10]


class TestMemory:
    def test_per_site_memory_logarithmic(self):
        # Lemma 10: |T_i| stays near H_{M_i}, far below the window size.
        system = SlidingWindowSystem(num_sites=2, window=500, seed=7, algorithm="mix64")
        rng = np.random.default_rng(4)
        peak = 0
        for slot in range(1, 2000):
            arrivals = [
                (int(rng.integers(0, 2)), int(rng.integers(0, 100_000)))
                for _ in range(2)
            ]
            system.advance(slot)
            system.observe_batch(arrivals)
            peak = max(peak, max(system.per_site_memory()))
        # M_i <= 500 live distinct per site; H_500 ~ 6.8.  Allow slack for
        # the max over time, but require far below the window size.
        assert peak < 60

    def test_memory_reporting_shape(self):
        system = SlidingWindowSystem(num_sites=4, window=10, seed=8)
        assert system.per_site_memory() == [0, 0, 0, 0]
        system.advance(1)
        system.observe_batch([(0, "a"), (2, "b")])
        sizes = system.per_site_memory()
        assert len(sizes) == 4
        assert sizes[0] >= 1 and sizes[2] >= 1


class TestErrors:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowSystem(num_sites=0, window=5)
        with pytest.raises(ConfigurationError):
            SlidingWindowSystem(num_sites=2, window=0)

    def test_clock_rewind_rejected(self):
        system = SlidingWindowSystem(num_sites=1, window=5, seed=1)
        system.advance(10)
        with pytest.raises(ProtocolError):
            system.advance(9)

    def test_site_rejects_foreign_kind(self):
        system = SlidingWindowSystem(num_sites=1, window=5, seed=1)
        bad = Message(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        with pytest.raises(ProtocolError):
            system.sites[0].handle_message(bad, system.network)

    def test_coordinator_rejects_foreign_kind(self):
        system = SlidingWindowSystem(num_sites=1, window=5, seed=1)
        bad = Message(0, COORDINATOR, MessageKind.REPORT, None)
        with pytest.raises(ProtocolError):
            system.coordinator.handle_message(bad, system.network)
