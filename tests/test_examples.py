"""Smoke tests: every example script runs to completion and prints its
headline output.  Examples are executed in-process via runpy with argv
pinned to fast settings."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "infinite window" in out
        assert "sliding window" in out
        assert "with replacement" in out
        assert "messages exchanged" in out

    def test_network_monitoring(self, capsys):
        out = run_example("network_monitoring.py", ["--scale", "tiny"], capsys)
        assert "distinct flows" in out
        assert "messages" in out
        assert "Observation 1" in out

    def test_email_analytics(self, capsys):
        out = run_example(
            "email_analytics.py", ["--window", "100", "--sample-size", "4"], capsys
        )
        assert "window sample" in out
        assert "lazy feedback" in out

    def test_distinct_count_estimation(self, capsys):
        out = run_example("distinct_count_estimation.py", [], capsys)
        assert "ground truth" in out
        assert "1/sqrt" in out

    def test_lower_bound_adversary(self, capsys):
        out = run_example("lower_bound_adversary.py", [], capsys)
        assert "optimality gap" in out
        assert "measured" in out

    def test_all_examples_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py",
            "network_monitoring.py",
            "email_analytics.py",
            "distinct_count_estimation.py",
            "lower_bound_adversary.py",
        }
        assert scripts == tested, f"untested examples: {scripts - tested}"
