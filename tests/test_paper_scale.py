"""Tests for the chunked paper-scale driver (at small scales)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.paper_scale import run_paper_scale


class TestPaperScaleDriver:
    def test_chunked_run_completes(self):
        lines = []
        result = run_paper_scale(
            "oc48",
            scale="tiny",
            num_sites=3,
            sample_size=8,
            seed=1,
            chunk_size=500,
            progress=lines.append,
        )
        assert result.n_elements == 4000
        assert result.n_distinct == 410
        assert result.messages > 0
        assert len(result.sample) == 8
        assert result.elements_per_second > 0
        assert result.slow_path_elements <= result.n_elements
        assert len(lines) == 1 + 8  # generation line + 8 chunks

    def test_chunking_is_invisible(self):
        # Chunk size must not change messages or the sample.
        a = run_paper_scale(
            "enron", scale="tiny", num_sites=2, sample_size=5, seed=3,
            chunk_size=100,
        )
        b = run_paper_scale(
            "enron", scale="tiny", num_sites=2, sample_size=5, seed=3,
            chunk_size=4000,
        )
        assert a.messages == b.messages
        assert a.sample == b.sample

    def test_prefilter_dominates_at_steady_state(self):
        result = run_paper_scale(
            "oc48", scale="small", num_sites=4, sample_size=10, seed=5,
            chunk_size=10_000,
        )
        # Most of the 60k elements never touch the slow path.
        assert result.slow_path_elements < result.n_elements * 0.5

    def test_medium_scale_throughput(self):
        result = run_paper_scale(
            "enron", scale="small", num_sites=5, sample_size=10, seed=7
        )
        assert result.elements_per_second > 200_000  # conservative floor
