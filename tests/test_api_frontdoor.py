"""Tests for the ``SamplerConfig``/``make_sampler`` front door, the
constructor validation contract, and the deprecated compatibility shims.
"""

from __future__ import annotations

import pytest

from repro import (
    BroadcastSamplerSystem,
    CachingSamplerSystem,
    DistinctSamplerSystem,
    SamplerConfig,
    SlidingWindowBottomS,
    SlidingWindowBottomSFeedback,
    SlidingWindowSystem,
    SlidingWindowWithReplacement,
    WithReplacementSampler,
    get_variant,
    infinite_window_sampler,
    make_sampler,
    register_variant,
    sampler_variants,
    sliding_window_sampler,
    snapshot,
    with_replacement_sampler,
)
from repro.core.api import SamplerVariant
from repro.errors import ConfigurationError


class TestMakeSampler:
    def test_accepts_config_object(self):
        sampler = make_sampler(
            SamplerConfig(variant="infinite", num_sites=2, sample_size=3)
        )
        assert isinstance(sampler, DistinctSamplerSystem)

    def test_accepts_variant_string_plus_overrides(self):
        sampler = make_sampler("sliding", num_sites=2, window=5)
        assert isinstance(sampler, SlidingWindowSystem)

    def test_config_overrides_merge(self):
        base = SamplerConfig(variant="infinite", num_sites=2, sample_size=3)
        sampler = make_sampler(base, sample_size=7)
        assert sampler.sample_size == 7

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sampler variant"):
            make_sampler("no-such-variant", num_sites=1)

    def test_bad_config_type_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sampler(42)

    def test_windowed_variant_needs_window(self):
        with pytest.raises(ConfigurationError, match="window"):
            make_sampler("sliding", num_sites=2)

    def test_infinite_variant_rejects_window(self):
        with pytest.raises(ConfigurationError, match="window"):
            make_sampler("infinite", num_sites=2, window=5)

    def test_variant_resolution(self):
        cases = [
            (dict(variant="infinite", num_sites=2, sample_size=2), DistinctSamplerSystem),
            (dict(variant="broadcast", num_sites=2, sample_size=2), BroadcastSamplerSystem),
            (dict(variant="caching", num_sites=2, sample_size=2), CachingSamplerSystem),
            (dict(variant="sliding", num_sites=2, window=5), SlidingWindowSystem),
            (dict(variant="sliding", num_sites=2, window=5, sample_size=3), SlidingWindowBottomSFeedback),
            (dict(variant="sliding-feedback", num_sites=2, window=5, sample_size=3), SlidingWindowBottomSFeedback),
            (dict(variant="sliding-local-push", num_sites=2, window=5, sample_size=3), SlidingWindowBottomS),
            (dict(variant="with-replacement", num_sites=2, sample_size=3), WithReplacementSampler),
            (dict(variant="with-replacement", num_sites=2, sample_size=3, window=5), SlidingWindowWithReplacement),
        ]
        for fields, cls in cases:
            assert type(make_sampler(SamplerConfig(**fields))) is cls, fields

    def test_caching_default_cache_size_is_sample_size(self):
        sampler = make_sampler("caching", num_sites=2, sample_size=6)
        assert sampler.cache_size == 6
        explicit = make_sampler(
            "caching", num_sites=2, sample_size=6, cache_size=0
        )
        assert explicit.cache_size == 0

    def test_registry_is_extensible(self):
        name = "test-only-variant"
        register_variant(
            SamplerVariant(
                name=name,
                factory=lambda config: DistinctSamplerSystem(
                    num_sites=config.num_sites, sample_size=config.sample_size
                ),
                summary="registered by the test suite",
            )
        )
        try:
            assert name in sampler_variants()
            assert get_variant(name).summary.startswith("registered")
            sampler = make_sampler(name, num_sites=2, sample_size=2)
            assert isinstance(sampler, DistinctSamplerSystem)
        finally:
            from repro.core.api import _REGISTRY

            _REGISTRY.pop(name, None)


#: Constructor calls for the validation contract: every system must
#: reject num_sites < 1, sample_size < 1, and (where windowed) window < 1
#: with ConfigurationError.
_CTORS = {
    "infinite": lambda **kw: DistinctSamplerSystem(
        num_sites=kw["num_sites"], sample_size=kw["sample_size"]
    ),
    "broadcast": lambda **kw: BroadcastSamplerSystem(
        num_sites=kw["num_sites"], sample_size=kw["sample_size"]
    ),
    "caching": lambda **kw: CachingSamplerSystem(
        num_sites=kw["num_sites"], sample_size=kw["sample_size"], cache_size=4
    ),
    "sliding": lambda **kw: SlidingWindowSystem(
        num_sites=kw["num_sites"], window=kw["window"]
    ),
    "local-push": lambda **kw: SlidingWindowBottomS(
        num_sites=kw["num_sites"],
        window=kw["window"],
        sample_size=kw["sample_size"],
    ),
    "feedback": lambda **kw: SlidingWindowBottomSFeedback(
        num_sites=kw["num_sites"],
        window=kw["window"],
        sample_size=kw["sample_size"],
    ),
    "wr": lambda **kw: WithReplacementSampler(
        num_sites=kw["num_sites"], sample_size=kw["sample_size"]
    ),
    "wr-sliding": lambda **kw: SlidingWindowWithReplacement(
        num_sites=kw["num_sites"],
        window=kw["window"],
        sample_size=kw["sample_size"],
    ),
}

_WINDOWED = {"sliding", "local-push", "feedback", "wr-sliding"}


class TestUniformConstructorValidation:
    @pytest.mark.parametrize("name", sorted(_CTORS), ids=sorted(_CTORS))
    def test_rejects_bad_parameters(self, name):
        build = _CTORS[name]
        good = dict(num_sites=2, sample_size=2, window=5)
        assert build(**good) is not None
        with pytest.raises(ConfigurationError):
            build(**{**good, "num_sites": 0})
        with pytest.raises(ConfigurationError):
            build(**{**good, "num_sites": -3})
        if name != "sliding":  # s is fixed to 1 for Algorithms 3-4
            with pytest.raises(ConfigurationError):
                build(**{**good, "sample_size": 0})
        if name in _WINDOWED:
            with pytest.raises(ConfigurationError):
                build(**{**good, "window": 0})
            with pytest.raises(ConfigurationError):
                build(**{**good, "window": -1})

    def test_config_validate_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            SamplerConfig(num_sites=0).validate()
        with pytest.raises(ConfigurationError):
            SamplerConfig(sample_size=0).validate()
        with pytest.raises(ConfigurationError):
            SamplerConfig(window=-1).validate()
        with pytest.raises(ConfigurationError):
            SamplerConfig(cache_size=-1).validate()
        assert SamplerConfig(num_sites=3).validate() is not None


class TestDeprecatedShims:
    """The pre-protocol surface still works for one release, warning."""

    def test_infinite_window_sampler_factory(self):
        with pytest.warns(DeprecationWarning, match="infinite_window_sampler"):
            old = infinite_window_sampler(num_sites=2, sample_size=3, seed=5)
        assert isinstance(old, DistinctSamplerSystem)
        new = make_sampler("infinite", num_sites=2, sample_size=3, seed=5)
        for i in range(50):
            old.observe(i % 2, i)
            new.observe(i % 2, i)
        assert old.sample() == new.sample()
        assert old.stats() == new.stats()

    def test_sliding_window_sampler_factory(self):
        with pytest.warns(DeprecationWarning, match="sliding_window_sampler"):
            s1 = sliding_window_sampler(num_sites=2, window=5)
        assert isinstance(s1, SlidingWindowSystem)
        with pytest.warns(DeprecationWarning):
            fb = sliding_window_sampler(num_sites=2, window=5, sample_size=3)
        assert isinstance(fb, SlidingWindowBottomSFeedback)
        with pytest.warns(DeprecationWarning):
            push = sliding_window_sampler(
                num_sites=2, window=5, sample_size=3, feedback=False
            )
        assert isinstance(push, SlidingWindowBottomS)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                sliding_window_sampler(num_sites=2, window=5, sample_size=0)

    def test_with_replacement_sampler_factory(self):
        with pytest.warns(DeprecationWarning, match="with_replacement_sampler"):
            infinite = with_replacement_sampler(num_sites=2, sample_size=3)
        assert isinstance(infinite, WithReplacementSampler)
        with pytest.warns(DeprecationWarning):
            sliding = with_replacement_sampler(
                num_sites=2, sample_size=3, window=4
            )
        assert isinstance(sliding, SlidingWindowWithReplacement)

    def test_process_slot_shim(self):
        legacy = make_sampler("sliding", num_sites=2, window=5, seed=3)
        modern = make_sampler("sliding", num_sites=2, window=5, seed=3)
        arrivals = [(0, "a"), (1, "b")]
        with pytest.warns(DeprecationWarning, match="process_slot"):
            legacy.process_slot(1, arrivals)
        modern.advance(1)
        modern.observe_batch(arrivals)
        assert legacy.sample() == modern.sample()
        assert legacy.stats() == modern.stats()

    def test_query_shim_old_shapes(self):
        s1 = make_sampler("sliding", num_sites=1, window=5, seed=3)
        s1.observe(0, "x", slot=1)
        with pytest.warns(DeprecationWarning, match="query"):
            assert s1.query() == "x"  # single element, not a list

        bottom = make_sampler(
            "sliding-feedback", num_sites=1, window=5, sample_size=2, seed=3
        )
        bottom.observe(0, "x", slot=1)
        with pytest.warns(DeprecationWarning, match="query"):
            assert bottom.query() == ["x"]  # list shape

    def test_sample_legacy_shim_old_shapes(self):
        infinite = make_sampler("infinite", num_sites=1, sample_size=2)
        infinite.observe(0, "x")
        with pytest.warns(DeprecationWarning, match="sample_legacy"):
            assert infinite.sample_legacy() == ["x"]

        wr = make_sampler("with-replacement", num_sites=1, sample_size=2)
        with pytest.warns(DeprecationWarning, match="sample_legacy"):
            draws = wr.sample_legacy()
        assert draws == [None, None]  # per-copy draws, empty copies = None

    def test_snapshot_of_factory_built_sampler(self):
        # Old factory output is still a first-class protocol citizen.
        with pytest.warns(DeprecationWarning):
            old = sliding_window_sampler(num_sites=2, window=5, seed=1)
        old.observe(0, "a", slot=1)
        state = snapshot(old)
        assert state["config"]["variant"] == "sliding"
