"""Tests for Algorithm Broadcast (the eager-synchronization baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BroadcastSamplerSystem, CentralizedDistinctSampler
from repro.errors import ConfigurationError, ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, Message, MessageKind


class TestExactness:
    @pytest.mark.parametrize("sample_size", [1, 5, 20])
    def test_equals_oracle(self, sample_size):
        hasher = UnitHasher(31)
        system = BroadcastSamplerSystem(4, sample_size, hasher=hasher)
        oracle = CentralizedDistinctSampler(sample_size, hasher)
        rng = np.random.default_rng(sample_size)
        for _ in range(1200):
            element = int(rng.integers(0, 250))
            system.observe(int(rng.integers(0, 4)), element)
            oracle.observe(element)
            assert system.sample() == oracle.sample()


class TestSynchronization:
    def test_sites_always_in_sync(self):
        # The defining property: u_i == u after every element.
        system = BroadcastSamplerSystem(5, 8, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(1000):
            system.observe(int(rng.integers(0, 5)), int(rng.integers(0, 300)))
            u = system.threshold
            for site in system.sites:
                assert site.u_local == u

    def test_no_rejected_reports_after_fill(self):
        # With synced thresholds, every report either changes the sample or
        # is a duplicate of a sampled element.
        hasher = UnitHasher(17)
        system = BroadcastSamplerSystem(3, 5, hasher=hasher)
        rng = np.random.default_rng(1)
        elements = [int(rng.integers(0, 400)) for _ in range(1500)]
        for element in elements:
            site = int(rng.integers(0, 3))
            before = set(system.sample())
            u_before = system.threshold
            reports_before = system.coordinator.reports_received
            system.observe(site, element)
            if system.coordinator.reports_received > reports_before:
                # A report was sent: hash was under the (exact) threshold,
                # so the element is in the sample now.
                assert hasher.unit(element) < u_before or len(before) < 5
                assert element in system.sample()


class TestMessageAccounting:
    def test_message_composition(self):
        system = BroadcastSamplerSystem(6, 4, seed=2)
        rng = np.random.default_rng(2)
        for element in range(800):
            system.observe(int(rng.integers(0, 6)), element)
        stats = system.network.stats
        reports = stats.site_to_coordinator
        broadcasts = system.coordinator.broadcasts_sent
        assert stats.total_messages == reports + 6 * broadcasts
        assert stats.by_kind[MessageKind.BROADCAST] == 6 * broadcasts

    def test_more_expensive_than_lazy_at_scale(self):
        # Fig 5.4's headline: Broadcast sends far more messages at large k.
        from repro import DistinctSamplerSystem

        k, s, n = 40, 10, 5000
        rng = np.random.default_rng(3)
        elements = rng.integers(0, 2000, n).tolist()
        sites = rng.integers(0, k, n).tolist()
        ours = DistinctSamplerSystem(k, s, seed=4, algorithm="mix64")
        eager = BroadcastSamplerSystem(k, s, seed=4, algorithm="mix64")
        for element, site in zip(elements, sites):
            ours.observe(site, element)
            eager.observe(site, element)
        assert eager.total_messages > 3 * ours.total_messages

    def test_no_broadcast_before_fill(self):
        # Threshold stays 1.0 until the sample fills: nothing to broadcast.
        system = BroadcastSamplerSystem(3, 10, seed=5)
        for element in range(9):
            system.observe(0, element)
        assert system.coordinator.broadcasts_sent == 0


class TestErrors:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            BroadcastSamplerSystem(0, 5)
        with pytest.raises(ConfigurationError):
            BroadcastSamplerSystem(3, 0)

    def test_site_rejects_threshold_kind(self):
        system = BroadcastSamplerSystem(2, 5, seed=6)
        bad = Message(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        with pytest.raises(ProtocolError):
            system.sites[0].handle_message(bad, system.network)

    def test_coordinator_rejects_foreign(self):
        system = BroadcastSamplerSystem(2, 5, seed=6)
        bad = Message(0, COORDINATOR, MessageKind.SW_REPORT, None)
        with pytest.raises(ProtocolError):
            system.coordinator.handle_message(bad, system.network)
