"""Tests for the perf subsystem: scenarios, suite, report, regression gate."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.api import get_variant, sampler_variants
from repro.errors import PerfError
from repro.perf import (
    SCHEMA_VERSION,
    Comparison,
    PerfRecord,
    PerfReport,
    ScenarioParams,
    SuiteConfig,
    Tolerances,
    compare_reports,
    get_scenario,
    load_report,
    perf_scenarios,
    render_markdown,
    report_from_dict,
    run_suite,
    save_report,
)

SMALL = SuiteConfig(
    n_events=400, num_sites=3, sample_size=4, window=8, seed=11, repeats=1
)


@pytest.fixture(scope="module")
def small_report() -> PerfReport:
    return run_suite(SMALL)


class TestScenarioRegistry:
    def test_builtin_scenarios(self):
        assert perf_scenarios() == (
            "adversarial",
            "bursty",
            "netsim-roundtrip",
            "sharded-mixed-rw",
            "sharded-query-heavy",
            "sharded-reshard",
            "sharded-uniform",
            "sharded-uniform-columnar",
            "sharded-uniform-parallel",
            "sharded-uniform-shm",
            "sharded-uniform-thread",
            "sliding-churn",
            "uniform",
            "uniform-columnar",
        )

    def test_unknown_scenario_raises(self):
        with pytest.raises(PerfError):
            get_scenario("nope")

    @pytest.mark.parametrize("name", perf_scenarios())
    def test_builders_are_deterministic(self, name):
        params = ScenarioParams(n_events=200, num_sites=3, seed=5, window=8)
        scenario = get_scenario(name)
        assert scenario.build(params) == scenario.build(params)

    def test_seed_changes_workload(self):
        scenario = get_scenario("uniform")
        a = scenario.build(ScenarioParams(n_events=200, num_sites=3, seed=1))
        b = scenario.build(ScenarioParams(n_events=200, num_sites=3, seed=2))
        assert a != b

    def test_slotted_scenario_stamps_slots(self):
        params = ScenarioParams(n_events=200, num_sites=3, seed=5, window=8)
        events = get_scenario("sliding-churn").build(params)
        assert all(len(event) == 3 for event in events)
        slots = [slot for _, _, slot in events]
        assert slots == sorted(slots) and slots[0] == 1

    def test_unslotted_scenarios_are_plain_pairs(self):
        params = ScenarioParams(n_events=200, num_sites=3, seed=5)
        for name in ("uniform", "bursty", "adversarial"):
            events = get_scenario(name).build(params)
            assert all(len(event) == 2 for event in events)
            assert all(0 <= site < 3 for site, _ in events)

    def test_sharded_uniform_is_raw_items(self):
        # Routing is the scenario: the builder emits bare keys and the
        # driver assigns sites through the Engine's hash policy.
        params = ScenarioParams(n_events=200, num_sites=3, seed=5)
        events = get_scenario("sharded-uniform").build(params)
        assert len(events) == 200
        assert all(isinstance(event, int) for event in events)

    def test_columnar_twins_describe_the_same_workloads(self):
        """The columnar scenarios are representation changes only: same
        seeds, same columns, zero tuples."""
        from repro.core.events import EventBatch

        params = ScenarioParams(n_events=200, num_sites=3, seed=5)
        tuple_uniform = get_scenario("uniform").build(params)
        columnar_uniform = get_scenario("uniform-columnar").build(params)
        assert isinstance(columnar_uniform, EventBatch)
        assert columnar_uniform == EventBatch.from_events(tuple_uniform)
        raw = get_scenario("sharded-uniform").build(params)
        columnar_raw = get_scenario("sharded-uniform-columnar").build(params)
        assert isinstance(columnar_raw, EventBatch)
        assert columnar_raw.sites is None
        assert columnar_raw.items.tolist() == raw

    def test_adversarial_floods_every_site(self):
        params = ScenarioParams(n_events=60, num_sites=3, seed=5)
        events = get_scenario("adversarial").build(params)
        # Every distinct element reaches all three sites exactly once.
        by_element: dict = {}
        for site, element in events:
            by_element.setdefault(element, []).append(site)
        assert all(sorted(sites) == [0, 1, 2] for sites in by_element.values())

    def test_params_validation(self):
        with pytest.raises(PerfError):
            ScenarioParams(n_events=0).validate()
        with pytest.raises(PerfError):
            ScenarioParams(num_sites=0).validate()
        with pytest.raises(PerfError):
            ScenarioParams(window=0).validate()


class TestSuite:
    def test_covers_every_registered_variant(self, small_report):
        assert {r.variant for r in small_report.records} == set(
            sampler_variants()
        )

    def test_windowed_variants_only_on_slotted_scenarios(self, small_report):
        for record in small_report.records:
            if get_variant(record.variant).windowed:
                assert record.scenario == "sliding-churn"

    def test_netsim_skips_facades_without_network(self, small_report):
        scenarios = {
            r.variant: r for r in small_report.records
            if r.scenario == "netsim-roundtrip"
        }
        assert "with-replacement" not in scenarios
        assert "sharded:infinite" not in scenarios
        assert "infinite" in scenarios

    @pytest.mark.parametrize(
        "scenario",
        [
            "sharded-uniform",
            "sharded-uniform-columnar",
            "sharded-uniform-parallel",
            "sharded-uniform-shm",
            "sharded-uniform-thread",
        ],
    )
    def test_sharded_uniform_runs_only_sharded_variants(
        self, small_report, scenario
    ):
        variants = {
            r.variant for r in small_report.records
            if r.scenario == scenario
        }
        assert variants == {
            "sharded:infinite", "sharded:broadcast", "sharded:caching"
        }

    def test_columnar_cells_match_tuple_counters(self, small_report):
        """Same workload, different representation: the deterministic
        counters of every columnar cell equal its tuple twin's."""
        for tuple_name, columnar_name in (
            ("uniform", "uniform-columnar"),
            ("sharded-uniform", "sharded-uniform-columnar"),
        ):
            tuple_cells = {
                r.variant: r for r in small_report.records
                if r.scenario == tuple_name
            }
            columnar_cells = {
                r.variant: r for r in small_report.records
                if r.scenario == columnar_name
            }
            assert set(columnar_cells) == set(tuple_cells)
            for variant, cell in columnar_cells.items():
                twin = tuple_cells[variant]
                assert cell.messages_total == twin.messages_total
                assert cell.bytes_total == twin.bytes_total
                assert cell.memory_total == twin.memory_total
                assert cell.sample_len == twin.sample_len

    @pytest.mark.parametrize(
        "scenario",
        [
            "sharded-uniform-parallel",
            "sharded-uniform-shm",
            "sharded-uniform-thread",
        ],
    )
    def test_parallel_cells_match_serial_counters(self, small_report, scenario):
        """The executor scenarios are execution changes only: their
        deterministic counters must equal the serial columnar twin's —
        the suite-level face of the bit-identical acceptance criterion."""
        parallel = {
            r.variant: r for r in small_report.records
            if r.scenario == scenario
        }
        serial = {
            r.variant: r for r in small_report.records
            if r.scenario == "sharded-uniform-columnar"
        }
        assert set(parallel) == set(serial) and parallel
        for variant, cell in parallel.items():
            twin = serial[variant]
            assert cell.messages_total == twin.messages_total
            assert cell.bytes_total == twin.bytes_total
            assert cell.memory_total == twin.memory_total
            assert cell.sample_len == twin.sample_len

    def test_serialization_counters_by_backend(self, small_report):
        """Executor identity and the pickle/ipc split: serial and thread
        cells move no bytes at all, shm cells move framing but zero
        pickled event payload, and process cells pay the pickle tax the
        shm backend exists to kill."""
        by_scenario: dict = {}
        for record in small_report.records:
            by_scenario.setdefault(record.scenario, []).append(record)
        for record in by_scenario["sharded-uniform-columnar"]:
            assert record.executor == "serial"
            assert record.pickle_bytes_per_event == 0.0
            assert record.ipc_bytes_per_event == 0.0
        for record in by_scenario["sharded-uniform-thread"]:
            assert record.executor == "thread"
            assert record.pickle_bytes_per_event == 0.0
            assert record.ipc_bytes_per_event == 0.0
        for record in by_scenario["sharded-uniform-shm"]:
            assert record.executor == "shm"
            assert record.pickle_bytes_per_event == 0.0
            assert record.ipc_bytes_per_event > 0.0
        for record in by_scenario["sharded-uniform-parallel"]:
            assert record.executor == "process"
            assert record.pickle_bytes_per_event > 0.0
            assert record.ipc_bytes_per_event > 0.0

    def test_record_metrics_are_sane(self, small_report):
        for record in small_report.records:
            assert record.n_events > 0
            assert record.elapsed_s > 0
            assert record.throughput_eps > 0
            assert record.messages_total > 0
            assert record.sample_len > 0

    def test_protocol_counters_are_reproducible(self, small_report):
        again = run_suite(SMALL)
        for record in small_report.records:
            twin = again.record_for(record.scenario, record.variant)
            assert twin is not None
            assert twin.messages_total == record.messages_total
            assert twin.bytes_total == record.bytes_total
            assert twin.memory_total == record.memory_total
            assert twin.sample_len == record.sample_len

    def test_scenario_and_variant_filters(self):
        report = run_suite(
            SuiteConfig(
                n_events=200,
                num_sites=2,
                sample_size=2,
                window=8,
                scenarios=("uniform",),
                variants=("infinite", "broadcast"),
            )
        )
        assert {r.key for r in report.records} == {
            ("uniform", "infinite"),
            ("uniform", "broadcast"),
        }

    def test_unknown_names_raise(self):
        from repro.errors import ReproError

        with pytest.raises(PerfError):
            run_suite(SuiteConfig(scenarios=("nope",)))
        with pytest.raises(ReproError):  # ConfigurationError from the registry
            run_suite(SuiteConfig(variants=("nope",)))
        with pytest.raises(PerfError):
            run_suite(SuiteConfig(repeats=0))


class TestReport:
    def test_json_round_trip(self, small_report, tmp_path):
        path = save_report(small_report, tmp_path / "report.json")
        loaded = load_report(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.records == small_report.records
        assert loaded.params == json.loads(
            json.dumps(small_report.params)
        )

    def test_environment_is_stamped(self, small_report):
        assert small_report.python
        assert small_report.numpy
        assert small_report.generated_at

    def test_rejects_wrong_schema_version(self, small_report):
        data = small_report.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(PerfError):
            report_from_dict(data)

    def test_rejects_malformed_payloads(self, small_report):
        with pytest.raises(PerfError):
            report_from_dict([1, 2, 3])
        data = small_report.to_dict()
        del data["records"]
        with pytest.raises(PerfError):
            report_from_dict(data)
        data = small_report.to_dict()
        del data["records"][0]["elapsed_s"]
        with pytest.raises(PerfError):
            report_from_dict(data)

    def test_load_errors(self, tmp_path):
        with pytest.raises(PerfError):
            load_report(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(PerfError):
            load_report(bad)


def _tweak(report: PerfReport, index: int, **changes) -> PerfReport:
    records = list(report.records)
    data = {**records[index].__dict__, **changes}
    records[index] = PerfRecord(**data)
    return PerfReport(records=tuple(records), params=report.params)


class TestRegressionGate:
    def test_self_comparison_is_ok(self, small_report):
        comparison = compare_reports(small_report, small_report)
        assert isinstance(comparison, Comparison)
        assert comparison.ok
        assert not comparison.regressions
        assert "OK" in comparison.render()

    def test_time_regression_fails(self, small_report):
        slow = _tweak(
            small_report, 0, elapsed_s=small_report.records[0].elapsed_s * 10
        )
        comparison = compare_reports(slow, small_report)
        assert not comparison.ok
        assert any(d.metric == "elapsed_s" for d in comparison.regressions)
        assert "REGRESSION" in comparison.render()

    def test_time_within_tolerance_passes(self, small_report):
        slightly_slow = _tweak(
            small_report, 0, elapsed_s=small_report.records[0].elapsed_s * 2
        )
        assert compare_reports(slightly_slow, small_report).ok

    def test_count_regression_fails(self, small_report):
        chatty = _tweak(
            small_report,
            0,
            messages_total=small_report.records[0].messages_total * 2,
        )
        comparison = compare_reports(chatty, small_report)
        assert not comparison.ok
        assert any(
            d.metric == "messages_total" for d in comparison.regressions
        )

    def test_lost_coverage_fails(self, small_report):
        shrunk = PerfReport(
            records=small_report.records[1:], params=small_report.params
        )
        comparison = compare_reports(shrunk, small_report)
        assert not comparison.ok
        assert comparison.missing == (small_report.records[0].key,)

    def test_new_records_are_informational(self, small_report):
        shrunk_baseline = PerfReport(
            records=small_report.records[1:], params=small_report.params
        )
        comparison = compare_reports(small_report, shrunk_baseline)
        assert comparison.ok
        assert comparison.added == (small_report.records[0].key,)

    def test_mismatched_workloads_are_rejected(self, small_report):
        other = PerfReport(
            records=small_report.records,
            params={**small_report.params, "n_events": 999_999},
        )
        with pytest.raises(PerfError, match="not comparable"):
            compare_reports(other, small_report)
        # Hand-built fixtures without params skip the guard.
        bare = PerfReport(records=small_report.records)
        assert compare_reports(bare, small_report).ok

    def test_repeats_do_not_block_comparison(self, small_report):
        other = PerfReport(
            records=small_report.records,
            params={**small_report.params, "repeats": 5},
        )
        assert compare_reports(other, small_report).ok

    def test_zero_pickle_invariant_fails_shm_leak(self, small_report):
        """A zero-copy backend reporting pickled event payload regresses
        no matter what the baseline recorded."""
        index = next(
            i for i, r in enumerate(small_report.records)
            if r.scenario == "sharded-uniform-shm"
        )
        leaky = _tweak(small_report, index, pickle_bytes_per_event=4.2)
        comparison = compare_reports(leaky, small_report)
        assert not comparison.ok
        offenders = [
            d for d in comparison.regressions
            if d.metric == "pickle_bytes_per_event"
        ]
        assert len(offenders) == 1
        assert offenders[0].scenario == "sharded-uniform-shm"
        assert "pickle_bytes_per_event" in comparison.render()
        # The process backend is allowed its pickle tax.
        index = next(
            i for i, r in enumerate(small_report.records)
            if r.scenario == "sharded-uniform-parallel"
        )
        assert small_report.records[index].pickle_bytes_per_event > 0
        assert compare_reports(small_report, small_report).ok

    def test_query_metrics_are_recorded(self, small_report):
        """Schema v3 query metrics are populated for the query scenarios."""
        query_records = [
            r for r in small_report.records
            if r.scenario in ("sharded-query-heavy", "sharded-mixed-rw")
        ]
        assert query_records
        for record in query_records:
            assert record.query_seconds_cold > 0.0
            assert record.query_seconds_cached >= 0.0
            assert record.query_seconds_cached <= record.query_seconds_cold
            # Queries share syncs within a quiescent period.
            assert record.syncs_per_query < 1.0

    def test_query_cache_invariant_fails_slow_cached(self, small_report):
        """A query-heavy record whose cached query is not 10x faster than
        cold regresses regardless of the baseline."""
        index = next(
            i for i, r in enumerate(small_report.records)
            if r.scenario == "sharded-query-heavy"
        )
        cold = small_report.records[index].query_seconds_cold
        slow = _tweak(small_report, index, query_seconds_cached=cold / 2)
        comparison = compare_reports(slow, small_report)
        assert not comparison.ok
        offenders = [
            d for d in comparison.regressions
            if d.metric == "query_seconds_cached"
        ]
        assert len(offenders) == 1
        assert offenders[0].scenario == "sharded-query-heavy"

    def test_mixed_rw_invariant_fails_sync_per_query(self, small_report):
        """A mixed-rw record syncing once (or more) per query regresses."""
        index = next(
            i for i, r in enumerate(small_report.records)
            if r.scenario == "sharded-mixed-rw"
        )
        chatty = _tweak(small_report, index, syncs_per_query=1.0)
        comparison = compare_reports(chatty, small_report)
        assert not comparison.ok
        offenders = [
            d for d in comparison.regressions
            if d.metric == "syncs_per_query"
        ]
        assert len(offenders) == 1
        assert offenders[0].scenario == "sharded-mixed-rw"

    def test_render_markdown_ok_and_regressed(self, small_report):
        ok = render_markdown(
            compare_reports(small_report, small_report), small_report
        )
        assert "### Perf regression gate" in ok
        assert "**OK**" in ok
        assert "Query-path metrics" in ok
        assert "sharded-query-heavy" in ok
        assert "sharded-mixed-rw" in ok

        slow = _tweak(
            small_report, 0, elapsed_s=small_report.records[0].elapsed_s * 100
        )
        bad = render_markdown(compare_reports(slow, small_report), slow)
        assert "**FAIL**" in bad
        assert "elapsed_s" in bad

    def test_custom_tolerances(self, small_report):
        slow = _tweak(
            small_report, 0, elapsed_s=small_report.records[0].elapsed_s * 4
        )
        assert not compare_reports(slow, small_report).ok
        assert compare_reports(
            slow, small_report, Tolerances(time_factor=5.0)
        ).ok
        assert Tolerances().factor_for("elapsed_s") == 2.5
        assert Tolerances().factor_for("messages_total") == 1.25


class TestPerfCli:
    ARGS = [
        "--n", "300", "--sites", "2", "--sample-size", "2", "--window", "8",
        "--scenario", "uniform", "--scenario", "sliding-churn",
    ]

    def test_run_writes_valid_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert main(["perf", "run", *self.ARGS, "--out", str(out)]) == 0
        report = load_report(out)
        assert report.schema_version == SCHEMA_VERSION
        assert {r.scenario for r in report.records} == {
            "uniform", "sliding-churn",
        }
        assert "wrote" in capsys.readouterr().out

    def test_compare_ok_and_regressed(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        main(["perf", "run", *self.ARGS, "--out", str(out)])
        assert main(["perf", "compare", str(out), str(out)]) == 0
        assert "OK" in capsys.readouterr().out
        data = json.loads(out.read_text())
        data["records"][0]["elapsed_s"] *= 100
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(data))
        assert main(["perf", "compare", str(regressed), str(out)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_baseline_writes_default_path(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["perf", "baseline", *self.ARGS]) == 0
        assert (tmp_path / "benchmarks" / "baseline.json").exists()

    def test_baseline_defaults_mirror_ci_workload(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["perf", "baseline"])
        assert (args.n, args.repeats) == (8_000, 2)

    def test_mismatched_workload_compare_is_a_cli_error(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        small = tmp_path / "small.json"
        big = tmp_path / "big.json"
        base = ["--sites", "2", "--sample-size", "2", "--scenario", "uniform"]
        main(["perf", "run", "--n", "200", *base, "--out", str(small)])
        main(["perf", "run", "--n", "400", *base, "--out", str(big)])
        assert main(["perf", "compare", str(big), str(small)]) == 2
        assert "not comparable" in capsys.readouterr().err

    def test_unknown_scenario_is_a_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["perf", "run", "--scenario", "nope"]) == 2
        assert "unknown perf scenario" in capsys.readouterr().err

    def test_profile_prints_hot_spots(self, capsys):
        from repro.cli import main

        assert main([
            "perf", "profile", "sharded-uniform",
            "--n", "500", "--sites", "2", "--sample-size", "2",
            "--shards", "2", "--variant", "sharded:infinite", "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "variant=sharded:infinite" in out
        assert "cumulative" in out
        assert "observe_batch" in out

    def test_profile_picks_first_applicable_variant(self, capsys):
        from repro.cli import main

        assert main([
            "perf", "profile", "uniform", "--n", "300", "--sites", "2",
            "--sample-size", "2", "--top", "3",
        ]) == 0
        # sorted(registry)[0] applicable to the uniform scenario
        assert "variant=broadcast" in capsys.readouterr().out

    def test_profile_errors_are_cli_errors(self, capsys):
        from repro.cli import main

        assert main(["perf", "profile", "nope"]) == 2
        assert "unknown perf scenario" in capsys.readouterr().err
        assert main([
            "perf", "profile", "sharded-uniform", "--variant", "infinite",
        ]) == 2
        assert "does not apply" in capsys.readouterr().err


class TestBatchSpeedup:
    @pytest.mark.speedup
    def test_vectorized_batch_is_3x_on_infinite_20k(self):
        """The acceptance floor: observe_batch >= 3x a single-observe loop
        on the 20k-element infinite-window micro-benchmark (best-of-3
        timings on each side to damp scheduler noise)."""
        import time

        from repro import make_sampler
        from repro.perf import ScenarioParams, get_scenario

        events = get_scenario("uniform").build(
            ScenarioParams(n_events=20_000, num_sites=8, seed=7)
        )

        def build():
            return make_sampler(
                "infinite",
                num_sites=8,
                sample_size=16,
                seed=5,
                algorithm="mix64",
            )

        def time_single():
            system = build()
            observe = system.observe
            started = time.perf_counter()
            for site, element in events:
                observe(site, element)
            return time.perf_counter() - started, system

        def time_batch():
            system = build()
            started = time.perf_counter()
            system.observe_batch(events)
            return time.perf_counter() - started, system

        single_s, single = min(
            (time_single() for _ in range(3)), key=lambda pair: pair[0]
        )
        batch_s, batched = min(
            (time_batch() for _ in range(3)), key=lambda pair: pair[0]
        )
        assert single.sample() == batched.sample()
        assert single.stats() == batched.stats()
        speedup = single_s / batch_s
        assert speedup >= 3.0, f"batch only {speedup:.2f}x faster"

    @pytest.mark.speedup
    def test_columnar_ingest_is_2x_on_sharded_uniform_100k(self):
        """The columnar acceptance floor: an EventBatch through the
        Engine → ShardedSampler → core pipeline must be >= 2x the
        tuple-batch path on the sharded-uniform workload at n=100k
        (measured ~5x locally; best-of-3 with GC off to damp noise).
        The columnar batch is rebuilt per run so the hash-column cache
        never carries over between timings."""
        import gc
        import time

        from repro import make_sampler
        from repro.perf import ScenarioParams, get_scenario
        from repro.runtime.engine import Engine

        params = ScenarioParams(n_events=100_000, num_sites=8, seed=7)
        tuple_events = get_scenario("sharded-uniform").build(params)
        columnar_scenario = get_scenario("sharded-uniform-columnar")

        def build():
            sampler = make_sampler(
                "sharded:infinite",
                num_sites=8,
                sample_size=16,
                shards=4,
                seed=5,
                algorithm="mix64",
            )
            return sampler, Engine(sampler, policy="hash", seed=params.seed)

        def time_tuple():
            sampler, engine = build()
            started = time.perf_counter()
            engine.observe_batch(tuple_events)
            return time.perf_counter() - started, sampler

        def time_columnar():
            sampler, engine = build()
            batch = columnar_scenario.build(params)
            started = time.perf_counter()
            engine.observe_batch(batch)
            return time.perf_counter() - started, sampler

        gc.collect()
        gc.disable()
        try:
            tuple_s, tupled = min(
                (time_tuple() for _ in range(3)), key=lambda pair: pair[0]
            )
            columnar_s, columnar = min(
                (time_columnar() for _ in range(3)), key=lambda pair: pair[0]
            )
        finally:
            gc.enable()
        assert tupled.sample() == columnar.sample()
        assert tupled.stats() == columnar.stats()
        assert tupled.state_dict() == columnar.state_dict()
        speedup = tuple_s / columnar_s
        assert speedup >= 2.0, f"columnar only {speedup:.2f}x faster"


    @pytest.mark.speedup
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="measured multi-core speedup needs >= 4 cores",
    )
    def test_process_executor_is_1_5x_at_w4_on_sharded_uniform_parallel(self):
        """The scale-out acceptance floor: real multi-core ingest through
        the ProcessExecutor (W=4) must beat the serial backend by >= 1.5x
        wall-clock on the sharded-uniform-parallel workload — the point
        where the simulated critical path becomes a measured one.  The
        columnar batch is rebuilt per run (hash-column caches must not
        carry over) and the pool is warmed before timing so start-up cost
        stays out of the measured window."""
        import gc
        import time

        from repro import make_sampler
        from repro.perf import ScenarioParams, get_scenario
        from repro.runtime.engine import Engine

        params = ScenarioParams(n_events=500_000, num_sites=8, seed=7)
        scenario = get_scenario("sharded-uniform-parallel")

        def build(executor):
            sampler = make_sampler(
                "sharded:infinite",
                num_sites=8,
                sample_size=16,
                shards=4,
                seed=5,
                algorithm="mix64",
                executor=executor,
                workers=4,
            )
            return sampler, Engine(sampler, policy="hash", seed=params.seed)

        def timed(executor):
            sampler, engine = build(executor)
            if executor == "process":
                sampler.executor.warmup()
            batch = scenario.build(params)
            started = time.perf_counter()
            engine.observe_batch(batch)
            elapsed = time.perf_counter() - started
            return elapsed, sampler

        gc.collect()
        gc.disable()
        try:
            serial_s, serial = min(
                (timed("serial") for _ in range(3)), key=lambda pair: pair[0]
            )
            parallel_s, parallel = min(
                (timed("process") for _ in range(3)), key=lambda pair: pair[0]
            )
        finally:
            gc.enable()
        try:
            assert parallel.sample() == serial.sample()
            assert parallel.stats() == serial.stats()
            # The measured critical path is the workers' own clock and can
            # never exceed the wall the parent observed around them.
            assert parallel.critical_path_seconds <= parallel_s
            speedup = serial_s / parallel_s
            assert speedup >= 1.5, (
                f"ProcessExecutor only {speedup:.2f}x over serial "
                f"({serial_s * 1e3:.1f} ms vs {parallel_s * 1e3:.1f} ms at W=4)"
            )
        finally:
            parallel.close()


    @pytest.mark.speedup
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="measured multi-core speedup needs >= 4 cores",
    )
    def test_shm_executor_is_2x_at_w4_on_sharded_uniform_shm(self):
        """The zero-copy acceptance floor: persistent workers over
        shared-memory columns (W=4) must beat the serial backend by
        >= 2.0x wall-clock at n=500k — a higher bar than the process
        backend's 1.5x, because the per-batch pickle tax is gone.  The
        columnar batch is rebuilt per run (hash-column caches must not
        carry over) and the workers are spawned before timing so
        start-up cost stays out of the measured window."""
        import gc
        import time

        from repro import make_sampler
        from repro.perf import ScenarioParams, get_scenario
        from repro.runtime.engine import Engine

        params = ScenarioParams(n_events=500_000, num_sites=8, seed=7)
        scenario = get_scenario("sharded-uniform-shm")

        def build(executor):
            sampler = make_sampler(
                "sharded:infinite",
                num_sites=8,
                sample_size=16,
                shards=4,
                seed=5,
                algorithm="mix64",
                executor=executor,
                workers=4,
            )
            return sampler, Engine(sampler, policy="hash", seed=params.seed)

        def timed(executor):
            sampler, engine = build(executor)
            if executor == "shm":
                sampler.executor.warmup()
            batch = scenario.build(params)
            started = time.perf_counter()
            engine.observe_batch(batch)
            elapsed = time.perf_counter() - started
            return elapsed, sampler

        gc.collect()
        gc.disable()
        try:
            serial_s, serial = min(
                (timed("serial") for _ in range(3)), key=lambda pair: pair[0]
            )
            shm_s, shm = min(
                (timed("shm") for _ in range(3)), key=lambda pair: pair[0]
            )
        finally:
            gc.enable()
        try:
            assert shm.sample() == serial.sample()
            assert shm.stats() == serial.stats()
            # The zero-copy contract held for the whole timed drive.
            assert shm.executor.pickle_bytes == 0
            assert shm.critical_path_seconds <= shm_s
            speedup = serial_s / shm_s
            assert speedup >= 2.0, (
                f"SharedMemoryExecutor only {speedup:.2f}x over serial "
                f"({serial_s * 1e3:.1f} ms vs {shm_s * 1e3:.1f} ms at W=4)"
            )
        finally:
            shm.close()


class TestCommittedBaseline:
    def test_baseline_file_is_valid_and_covers_all_variants(self):
        import pathlib

        baseline = load_report(
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "baseline.json"
        )
        assert baseline.schema_version == SCHEMA_VERSION
        assert {r.variant for r in baseline.records} == set(sampler_variants())
        assert {r.scenario for r in baseline.records} == set(perf_scenarios())
