"""Tests for with-replacement samplers (parallel single-sample copies)."""

from __future__ import annotations

import numpy as np
import pytest
from collections import Counter

from repro import (
    SlidingWindowWithReplacement,
    WithReplacementSampler,
)
from repro.errors import ConfigurationError


class TestInfiniteWithReplacement:
    def test_sample_shape(self):
        sampler = WithReplacementSampler(num_sites=3, sample_size=5, seed=1)
        assert sampler.sample() == [None] * 5  # nothing observed yet
        rng = np.random.default_rng(0)
        for _ in range(500):
            sampler.observe(int(rng.integers(0, 3)), int(rng.integers(0, 80)))
        draws = sampler.sample()
        assert len(draws) == 5
        assert all(draw is not None for draw in draws)
        assert sampler.sample_size == 5

    def test_copies_are_independent(self):
        # Different hash functions: the 5 draws rarely all coincide.
        sampler = WithReplacementSampler(num_sites=2, sample_size=5, seed=2)
        for element in range(200):
            sampler.observe(element % 2, element)
        assert len(set(sampler.sample())) > 1

    def test_messages_aggregate(self):
        sampler = WithReplacementSampler(num_sites=2, sample_size=3, seed=3)
        for element in range(100):
            sampler.observe(0, element)
        assert sampler.total_messages == sum(
            copy.total_messages for copy in sampler.copies
        )
        assert sampler.total_messages > 0

    def test_each_draw_is_min_hash(self):
        # Copy i's draw is the min-hash element under hash function i.
        sampler = WithReplacementSampler(num_sites=2, sample_size=4, seed=4)
        elements = list(range(150))
        for element in elements:
            sampler.observe(element % 2, element)
        for copy, draw in zip(sampler.copies, sampler.sample()):
            hasher = copy.hasher
            want = min(elements, key=hasher.unit)
            assert draw == want

    def test_uniformity_over_trials(self):
        # Aggregate draw frequencies over seeds: roughly uniform over the
        # distinct population (chi-square sanity bound).
        universe = 20
        counts = Counter()
        trials = 150
        for seed in range(trials):
            sampler = WithReplacementSampler(num_sites=2, sample_size=2, seed=seed)
            for element in range(universe):
                sampler.observe(element % 2, element)
                sampler.observe((element + 1) % 2, element)  # duplicates
            for draw in sampler.sample():
                counts[draw] += 1
        total = sum(counts.values())
        expected = total / universe
        chi2 = sum(
            (counts.get(e, 0) - expected) ** 2 / expected for e in range(universe)
        )
        # 19 dof; p=0.001 critical ≈ 43.8.
        assert chi2 < 45, f"chi2={chi2}, counts={counts}"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WithReplacementSampler(num_sites=2, sample_size=0)


class TestSlidingWithReplacement:
    def test_window_semantics(self):
        sampler = SlidingWindowWithReplacement(
            num_sites=2, window=5, sample_size=3, seed=5
        )
        sampler.advance(1)
        sampler.observe_batch([(0, "a")])
        assert sampler.sample() == ["a", "a", "a"]
        for slot in range(2, 10):
            sampler.advance(slot)
        assert sampler.sample() == [None, None, None]

    def test_messages_aggregate(self):
        sampler = SlidingWindowWithReplacement(
            num_sites=2, window=10, sample_size=2, seed=6
        )
        rng = np.random.default_rng(1)
        for slot in range(1, 200):
            sampler.advance(slot)
            sampler.observe_batch(
                [(int(rng.integers(0, 2)), int(rng.integers(0, 30)))]
            )
        assert sampler.total_messages == sum(
            copy.total_messages for copy in sampler.copies
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowWithReplacement(num_sites=2, window=5, sample_size=0)
