"""Tests for delay-tolerant delivery (beyond the paper's model).

The key claims: the infinite-window protocol is *safe* under arbitrary
per-link-FIFO delay — delays only add redundant reports, never corrupt
the sample — and becomes exact at quiescence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CentralizedDistinctSampler, DistinctSamplerSystem
from repro.errors import ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, DelayedNetwork, MessageKind


def build(seed=1, num_sites=3, sample_size=5, rng=None):
    hasher = UnitHasher(seed)
    system = DistinctSamplerSystem(num_sites, sample_size, hasher=hasher)
    DelayedNetwork.rewire(system, rng)
    oracle = CentralizedDistinctSampler(sample_size, hasher)
    return system, oracle


class TestQuiescentExactness:
    def test_exact_after_drain(self):
        system, oracle = build()
        rng = np.random.default_rng(0)
        for _ in range(1500):
            element = int(rng.integers(0, 200))
            system.observe(int(rng.integers(0, 3)), element)
            oracle.observe(element)
        assert system.network.in_flight > 0  # genuinely delayed
        system.network.pump()
        assert system.network.in_flight == 0
        assert system.sample() == oracle.sample()

    def test_exact_after_drain_random_interleaving(self):
        for seed in range(5):
            system, oracle = build(
                seed=seed, rng=np.random.default_rng(seed + 100)
            )
            rng = np.random.default_rng(seed)
            for _ in range(800):
                element = int(rng.integers(0, 120))
                system.observe(int(rng.integers(0, 3)), element)
                oracle.observe(element)
                # Pump a random trickle mid-stream.
                system.network.pump(limit=int(rng.integers(0, 3)))
            system.network.pump()
            assert system.sample() == oracle.sample()

    def test_monotone_convergence(self):
        # Partial pumps never un-converge: the coordinator sample's
        # threshold is non-increasing across pump steps.
        system, oracle = build(seed=7)
        rng = np.random.default_rng(2)
        for _ in range(1000):
            element = int(rng.integers(0, 150))
            system.observe(int(rng.integers(0, 3)), element)
            oracle.observe(element)
        last = system.coordinator.threshold
        while system.network.in_flight:
            system.network.pump(limit=5)
            assert system.coordinator.threshold <= last
            last = system.coordinator.threshold
        assert system.sample() == oracle.sample()


class TestDelayCosts:
    def test_delay_only_adds_messages(self):
        # Same stream, synchronous vs fully-delayed: the delayed run sends
        # at least as many reports (stale thresholds over-report).
        hasher = UnitHasher(11)
        rng = np.random.default_rng(3)
        elements = [int(rng.integers(0, 300)) for _ in range(2000)]
        sites = [int(rng.integers(0, 3)) for _ in range(2000)]

        sync = DistinctSamplerSystem(3, 5, hasher=hasher)
        for element, site in zip(elements, sites):
            sync.observe(site, element)

        delayed = DistinctSamplerSystem(3, 5, hasher=hasher)
        DelayedNetwork.rewire(delayed)
        for element, site in zip(elements, sites):
            delayed.observe(site, element)
        delayed.network.pump()

        assert (
            delayed.network.stats.site_to_coordinator
            >= sync.network.stats.site_to_coordinator
        )
        assert delayed.sample() == sync.sample()


class TestFaultInjection:
    def test_drop_all_keeps_safety(self):
        # Lost messages lose *freshness*, not correctness: after the drop,
        # continuing the stream and draining restores exactness for the
        # union of *post-drop reports plus pre-drop accepted state*.
        system, oracle = build(seed=13)
        rng = np.random.default_rng(4)
        for _ in range(500):
            element = int(rng.integers(0, 80))
            system.observe(int(rng.integers(0, 3)), element)
            oracle.observe(element)
        dropped = system.network.drop_all()
        assert dropped >= 0
        # Re-observe everything (idempotent for a distinct sample).
        rng = np.random.default_rng(4)
        for _ in range(500):
            element = int(rng.integers(0, 80))
            system.observe(int(rng.integers(0, 3)), element)
        system.network.pump()
        assert system.sample() == oracle.sample()

    def test_drop_link(self):
        system, _ = build(seed=17)
        system.observe(0, "x")
        assert system.network.in_flight == 1
        assert system.network.drop_link(0, COORDINATOR) == 1
        assert system.network.in_flight == 0
        assert system.network.drop_link(0, COORDINATOR) == 0

    def test_unknown_destination_still_checked(self):
        net = DelayedNetwork()
        with pytest.raises(ProtocolError):
            net.send(0, 99, MessageKind.REPORT, None)

    def test_rejected_send_counts_nothing(self):
        # Regression: the queued transport moved every counter before
        # validating the destination, unlike the synchronous Network.
        net = DelayedNetwork()

        class Sink:
            def handle_message(self, message, network):
                pass

        net.register(0, Sink())
        net.send(COORDINATOR, 0, MessageKind.REPORT, None, size_bytes=4)
        with pytest.raises(ProtocolError, match="no node registered"):
            net.send(COORDINATOR, 99, MessageKind.REPORT, None, size_bytes=4)
        assert net.stats.total_messages == 1
        assert net.stats.total_bytes == 4
        assert net.in_flight == 1

    def test_record_kinds_parity_with_synchronous_network(self):
        # Regression: DelayedNetwork.__init__ silently ignored the
        # record_kinds knob the base Network exposes.
        class Sink:
            def handle_message(self, message, network):
                pass

        recording = DelayedNetwork(record_kinds=True)
        silent = DelayedNetwork(record_kinds=False)
        for net in (recording, silent):
            net.register(0, Sink())
            net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
            net.pump()
        assert recording.kind_count(MessageKind.THRESHOLD) == 1
        assert silent.kind_count(MessageKind.THRESHOLD) == 0
        assert silent.stats.total_messages == 1

    def test_fifo_per_link(self):
        received = []

        class Collector:
            def handle_message(self, message, network):
                received.append(message.payload)

        net = DelayedNetwork()
        net.register(0, Collector())
        for i in range(5):
            net.send(COORDINATOR, 0, MessageKind.THRESHOLD, i)
        net.pump()
        assert received == [0, 1, 2, 3, 4]

    def test_pump_limit(self):
        system, _ = build(seed=19)
        for element in range(20):
            system.observe(0, element)
        queued = system.network.in_flight
        assert queued > 1
        assert system.network.pump(limit=1) == 1
        assert system.network.in_flight >= queued - 1  # replies may enqueue
