"""Differential tests for the dominance sets.

Both implementations are checked against the brute-force s-dominance
filter after arbitrary interleavings of observe/expire operations, and
against each other (s = 1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.dominance import (
    SortedDominanceSet,
    TreapDominanceSet,
    brute_force_survivors,
)

IMPLS = [SortedDominanceSet, TreapDominanceSet]


def _raw(ds):
    return [(e.element, e.expiry, e.hash) for e in ds.entries()]


class TestBruteForceReference:
    def test_simple_domination(self):
        entries = [("a", 5, 0.9), ("b", 10, 0.1)]
        # a expires before b and hashes above it: dominated.
        assert brute_force_survivors(entries, 1) == [("b", 10, 0.1)]

    def test_equal_expiry_never_dominates(self):
        entries = [("a", 5, 0.9), ("b", 5, 0.1)]
        assert len(brute_force_survivors(entries, 1)) == 2

    def test_s2_needs_two_dominators(self):
        entries = [("a", 5, 0.9), ("b", 10, 0.1), ("c", 11, 0.2)]
        assert brute_force_survivors(entries, 2) == [
            ("b", 10, 0.1),
            ("c", 11, 0.2),
        ]
        assert ("a", 5, 0.9) in brute_force_survivors(entries, 3)


@pytest.mark.parametrize("impl", IMPLS)
class TestBasics:
    def test_empty(self, impl):
        ds = impl(1)
        assert len(ds) == 0
        assert ds.min_entry() is None
        assert ds.bottom(3) == []
        assert "x" not in ds

    def test_observe_and_min(self, impl):
        ds = impl(1)
        ds.observe("a", 10, 0.5)
        ds.observe("b", 12, 0.2)
        assert ds.min_entry().element == "b"
        assert "a" not in ds  # dominated by b (later expiry, smaller hash)
        assert "b" in ds

    def test_staircase_retained(self, impl):
        ds = impl(1)
        ds.observe("a", 10, 0.2)
        ds.observe("b", 12, 0.5)  # later expiry, larger hash: both stay
        assert len(ds) == 2
        assert ds.min_entry().element == "a"

    def test_expire(self, impl):
        ds = impl(1)
        ds.observe("a", 10, 0.2)
        ds.observe("b", 12, 0.5)
        ds.expire(10)  # expiry <= now goes away
        assert "a" not in ds
        assert "b" in ds
        ds.expire(12)
        assert len(ds) == 0

    def test_refresh_extends_life(self, impl):
        ds = impl(1)
        ds.observe("a", 10, 0.5)
        ds.observe("a", 20, 0.5)
        assert len(ds) == 1
        assert ds.entries()[0].expiry == 20

    def test_refresh_earlier_ignored(self, impl):
        ds = impl(1)
        ds.observe("a", 20, 0.5)
        ds.observe("a", 10, 0.5)
        assert ds.entries()[0].expiry == 20

    def test_newcomer_dominated_not_kept(self, impl):
        ds = impl(1)
        ds.observe("a", 20, 0.1)
        ds.observe("b", 10, 0.9)  # earlier expiry, larger hash: dominated
        assert "b" not in ds
        assert len(ds) == 1

    def test_bottom_order(self, impl):
        ds = impl(1)
        ds.observe("a", 10, 0.3)
        ds.observe("b", 20, 0.4)
        ds.observe("c", 30, 0.5)
        bottom = ds.bottom(2)
        assert [e.element for e in bottom] == ["a", "b"]


class TestSortedGeneralS:
    def test_s_validation(self):
        with pytest.raises(ValueError):
            SortedDominanceSet(0)

    def test_treap_rejects_s2(self):
        with pytest.raises(ValueError):
            TreapDominanceSet(2)

    def test_s2_keeps_two_smallest_always(self):
        ds = SortedDominanceSet(2)
        rng = np.random.default_rng(0)
        live = {}
        for t in range(1, 300):
            element = int(rng.integers(0, 60))
            h = float(rng.random())
            # Hash must be a function of the element.
            h = (element * 2654435761 % 2**32) / 2**32
            ds.observe(element, t + 25, h)
            live[element] = t + 25
            ds.expire(t)
            live = {e: exp for e, exp in live.items() if exp > t}
            want = sorted(
                ((e * 2654435761 % 2**32) / 2**32, e) for e in live
            )[:2]
            got = [(e.hash, e.element) for e in ds.bottom(2)]
            assert got == want


@pytest.mark.parametrize("impl", IMPLS)
class TestDifferentialVsBruteForce:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 15),  # element id
                st.integers(1, 40),  # arrival slot (expiry = arrival + 10)
            ),
            max_size=60,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, impl, arrivals):
        # Hashes are a deterministic function of the element id.
        def h(element):
            return ((element * 0x9E3779B1) % 2**32) / 2**32

        ds = impl(1)
        arrivals = sorted(arrivals, key=lambda a: a[1])
        live: dict[int, int] = {}
        now = 0
        for element, slot in arrivals:
            if slot > now:
                now = slot
                ds.expire(now - 1)  # expire strictly-before entries
            ds.observe(element, slot + 10, h(element))
            live[element] = max(live.get(element, 0), slot + 10)
            current = [
                (e, exp, h(e)) for e, exp in live.items() if exp > now - 1
            ]
            assert _raw(ds) == brute_force_survivors(current, 1)

    def test_cross_implementation_agreement(self, impl):
        rng = np.random.default_rng(7)
        a = SortedDominanceSet(1)
        b = TreapDominanceSet(1)
        for t in range(1, 500):
            for _ in range(int(rng.integers(0, 3))):
                element = int(rng.integers(0, 40))
                h = ((element * 0x9E3779B1) % 2**32) / 2**32
                a.observe(element, t + 15, h)
                b.observe(element, t + 15, h)
            a.expire(t)
            b.expire(t)
            assert _raw(a) == _raw(b)


@pytest.mark.parametrize("impl", IMPLS)
class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 50)),
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_check_invariants(self, impl, arrivals):
        def h(element):
            return ((element * 0x45D9F3B) % 2**32) / 2**32

        ds = impl(1)
        for element, slot in sorted(arrivals, key=lambda a: a[1]):
            ds.expire(slot - 1)
            ds.observe(element, slot + 8, h(element))
            ds.check_invariants()


class TestExpectedSize:
    """Lemma 10: expected size is H_M = O(log M)."""

    def test_size_logarithmic(self):
        rng = np.random.default_rng(5)
        sizes = []
        for trial in range(30):
            ds = SortedDominanceSet(1)
            hashes = rng.random(500)
            # 500 distinct elements, arrival order random, window large.
            for i, h in enumerate(hashes):
                ds.observe(i, 10_000 + i, float(h))
            sizes.append(len(ds))
        mean_size = sum(sizes) / len(sizes)
        # H_500 ≈ 6.79; allow generous slack.
        assert 3.0 <= mean_size <= 12.0, mean_size
