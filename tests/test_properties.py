"""Hypothesis differential properties for the whole sampler surface.

The hand-picked-seed differential tests (``test_sharded.py``,
``test_batch_equivalence.py``, ``test_sliding*.py``) each pin one
carefully chosen stream; this module turns the same exactness arguments
into *properties* over random streams and random ``(s, k, S, variant)``
configurations:

* **Sharded merge == centralized oracle.**  The exactness argument in
  :mod:`repro.runtime.sharded` — disjoint key spaces + one shared
  sampling hash ⇒ the query-time merge is the global bottom-s — must
  hold for every stream, not just the seeds someone thought of.
* **Columnar == tuple-batch == single-observe.**  The three ingest
  representations are one semantics; random streams (slot stamps
  included) must leave identical full ``state_dict``\\ s.
* **Every parallel executor == SerialExecutor, bit-identically.**  The
  process backend ships state through snapshot-v2 dicts and replays
  per-group plans in worker processes; the shm backend ships columns
  through zero-copy shared memory to persistent workers; the thread
  backend replays in-process.  Sample, message stats, and state must be
  indistinguishable from the serial run for every ``sharded:*``
  variant, and a worker crash mid-batch must leak no ``/dev/shm``
  segment while falling back to the last synchronized state.
* **Snapshot round-trip == continued run.**  A stateful
  :class:`~hypothesis.stateful.RuleBasedStateMachine` interleaves
  observe/advance/query/snapshot/restore and checks, after every step,
  that a restored twin remains indistinguishable from the original.

CI runs these derandomized (see ``tests/conftest.py``); locally they
explore fresh examples every run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import (
    CentralizedDistinctSampler,
    CentralizedWindowSampler,
    DistinctSamplerSystem,
    EventBatch,
    ProcessExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    UnitHasher,
    make_sampler,
    restore,
    snapshot,
)
from repro.netsim import ChaosNetwork

SHARDED_INFINITE = ("sharded:infinite", "sharded:broadcast", "sharded:caching")
SHARDED_WINDOWED = (
    "sharded:sliding",
    "sharded:sliding-feedback",
    "sharded:sliding-local-push",
)
SHARDED_ALL = SHARDED_INFINITE + SHARDED_WINDOWED

#: Variants the three-way ingest-equivalence property samples from
#: (`test_batch_equivalence.py` pins fixed configs for the full registry;
#: here the configs and streams are random).
INGEST_VARIANTS = (
    "infinite",
    "broadcast",
    "caching",
    "with-replacement",
    "sliding",
    "sliding-feedback",
    "sliding-local-push",
    "sharded:infinite",
    "sharded:sliding-feedback",
)
WINDOWED_VARIANTS = frozenset(
    ("sliding", "sliding-feedback", "sliding-local-push") + SHARDED_WINDOWED
)

_items = st.integers(0, 60)


@st.composite
def flat_streams(draw):
    """``(k, [(site, item), ...])`` — unstamped events over k sites."""
    k = draw(st.integers(1, 4))
    events = draw(
        st.lists(st.tuples(st.integers(0, k - 1), _items), max_size=120)
    )
    return k, events


@st.composite
def slotted_streams(draw):
    """``(k, window, [(site, item, slot), ...])`` with non-decreasing
    slot stamps starting at 1 (the synchronized-clock model)."""
    k = draw(st.integers(1, 4))
    window = draw(st.integers(1, 8))
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, k - 1), _items),
            max_size=100,
        )
    )
    slot, events = 1, []
    for delta, site, item in steps:
        slot += delta
        events.append((site, item, slot))
    return k, window, events


def assert_indistinguishable(actual, expected) -> None:
    """Full observable equality: sample (items, pairs, threshold),
    uniform cost counters, and the entire logical state."""
    assert actual.sample() == expected.sample()
    assert actual.sample().threshold == expected.sample().threshold
    assert actual.stats() == expected.stats()
    assert actual.state_dict() == expected.state_dict()


class TestShardedMergeOracle:
    """Random-stream form of the sharded exactness argument."""

    @given(
        variant=st.sampled_from(SHARDED_INFINITE),
        shards=st.integers(1, 4),
        s=st.integers(1, 8),
        seed=st.integers(0, 5),
        stream=flat_streams(),
    )
    @settings(max_examples=40)
    def test_merge_equals_unrestricted_oracle(
        self, variant, shards, s, seed, stream
    ):
        k, events = stream
        sampler = make_sampler(
            variant, num_sites=k, sample_size=s, shards=shards, seed=seed
        )
        oracle = CentralizedDistinctSampler(s, UnitHasher(seed, "murmur2"))
        for site, item in events:
            sampler.observe(site, item)
            oracle.observe(item)
        result = sampler.sample()
        assert list(result.items) == oracle.sample()
        assert list(result.pairs) == oracle.sample_pairs()
        assert result.threshold == oracle.threshold

    @given(
        variant=st.sampled_from(SHARDED_WINDOWED),
        shards=st.integers(1, 3),
        s=st.integers(1, 5),
        seed=st.integers(0, 5),
        stream=slotted_streams(),
    )
    @settings(max_examples=30)
    def test_windowed_merge_tracks_window_oracle(
        self, variant, shards, s, seed, stream
    ):
        k, window, events = stream
        sampler = make_sampler(
            variant,
            num_sites=k,
            window=window,
            sample_size=s,
            shards=shards,
            seed=seed,
        )
        oracle = CentralizedWindowSampler(window, s, UnitHasher(seed, "murmur2"))
        for site, item, slot in events:
            sampler.observe(site, item, slot=slot)
            oracle.observe(item, slot)
        assert list(sampler.sample().items) == oracle.sample()


class TestIngestEquivalence:
    """Columnar == tuple-batch == single-observe on random streams."""

    @given(data=st.data())
    @settings(max_examples=40)
    def test_columnar_equals_tuple_equals_single(self, data):
        variant = data.draw(st.sampled_from(INGEST_VARIANTS), label="variant")
        windowed = variant in WINDOWED_VARIANTS
        s = data.draw(st.integers(1, 5), label="sample_size")
        seed = data.draw(st.integers(0, 3), label="seed")
        if windowed:
            k, window, events = data.draw(slotted_streams(), label="stream")
        else:
            k, events = data.draw(flat_streams(), label="stream")
            window = 0

        def build():
            return make_sampler(
                variant,
                num_sites=k,
                sample_size=s,
                window=window,
                shards=2 if variant.startswith("sharded:") else 1,
                seed=seed,
            )

        single, tupled, columnar = build(), build(), build()
        for event in events:
            if len(event) == 2:
                single.observe(event[0], event[1])
            else:
                single.observe(event[0], event[1], slot=event[2])
        tupled.observe_batch(list(events))
        columnar.observe_batch(EventBatch.from_events(events))
        assert_indistinguishable(tupled, single)
        assert_indistinguishable(columnar, single)


@pytest.fixture(scope="module")
def shared_executors():
    """One executor of each parallel backend, shared by every example
    (pool/worker start-up would otherwise dominate the property run)."""
    executors = {
        "process": ProcessExecutor(workers=2),
        "shm": SharedMemoryExecutor(workers=2),
        "thread": ThreadExecutor(workers=2),
    }
    yield executors
    for executor in executors.values():
        executor.close()


PARALLEL_EXECUTORS = ("process", "shm", "thread")


class TestExecutorEquivalence:
    """The acceptance pin: every parallel backend (process, shm, thread)
    is byte-identical to SerialExecutor for every ``sharded:*`` variant."""

    @given(data=st.data())
    @settings(max_examples=24, deadline=None)
    def test_parallel_executor_is_bit_identical_to_serial(
        self, shared_executors, data
    ):
        backend = data.draw(
            st.sampled_from(PARALLEL_EXECUTORS), label="executor"
        )
        variant = data.draw(st.sampled_from(SHARDED_ALL), label="variant")
        windowed = variant in SHARDED_WINDOWED
        shards = data.draw(st.integers(1, 3), label="shards")
        s = data.draw(st.integers(1, 6), label="sample_size")
        seed = data.draw(st.integers(0, 3), label="seed")
        if windowed:
            k, window, events = data.draw(slotted_streams(), label="stream")
        else:
            k, events = data.draw(flat_streams(), label="stream")
            window = 0

        def build(executor, workers):
            return make_sampler(
                variant,
                num_sites=k,
                sample_size=s,
                window=window,
                shards=shards,
                seed=seed,
                executor=executor,
                workers=workers,
            )

        serial = build("serial", 0)
        parallel = build(backend, 2)
        # Reuse one long-lived executor per backend across examples.
        parallel.executor = shared_executors[backend]
        cut = len(events) // 2
        for chunk in (events[:cut], events[cut:]):
            serial.observe_batch(list(chunk))
            parallel.observe_batch(list(chunk))
        assert_indistinguishable(parallel, serial)
        assert parallel.message_stats() == serial.message_stats()
        assert parallel.current_slot == serial.current_slot

    @given(
        backend=st.sampled_from(PARALLEL_EXECUTORS),
        stream=flat_streams(),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_parallel_executor_columnar_matches_serial(
        self, shared_executors, backend, stream, seed
    ):
        k, events = stream
        batch = EventBatch.from_events(events)

        def build(executor):
            return make_sampler(
                "sharded:infinite",
                num_sites=k,
                sample_size=4,
                shards=3,
                seed=seed,
                algorithm="mix64",
                executor=executor,
                workers=2,
            )

        serial, parallel = build("serial"), build(backend)
        parallel.executor = shared_executors[backend]
        serial.observe_batch(batch)
        parallel.observe_batch(EventBatch.from_events(events))
        assert_indistinguishable(parallel, serial)


class TestQueryCacheCoherence:
    """The incremental query path's safety property: after ANY
    interleaving of observe / advance / query / snapshot-restore, the
    cached merged sample is bit-identical to a from-scratch recompute
    (cache dropped via ``invalidate_merge_cache``, merge re-run) — on
    every execution backend."""

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_cached_sample_equals_fresh_recompute(
        self, shared_executors, data
    ):
        backend = data.draw(
            st.sampled_from(("serial",) + PARALLEL_EXECUTORS),
            label="executor",
        )
        variant = data.draw(st.sampled_from(SHARDED_ALL), label="variant")
        windowed = variant in SHARDED_WINDOWED
        window = 6 if windowed else 0

        def build():
            sampler = make_sampler(
                variant,
                num_sites=3,
                sample_size=data.draw(st.integers(1, 6), label="s"),
                window=window,
                shards=data.draw(st.integers(1, 3), label="shards"),
                seed=data.draw(st.integers(0, 3), label="seed"),
                executor=backend,
                workers=2 if backend != "serial" else 0,
            )
            if backend != "serial":
                # Pools are lazy; swapping before any ingest means the
                # per-example executor never spawns its own workers.
                sampler.executor = shared_executors[backend]
            return sampler

        sampler = build()
        slot = 1 if windowed else 0
        if windowed:
            sampler.advance(1)

        def check_coherence():
            cached = sampler.sample()
            assert sampler.sample() is cached  # cache holds while quiescent
            sampler.invalidate_merge_cache()
            fresh = sampler.sample()
            assert fresh == cached
            assert fresh.pairs == cached.pairs
            assert fresh.threshold == cached.threshold

        ops = data.draw(
            st.lists(
                st.sampled_from(
                    ("observe", "batch", "advance", "query", "roundtrip")
                ),
                max_size=25,
            ),
            label="ops",
        )
        for op in ops:
            if op == "observe":
                sampler.observe(
                    data.draw(st.integers(0, 2)), data.draw(st.integers(0, 40))
                )
            elif op == "batch":
                sampler.observe_batch(
                    data.draw(
                        st.lists(
                            st.tuples(
                                st.integers(0, 2), st.integers(0, 40)
                            ),
                            max_size=10,
                        )
                    )
                )
            elif op == "advance":
                slot += data.draw(st.integers(1, 3))
                sampler.advance(slot)
            elif op == "query":
                check_coherence()
            else:  # roundtrip: snapshot -> JSON -> restore
                blob = json.loads(json.dumps(snapshot(sampler)))
                sampler = restore(blob)
                if backend != "serial":
                    sampler.executor = shared_executors[backend]
        check_coherence()


def _kill_executor_workers(executor) -> bool:
    """SIGKILL every live worker process of a parallel backend; returns
    whether anything was actually killed (pools are lazy)."""
    if isinstance(executor, SharedMemoryExecutor):
        workers = executor._workers
        if not workers:
            return False
        for worker in workers:
            worker.process.kill()
        for worker in workers:
            worker.process.join()
        return True
    pool = executor._pool
    if pool is None:
        return False
    processes = list(pool._processes.values())
    for process in processes:
        process.kill()
    for process in processes:
        process.join()
    return True


class TestCrashReplayRecovery:
    """Crash-replay: killing workers mid-stream must lose NO acked data.

    Both parallel process backends retain every in-flight batch plan
    until its worker acknowledges it; on a crash the executor rebuilds
    the lost groups from the parent's last-synchronized state by
    replaying the pending plans in-process.  The recovered sampler must
    be *bit-identical* (sample, stats, full state_dict, message
    counters) to a never-crashed serial twin — and the shm backend must
    still leak no /dev/shm segment."""

    @staticmethod
    def _segments():
        import os

        try:
            return {
                name
                for name in os.listdir("/dev/shm")
                if name.startswith("psm_")
            }
        except FileNotFoundError:  # non-Linux: nothing to leak-check
            return set()

    @pytest.mark.parametrize("backend", ["shm", "process"])
    def test_worker_crash_mid_stream_loses_nothing(self, backend):
        events = [(i % 3, (i * 17) % 211) for i in range(300)]

        def build(executor):
            return make_sampler(
                "sharded:infinite",
                num_sites=3,
                sample_size=8,
                shards=3,
                seed=5,
                algorithm="mix64",
                executor=executor,
                workers=2,
            )

        before = self._segments()
        serial, crashy = build("serial"), build(backend)
        try:
            serial.observe_batch(EventBatch.from_events(events[:150]))
            crashy.observe_batch(EventBatch.from_events(events[:150]))
            # Query → the parent's copies synchronize here ...
            assert crashy.sample() == serial.sample()
            # ... then one more acked batch with NO query after it, so a
            # lossy recovery would visibly rewind it.
            serial.observe_batch(EventBatch.from_events(events[150:200]))
            crashy.observe_batch(EventBatch.from_events(events[150:200]))
            assert _kill_executor_workers(crashy.executor)
            # The next batch hits dead workers; recovery must replay —
            # not raise, not rewind.
            serial.observe_batch(EventBatch.from_events(events[200:]))
            crashy.observe_batch(EventBatch.from_events(events[200:]))
            assert crashy.executor.recoveries >= 1
            assert_indistinguishable(crashy, serial)
            assert crashy.message_stats() == serial.message_stats()
            # The executor healed: another kill-free batch stays exact.
            more = [(i % 3, (i * 31) % 97) for i in range(60)]
            serial.observe_batch(EventBatch.from_events(more))
            crashy.observe_batch(EventBatch.from_events(more))
            assert_indistinguishable(crashy, serial)
        finally:
            crashy.close()
        assert self._segments() - before == set()

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_crash_replay_is_bit_identical_property(self, data):
        backend = data.draw(st.sampled_from(("process", "shm")), label="backend")
        variant = data.draw(st.sampled_from(SHARDED_ALL), label="variant")
        windowed = variant in SHARDED_WINDOWED
        shards = data.draw(st.integers(1, 3), label="shards")
        seed = data.draw(st.integers(0, 3), label="seed")
        if windowed:
            k, window, events = data.draw(slotted_streams(), label="stream")
        else:
            k, events = data.draw(flat_streams(), label="stream")
            window = 0
        cut = data.draw(
            st.integers(0, max(0, len(events) - 1)), label="crash_after"
        )

        def build(executor, workers):
            return make_sampler(
                variant,
                num_sites=k,
                sample_size=3,
                window=window,
                shards=shards,
                seed=seed,
                executor=executor,
                workers=workers,
            )

        serial, crashy = build("serial", 0), build(backend, 2)
        try:
            serial.observe_batch(list(events[:cut]))
            crashy.observe_batch(list(events[:cut]))
            _kill_executor_workers(crashy.executor)
            serial.observe_batch(list(events[cut:]))
            crashy.observe_batch(list(events[cut:]))
            assert_indistinguishable(crashy, serial)
            assert crashy.message_stats() == serial.message_stats()
        finally:
            crashy.close()


class SnapshotContinuationMachine(RuleBasedStateMachine):
    """Snapshot round-trip == continued run, under arbitrary interleaving.

    Holds a restored twin next to the primary sampler; every rule drives
    both, and ``reload_twin`` replaces the twin with a fresh
    JSON-round-tripped restore (also from the twin itself, so restores
    compose).  The invariant asserts full indistinguishability after
    every step.
    """

    VARIANTS = (
        "infinite",
        "caching",
        "sliding-feedback",
        "with-replacement",
        "sharded:infinite",
        "sharded:sliding",
    )

    @initialize(
        variant=st.sampled_from(VARIANTS),
        s=st.integers(1, 4),
        seed=st.integers(0, 3),
    )
    def setup(self, variant, s, seed):
        windowed = variant in WINDOWED_VARIANTS
        self.window = 6 if windowed else 0
        self.slot = 1 if windowed else 0
        self.sampler = make_sampler(
            variant,
            num_sites=3,
            sample_size=s,
            window=self.window,
            shards=2 if variant.startswith("sharded:") else 1,
            seed=seed,
        )
        if windowed:
            self.sampler.advance(1)
        self.twin = self._roundtrip(self.sampler)

    @staticmethod
    def _roundtrip(sampler):
        return restore(json.loads(json.dumps(snapshot(sampler))))

    @rule(site=st.integers(0, 2), item=st.integers(0, 40))
    def observe(self, site, item):
        self.sampler.observe(site, item)
        self.twin.observe(site, item)

    @rule(
        batch=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 40)), max_size=12
        )
    )
    def observe_batch(self, batch):
        self.sampler.observe_batch(list(batch))
        self.twin.observe_batch(list(batch))

    @rule(delta=st.integers(1, 3))
    def advance(self, delta):
        self.slot += delta
        self.sampler.advance(self.slot)
        self.twin.advance(self.slot)

    @rule()
    def reload_twin(self):
        self.twin = self._roundtrip(self.sampler)

    @rule()
    def reload_twin_from_twin(self):
        self.twin = self._roundtrip(self.twin)

    @invariant()
    def twin_is_indistinguishable(self):
        if not hasattr(self, "twin"):
            return  # invariants also run before initialize
        assert self.twin.sample() == self.sampler.sample()
        assert self.twin.sample().threshold == self.sampler.sample().threshold
        assert self.twin.stats() == self.sampler.stats()
        assert snapshot(self.twin) == snapshot(self.sampler)


SnapshotContinuationMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestSnapshotContinuation = SnapshotContinuationMachine.TestCase


class ChaosConvergenceMachine(RuleBasedStateMachine):
    """Chaos-mode netsim: with ``drop == 0``, duplication, reordering,
    partial delivery, and site crash/revive cycles must all be invisible
    at quiescence — after reviving every site and draining the network,
    the faulty system's sample is indistinguishable from a no-fault twin
    fed the same arrivals.

    The model of a crashed site: no arrivals land there while it is down
    (both runs see the same arrival sequence, routed to live sites), it
    sends nothing, and everything addressed to it is dropped.  A revived
    site resumes with a stale-high threshold — safe, so convergence is
    exact, not approximate.
    """

    SITES = 3

    @initialize(
        seed=st.integers(0, 5),
        duplicate=st.floats(0.0, 0.5),
        reorder=st.floats(0.0, 0.5),
    )
    def setup(self, seed, duplicate, reorder):
        self.chaotic = DistinctSamplerSystem(
            self.SITES, 4, hasher=UnitHasher(seed)
        )
        ChaosNetwork.rewire(
            self.chaotic,
            rng=np.random.default_rng(seed + 50),
            duplicate=duplicate,
            reorder=reorder,
            seed=seed + 99,
        )
        self.twin = DistinctSamplerSystem(
            self.SITES, 4, hasher=UnitHasher(seed)
        )

    @rule(site=st.integers(0, SITES - 1), item=st.integers(0, 80))
    def observe(self, site, item):
        # Arrivals land on live sites only (a crashed site ingests
        # nothing); both runs see the identical arrival sequence.
        live = [
            s
            for s in range(self.SITES)
            if s not in self.chaotic.network.dead_sites
        ]
        if not live:
            return
        site = live[site % len(live)]
        self.chaotic.observe(site, item)
        self.twin.observe(site, item)

    @rule(site=st.integers(0, SITES - 1))
    def kill_site(self, site):
        self.chaotic.network.kill_site(site)

    @rule(site=st.integers(0, SITES - 1))
    def revive_site(self, site):
        self.chaotic.network.revive_site(site)

    @rule(limit=st.integers(0, 5))
    def partial_pump(self, limit):
        self.chaotic.network.pump(limit=limit)

    @rule()
    def quiesce_and_compare(self):
        for site in list(self.chaotic.network.dead_sites):
            self.chaotic.network.revive_site(site)
        self.chaotic.network.pump()
        assert self.chaotic.network.in_flight == 0
        assert self.chaotic.sample() == self.twin.sample()

    def teardown(self):
        self.quiesce_and_compare()


ChaosConvergenceMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestChaosConvergence = ChaosConvergenceMachine.TestCase


class TestChaosSafetyUnderDrop:
    """With ``drop > 0`` exactness is forfeited (lost REPORTs are lost
    data) but safety is not: the coordinator's threshold never falls
    below the lossless oracle's, and every sampled element is a genuine
    observed element."""

    @given(
        seed=st.integers(0, 4),
        drop=st.floats(0.05, 0.6),
        stream=flat_streams(),
    )
    @settings(max_examples=20, deadline=None)
    def test_threshold_and_membership_safety(self, seed, drop, stream):
        k, events = stream
        system = DistinctSamplerSystem(k, 4, hasher=UnitHasher(seed))
        ChaosNetwork.rewire(system, drop=drop, seed=seed + 7)
        oracle = CentralizedDistinctSampler(4, UnitHasher(seed, "murmur2"))
        observed = set()
        for site, item in events:
            system.observe(site, item)
            oracle.observe(item)
            observed.add(item)
        system.network.pump()
        assert system.coordinator.threshold >= oracle.threshold
        assert set(system.sample()) <= observed
