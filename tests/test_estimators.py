"""Tests for the distinct-count (KMV) and predicate estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CentralizedDistinctSampler, DistinctSamplerSystem
from repro.errors import EstimationError
from repro.estimators import (
    estimate_count,
    estimate_fraction,
    estimate_from_sampler,
    estimate_mean,
    kmv_estimate,
)
from repro.hashing import UnitHasher


class TestKMV:
    def test_underfull_is_exact(self):
        est = kmv_estimate(sample_size=10, threshold=1.0, retained=7)
        assert est.exact
        assert est.estimate == 7.0
        assert est.low == est.high == 7.0
        assert est.std_error == 0.0

    def test_full_estimates_d(self):
        # d distinct, threshold = s-th smallest of d uniforms ~ s/d.
        d, s = 10_000, 100
        est = kmv_estimate(sample_size=s, threshold=s / d, retained=s)
        assert not est.exact
        assert abs(est.estimate - d) / d < 0.02
        assert est.low < d < est.high

    def test_relative_error_scales(self):
        wide = kmv_estimate(sample_size=16, threshold=0.01, retained=16)
        narrow = kmv_estimate(sample_size=400, threshold=0.01, retained=400)
        assert (
            narrow.std_error / narrow.estimate < wide.std_error / wide.estimate
        )

    def test_s1_degenerate(self):
        est = kmv_estimate(sample_size=1, threshold=0.01, retained=1)
        assert est.estimate == pytest.approx(100.0)

    def test_errors(self):
        with pytest.raises(EstimationError):
            kmv_estimate(sample_size=0, threshold=0.5, retained=0)
        with pytest.raises(EstimationError):
            kmv_estimate(sample_size=5, threshold=0.0, retained=5)
        with pytest.raises(EstimationError):
            kmv_estimate(sample_size=5, threshold=1.5, retained=5)

    def test_statistical_accuracy_on_real_sketch(self):
        # Build real sketches over known populations; the relative error
        # should concentrate near 1/sqrt(s-2).
        d, s = 5000, 64
        errors = []
        for seed in range(40):
            sampler = CentralizedDistinctSampler(s, UnitHasher(seed))
            for element in range(d):
                sampler.observe(element)
            est = estimate_from_sampler(sampler)
            errors.append(abs(est.estimate - d) / d)
        mean_err = sum(errors) / len(errors)
        assert mean_err < 0.25, mean_err
        # CI coverage: most intervals should contain the truth.
        covered = 0
        for seed in range(40):
            sampler = CentralizedDistinctSampler(s, UnitHasher(seed))
            for element in range(d):
                sampler.observe(element)
            est = estimate_from_sampler(sampler)
            covered += est.low <= d <= est.high
        assert covered >= 30  # ~95 % nominal; allow slack

    def test_works_with_distributed_system(self):
        d, s = 3000, 64
        system = DistinctSamplerSystem(4, s, seed=5)
        rng = np.random.default_rng(0)
        for element in range(d):
            system.observe(int(rng.integers(0, 4)), element)
        est = estimate_from_sampler(system)
        assert abs(est.estimate - d) / d < 0.5


class TestPredicate:
    def test_fraction_exact_logic(self):
        sample = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        est = estimate_fraction(sample, lambda x: x % 2 == 0)
        assert est.value == 0.5
        assert est.matched == 5
        assert 0.0 <= est.low <= est.value <= est.high <= 1.0

    def test_fraction_empty_sample(self):
        with pytest.raises(EstimationError):
            estimate_fraction([], lambda x: True)

    def test_fraction_statistical(self):
        # Population: 30% satisfy the predicate; sample via real sketch.
        d, s = 4000, 200
        hasher = UnitHasher(77)
        sampler = CentralizedDistinctSampler(s, hasher)
        for element in range(d):
            sampler.observe(element)
        est = estimate_fraction(sampler.sample(), lambda e: e < 0.3 * d)
        assert abs(est.value - 0.3) < 0.12

    def test_count_combines_kmv(self):
        d, s = 4000, 200
        hasher = UnitHasher(78)
        sampler = CentralizedDistinctSampler(s, hasher)
        for element in range(d):
            sampler.observe(element)
        dc = estimate_from_sampler(sampler)
        est = estimate_count(sampler.sample(), lambda e: e < d // 2, dc)
        assert abs(est.value - d / 2) / (d / 2) < 0.35
        assert est.low <= est.value <= est.high

    def test_mean(self):
        sample = [10, 20, 30, 40]
        est = estimate_mean(sample, float)
        assert est.value == 25.0
        assert est.matched == 4
        assert est.low < 25 < est.high

    def test_mean_with_predicate(self):
        sample = [1, 2, 3, 100]
        est = estimate_mean(sample, float, predicate=lambda x: x < 50)
        assert est.value == 2.0

    def test_mean_no_match(self):
        with pytest.raises(EstimationError):
            estimate_mean([1, 2], float, predicate=lambda x: x > 10)

    def test_mean_single_value_infinite_interval(self):
        est = estimate_mean([5], float)
        assert est.value == 5.0
        assert est.low == -float("inf")
        assert est.high == float("inf")
