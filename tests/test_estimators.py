"""Tests for the estimator stack: KMV, predicates, heavy hitters, the
exponential-histogram counter, and the windowed query surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CentralizedDistinctSampler, DistinctSamplerSystem
from repro.core.api import make_sampler
from repro.errors import ConfigurationError, EstimationError
from repro.estimators import (
    SlidingDistinctCounterEH,
    estimate_count,
    estimate_fraction,
    estimate_from_sampler,
    estimate_heavy_hitters,
    estimate_mean,
    kmv_estimate,
    windowed_distinct,
    windowed_fraction,
    windowed_heavy_hitters,
    windowed_quantile,
)
from repro.hashing import UnitHasher


class TestKMV:
    def test_underfull_is_exact(self):
        est = kmv_estimate(sample_size=10, threshold=1.0, retained=7)
        assert est.exact
        assert est.estimate == 7.0
        assert est.low == est.high == 7.0
        assert est.std_error == 0.0

    def test_full_estimates_d(self):
        # d distinct, threshold = s-th smallest of d uniforms ~ s/d.
        d, s = 10_000, 100
        est = kmv_estimate(sample_size=s, threshold=s / d, retained=s)
        assert not est.exact
        assert abs(est.estimate - d) / d < 0.02
        assert est.low < d < est.high

    def test_relative_error_scales(self):
        wide = kmv_estimate(sample_size=16, threshold=0.01, retained=16)
        narrow = kmv_estimate(sample_size=400, threshold=0.01, retained=400)
        assert (
            narrow.std_error / narrow.estimate < wide.std_error / wide.estimate
        )

    def test_s1_degenerate(self):
        est = kmv_estimate(sample_size=1, threshold=0.01, retained=1)
        assert est.estimate == pytest.approx(100.0)

    def test_errors(self):
        with pytest.raises(EstimationError):
            kmv_estimate(sample_size=0, threshold=0.5, retained=0)
        with pytest.raises(EstimationError):
            kmv_estimate(sample_size=5, threshold=0.0, retained=5)
        with pytest.raises(EstimationError):
            kmv_estimate(sample_size=5, threshold=1.5, retained=5)

    def test_statistical_accuracy_on_real_sketch(self):
        # Build real sketches over known populations; the relative error
        # should concentrate near 1/sqrt(s-2).
        d, s = 5000, 64
        errors = []
        for seed in range(40):
            sampler = CentralizedDistinctSampler(s, UnitHasher(seed))
            for element in range(d):
                sampler.observe(element)
            est = estimate_from_sampler(sampler)
            errors.append(abs(est.estimate - d) / d)
        mean_err = sum(errors) / len(errors)
        assert mean_err < 0.25, mean_err
        # CI coverage: most intervals should contain the truth.
        covered = 0
        for seed in range(40):
            sampler = CentralizedDistinctSampler(s, UnitHasher(seed))
            for element in range(d):
                sampler.observe(element)
            est = estimate_from_sampler(sampler)
            covered += est.low <= d <= est.high
        assert covered >= 30  # ~95 % nominal; allow slack

    def test_works_with_distributed_system(self):
        d, s = 3000, 64
        system = DistinctSamplerSystem(4, s, seed=5)
        rng = np.random.default_rng(0)
        for element in range(d):
            system.observe(int(rng.integers(0, 4)), element)
        est = estimate_from_sampler(system)
        assert abs(est.estimate - d) / d < 0.5


class TestPredicate:
    def test_fraction_exact_logic(self):
        sample = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        est = estimate_fraction(sample, lambda x: x % 2 == 0)
        assert est.value == 0.5
        assert est.matched == 5
        assert 0.0 <= est.low <= est.value <= est.high <= 1.0

    def test_fraction_empty_sample(self):
        with pytest.raises(EstimationError):
            estimate_fraction([], lambda x: True)

    def test_fraction_statistical(self):
        # Population: 30% satisfy the predicate; sample via real sketch.
        d, s = 4000, 200
        hasher = UnitHasher(77)
        sampler = CentralizedDistinctSampler(s, hasher)
        for element in range(d):
            sampler.observe(element)
        est = estimate_fraction(sampler.sample(), lambda e: e < 0.3 * d)
        assert abs(est.value - 0.3) < 0.12

    def test_count_combines_kmv(self):
        d, s = 4000, 200
        hasher = UnitHasher(78)
        sampler = CentralizedDistinctSampler(s, hasher)
        for element in range(d):
            sampler.observe(element)
        dc = estimate_from_sampler(sampler)
        est = estimate_count(sampler.sample(), lambda e: e < d // 2, dc)
        assert abs(est.value - d / 2) / (d / 2) < 0.35
        assert est.low <= est.value <= est.high

    def test_mean(self):
        sample = [10, 20, 30, 40]
        est = estimate_mean(sample, float)
        assert est.value == 25.0
        assert est.matched == 4
        assert est.low < 25 < est.high

    def test_mean_with_predicate(self):
        sample = [1, 2, 3, 100]
        est = estimate_mean(sample, float, predicate=lambda x: x < 50)
        assert est.value == 2.0

    def test_mean_no_match(self):
        with pytest.raises(EstimationError):
            estimate_mean([1, 2], float, predicate=lambda x: x > 10)

    def test_mean_single_value_infinite_interval(self):
        est = estimate_mean([5], float)
        assert est.value == 5.0
        assert est.low == -float("inf")
        assert est.high == float("inf")

    def test_zero_match_rule_of_three(self):
        # Documented degenerate estimate: no matches still yields the
        # standard 95 % upper bound 3/n, not a collapsed [0, 0] band.
        sample = list(range(100))
        est = estimate_fraction(sample, lambda x: False)
        assert est.value == 0.0
        assert est.low == 0.0
        assert est.high == pytest.approx(3.0 / 100)
        full = estimate_fraction(sample, lambda x: True)
        assert full.value == 1.0
        assert full.low == pytest.approx(1.0 - 3.0 / 100)
        assert full.high == 1.0


class TestHeavyHitters:
    def test_exact_shares_and_order(self):
        sample = [0, 2, 4, 6, 1, 3, 5, 9]  # 6 even, 2 odd-of-which...
        hitters = estimate_heavy_hitters(sample, lambda x: x % 2)
        assert [hitter.key for hitter in hitters] == [0, 1]
        assert hitters[0].share == 0.5 and hitters[1].share == 0.5
        skewed = estimate_heavy_hitters([0, 2, 4, 1], lambda x: x % 2)
        assert skewed[0].key == 0 and skewed[0].share == 0.75
        assert skewed[0].matched == 3

    def test_threshold_filters(self):
        sample = [0] * 9 + [1]
        hitters = estimate_heavy_hitters(sample, lambda x: x, threshold=0.5)
        assert [hitter.key for hitter in hitters] == [0]

    def test_bounds_cover_truth_statistically(self):
        # 30 % of a known population lands in group 0; sketch-sampled
        # shares should carry bounds that usually cover it.
        d, s = 4000, 200
        sampler = CentralizedDistinctSampler(s, UnitHasher(13))
        for element in range(d):
            sampler.observe(element)
        hitters = estimate_heavy_hitters(
            sampler.sample(), lambda e: 0 if e < 0.3 * d else 1
        )
        group0 = next(h for h in hitters if h.key == 0)
        assert abs(group0.share - 0.3) < 0.12
        assert group0.low <= 0.3 <= group0.high

    def test_counts_need_distinct_estimate(self):
        sample = [0, 1, 2, 3]
        bare = estimate_heavy_hitters(sample, lambda x: x % 2)
        assert bare[0].count is None
        dc = kmv_estimate(sample_size=4, threshold=0.001, retained=4)
        counted = estimate_heavy_hitters(sample, lambda x: x % 2, distinct_count=dc)
        assert counted[0].count == pytest.approx(0.5 * dc.estimate)
        assert counted[0].count_low <= counted[0].count <= counted[0].count_high

    def test_errors(self):
        with pytest.raises(EstimationError):
            estimate_heavy_hitters([], lambda x: x)
        with pytest.raises(EstimationError):
            estimate_heavy_hitters([1], lambda x: x, threshold=1.0)


class TestSlidingDistinctCounterEH:
    def test_infinite_window_accuracy(self):
        counter = SlidingDistinctCounterEH(seed=3)
        counter.add_batch(np.arange(5000, dtype=np.int64))
        estimate = counter.distinct()
        assert abs(estimate - 5000) / 5000 < counter.relative_band()

    def test_windowed_counts_only_live_elements(self):
        # 1000 old ids at slot 1, then 200 fresh ids at slot 100: with a
        # window of 8, only the fresh ids are live.
        counter = SlidingDistinctCounterEH(seed=3, window=8)
        counter.add_batch(np.arange(1000, dtype=np.int64), slot=1)
        counter.add_batch(np.arange(10_000, 10_200, dtype=np.int64), slot=100)
        estimate = counter.distinct()
        assert 50 < estimate < 800  # far below the 1200 lifetime ids
        assert counter.distinct(since=0) > 800  # lifetime view still works

    def test_duplicates_do_not_inflate(self):
        counter = SlidingDistinctCounterEH(seed=7)
        ones = np.zeros(10_000, dtype=np.int64)
        counter.add_batch(ones)
        assert counter.distinct() < 16

    def test_deterministic_given_seed(self):
        a = SlidingDistinctCounterEH(seed=5)
        b = SlidingDistinctCounterEH(seed=5)
        items = np.arange(2000, dtype=np.int64)
        a.add_batch(items)
        b.add_batch(items)
        assert a.distinct() == b.distinct()

    def test_empty_is_zero(self):
        counter = SlidingDistinctCounterEH(seed=1)
        assert counter.distinct() == 0.0

    def test_add_scalar_and_slot_tracking(self):
        counter = SlidingDistinctCounterEH(seed=1)
        counter.add(42, slot=7)
        assert counter.last_slot == 7
        assert counter.distinct() > 0

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            SlidingDistinctCounterEH(n_hashes=0)
        with pytest.raises(ConfigurationError):
            SlidingDistinctCounterEH(window=-1)
        counter = SlidingDistinctCounterEH(seed=1)
        with pytest.raises(ConfigurationError):
            counter.add_batch(np.asarray([1, 2]), slots=np.asarray([1]))
        with pytest.raises(EstimationError):
            counter.distinct(since=99)

    def test_state_size(self):
        counter = SlidingDistinctCounterEH(n_hashes=4, n_buckets=8)
        assert counter.state_size() == 32


def _sliding_sampler(window: int = 8, sample_size: int = 8):
    return make_sampler(
        "sliding",
        num_sites=2,
        sample_size=sample_size,
        window=window,
        seed=3,
        algorithm="mix64",
    )


class TestWindowedEdgeCases:
    """The four degenerate windows the accuracy contract documents."""

    def test_empty_window(self):
        # Everything expired: distinct is *exactly* 0; sample-consuming
        # queries have no population and must refuse loudly.
        sampler = _sliding_sampler(window=4)
        sampler.advance(1)
        sampler.observe_batch([(0, 1), (1, 2), (0, 3)])
        sampler.advance(100)
        est = windowed_distinct(sampler)
        assert est.exact and est.estimate == 0.0
        with pytest.raises(EstimationError):
            windowed_fraction(sampler, lambda e: True)
        with pytest.raises(EstimationError):
            windowed_quantile(sampler, 0.5)
        with pytest.raises(EstimationError):
            windowed_heavy_hitters(sampler, lambda e: e % 2)

    def test_window_smaller_than_s(self):
        # Fewer distinct elements than s: the sample IS the population,
        # so the distinct count is exact and fractions are census values.
        sampler = _sliding_sampler(window=8, sample_size=32)
        sampler.advance(1)
        sampler.observe_batch([(0, element) for element in range(5)])
        est = windowed_distinct(sampler)
        assert est.exact and est.estimate == 5.0
        frac = windowed_fraction(sampler, lambda e: e < 2)
        assert frac.value == pytest.approx(0.4)

    def test_all_duplicate_stream(self):
        sampler = _sliding_sampler(window=8)
        sampler.advance(1)
        sampler.observe_batch([(0, 7)] * 50 + [(1, 7)] * 50)
        est = windowed_distinct(sampler)
        assert est.exact and est.estimate == 1.0
        frac = windowed_fraction(sampler, lambda e: e == 7)
        assert frac.value == 1.0
        assert frac.low == pytest.approx(0.0)  # rule-of-three at n=1

    def test_zero_match_predicate(self):
        sampler = _sliding_sampler(window=8, sample_size=4)
        sampler.advance(1)
        sampler.observe_batch([(0, element) for element in range(100)])
        frac = windowed_fraction(sampler, lambda e: e > 10_000)
        assert frac.value == 0.0
        assert frac.high == pytest.approx(3.0 / frac.sample_size)

    def test_windowed_distinct_rejects_with_replacement(self):
        sampler = make_sampler(
            "with-replacement", num_sites=2, sample_size=4, seed=3
        )
        sampler.observe_batch([(0, element) for element in range(50)])
        with pytest.raises(EstimationError):
            windowed_distinct(sampler)

    def test_windowed_tracks_expiry(self):
        # A window that slides over fresh ids keeps the estimate near
        # the live population, not the lifetime population.
        sampler = _sliding_sampler(window=4, sample_size=16)
        for slot in range(1, 41):
            sampler.advance(slot)
            base = slot * 100
            sampler.observe_batch(
                [(slot % 2, base + offset) for offset in range(30)]
            )
        est = windowed_distinct(sampler)
        live = 4 * 30
        assert abs(est.estimate - live) / live < 1.0
