"""Unit tests for the columnar EventBatch and its pipeline plumbing:
construction gates, hash-column caching/slicing, slot-run grouping,
Engine columnar routing, and the columnar stream emitters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import EventBatch, make_sampler
from repro.errors import ConfigurationError
from repro.hashing.unit import UnitHasher
from repro.runtime.engine import Engine
from repro.streams.bursty import bursty_batch
from repro.streams.partition import HashDistributor
from repro.streams.slotted import SlottedArrivals
from repro.streams.synthetic import calibrated_stream, dealt_batch


class TestConstruction:
    def test_columns_and_len(self):
        batch = EventBatch([3, 1, 2], sites=[0, 1, 0], slots=[1, 1, 2])
        assert len(batch) == 3
        assert batch.items.dtype == np.int64
        assert batch.sites.tolist() == [0, 1, 0]
        assert batch.slots.tolist() == [1, 1, 2]

    def test_smaller_int_dtypes_widen(self):
        batch = EventBatch(np.array([1, 2], dtype=np.int32))
        assert batch.items.dtype == np.int64

    def test_float_column_is_rejected_never_truncated(self):
        with pytest.raises(ConfigurationError, match="integer"):
            EventBatch(np.array([1.5, 2.0]))

    def test_bool_column_is_rejected(self):
        with pytest.raises(ConfigurationError, match="integer"):
            EventBatch(np.array([True, False]))

    def test_out_of_int64_values_are_rejected_never_wrapped(self):
        # np.asarray([2**63]) infers uint64; a silent astype would wrap
        # it negative and diverge from the tuple path's scalar hashing.
        with pytest.raises(ConfigurationError, match="int64 range"):
            EventBatch([2**63])
        with pytest.raises(ConfigurationError, match="int64 range"):
            EventBatch(np.array([2**64 - 1], dtype=np.uint64))
        with pytest.raises(ConfigurationError, match="integer"):
            EventBatch([2**70])  # object dtype
        # In-range unsigned values widen losslessly.
        assert EventBatch(
            np.array([1, 2], dtype=np.uint32)
        ).items.tolist() == [1, 2]

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError, match="one-dimensional"):
            EventBatch(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ConfigurationError, match="rows"):
            EventBatch([1, 2, 3], sites=[0, 1])
        with pytest.raises(ConfigurationError, match="rows"):
            EventBatch([1, 2, 3], slots=[1])

    def test_equality_ignores_hash_cache(self):
        a = EventBatch([1, 2], sites=[0, 1])
        b = EventBatch([1, 2], sites=[0, 1])
        a.hash_column(UnitHasher(0, "mix64"))
        assert a == b
        assert a != EventBatch([1, 2])  # site column presence differs
        assert a != EventBatch([2, 1], sites=[0, 1])

    def test_round_trip_through_tuples(self):
        events = [(0, 5, 1), (1, 7, 1), (0, 5, 2)]
        assert EventBatch.from_events(events).to_events() == events
        flat = [(0, 5), (1, 7)]
        assert EventBatch.from_events(flat).to_events() == flat
        assert EventBatch.from_events(iter(flat)).to_events() == flat

    def test_from_events_empty(self):
        batch = EventBatch.from_events([])
        assert len(batch) == 0
        assert list(batch.slot_runs()) == [(None, batch)]


class TestHashColumns:
    @pytest.mark.parametrize("algorithm", ["mix64", "murmur2", "murmur3"])
    def test_matches_scalar_hasher(self, algorithm):
        hasher = UnitHasher(42, algorithm)
        items = [5, 0, 123456, 5]
        batch = EventBatch(items, sites=[0] * 4)
        assert batch.hash_column(hasher).tolist() == [
            hasher.unit(item) for item in items
        ]

    def test_column_is_computed_once_per_hasher(self):
        batch = EventBatch([1, 2, 3], sites=[0, 0, 0])
        a = batch.hash_column(UnitHasher(1, "mix64"))
        assert batch.hash_column(UnitHasher(1, "mix64")) is a
        b = batch.hash_column(UnitHasher(2, "mix64"))
        assert b is not a  # distinct layer seeds get distinct columns

    def test_with_sites_shares_the_cache(self):
        raw = EventBatch([1, 2, 3])
        column = raw.hash_column(UnitHasher(7, "mix64"))
        routed = raw.with_sites([0, 1, 0])
        assert routed.hash_column(UnitHasher(7, "mix64")) is column

    def test_select_slices_cached_columns(self):
        batch = EventBatch([10, 20, 30, 40], sites=[0, 1, 0, 1])
        hasher = UnitHasher(3, "mix64")
        column = batch.hash_column(hasher)
        sub = batch.select(np.array([1, 3]))
        assert sub.items.tolist() == [20, 40]
        assert sub.sites.tolist() == [1, 1]
        assert sub.hash_column(hasher).tolist() == column[[1, 3]].tolist()

    def test_first_occurrence_indices(self):
        batch = EventBatch(
            [5, 5, 7, 5, 5], sites=[0, 0, 0, 1, 0]
        )
        # (0,5) first at 0, (0,7) at 2, (1,5) at 3; repeats at 1 and 4 drop.
        assert batch.first_occurrence_indices().tolist() == [0, 2, 3]

    def test_pickle_ships_columns_but_drops_hash_caches(self):
        # The ProcessExecutor ships sub-batches to workers via pickle;
        # the defining columns must round-trip exactly while derived
        # hash caches are recomputed on the receiving side.
        import pickle

        batch = EventBatch([1, 2, 3], sites=[0, 1, 0], slots=[1, 1, 2])
        hasher = UnitHasher(7, "mix64")
        column = batch.hash_column(hasher)
        revived = pickle.loads(pickle.dumps(batch))
        assert revived == batch
        assert not revived._hash_columns
        assert revived.hash_column(hasher).tolist() == column.tolist()


class TestSlotRuns:
    def test_groups_consecutive_equal_slots(self):
        batch = EventBatch(
            [1, 2, 3, 4, 5],
            sites=[0, 1, 0, 1, 0],
            slots=[1, 1, 2, 2, 4],
        )
        runs = list(batch.slot_runs())
        assert [slot for slot, _ in runs] == [1, 2, 4]
        assert [run.items.tolist() for _, run in runs] == [[1, 2], [3, 4], [5]]
        assert all(run.slots is None for _, run in runs)

    def test_runs_slice_cached_hash_columns(self):
        batch = EventBatch([1, 2, 3], sites=[0, 0, 0], slots=[1, 1, 2])
        hasher = UnitHasher(0, "mix64")
        column = batch.hash_column(hasher)
        (_, first), (_, second) = batch.slot_runs()
        assert first.hash_column(hasher).tolist() == column[:2].tolist()
        assert second.hash_column(hasher).tolist() == column[2:].tolist()

    def test_slotless_batch_is_one_run(self):
        batch = EventBatch([1, 2], sites=[0, 1])
        assert list(batch.slot_runs()) == [(None, batch)]


class TestEngineColumnar:
    @pytest.mark.parametrize("policy", ["hash", "round-robin"])
    @pytest.mark.parametrize("algorithm", ["mix64", "murmur2"])
    def test_routing_matches_tuple_path(self, policy, algorithm):
        items = np.random.default_rng(9).integers(0, 60, 400)

        def build():
            sampler = make_sampler(
                "infinite", num_sites=5, sample_size=8, algorithm=algorithm
            )
            return sampler, Engine(sampler, policy=policy, seed=3)

        tupled, tuple_engine = build()
        columnar, columnar_engine = build()
        tuple_engine.observe_batch(items.tolist())
        assert columnar_engine.observe_batch(EventBatch(items)) == items.size
        assert tupled.sample() == columnar.sample()
        assert tupled.stats() == columnar.stats()
        assert tupled.state_dict() == columnar.state_dict()

    def test_round_robin_position_carries_across_batches(self):
        sampler = make_sampler("infinite", num_sites=3, sample_size=4)
        engine = Engine(sampler, policy="round-robin")
        engine.observe_batch(EventBatch([10, 11]))
        assert engine.site_for(12) == 2  # position advanced by 2

    def test_explicit_policy_requires_a_site_column(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=2)
        engine = Engine(sampler, policy="explicit")
        with pytest.raises(ConfigurationError, match="no site column"):
            engine.observe_batch(EventBatch([1, 2]))

    def test_slot_kwarg_advances_before_delivery(self):
        sampler = make_sampler("sliding", num_sites=2, window=8)
        engine = Engine(sampler, policy="hash", seed=1)
        engine.observe_batch(EventBatch([1, 2]), slot=3)
        assert sampler.current_slot == 3

    def test_distributor_batch_assignments_match_scalar(self):
        distributor = HashDistributor(4, seed=11, algorithm="mix64")
        items = list(range(100))
        batch = EventBatch(items)
        assert distributor.assignments_for_batch(batch).tolist() == [
            distributor.assign_one(item) for item in items
        ]
        assert (
            distributor.assignments_for_batch(batch).tolist()
            == distributor.assignments_for(items).tolist()
        )

    def test_distributor_accepts_tuple_columns(self):
        distributor = HashDistributor(3, seed=2)
        items = tuple(range(20))
        assert distributor.assignments_for(items).tolist() == [
            distributor.assign_one(item) for item in items
        ]


class TestStreamEmitters:
    def test_dealt_batch_matches_tuple_dealing(self):
        elements = calibrated_stream(200, 50, 1.1, np.random.default_rng(4))
        batch = dealt_batch(elements, 6, np.random.default_rng(5))
        sites = np.random.default_rng(5).integers(0, 6, elements.size)
        assert batch.items.tolist() == elements.tolist()
        assert batch.sites.tolist() == sites.tolist()
        with pytest.raises(Exception):
            dealt_batch(elements, 0, np.random.default_rng(5))

    def test_bursty_batch_matches_stream_then_deal(self):
        from repro.streams.bursty import bursty_stream

        batch = bursty_batch(300, 40, 1.1, 4.0, 5, np.random.default_rng(8))
        rng = np.random.default_rng(8)
        stream = bursty_stream(300, 40, 1.1, 4.0, rng)
        assert batch.items.tolist() == stream.tolist()
        assert batch.sites.tolist() == rng.integers(0, 5, 300).tolist()

    def test_bench_scenario_batch_covers_tuple_and_raw_scenarios(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "bench_conftest",
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "conftest.py",
        )
        conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(conftest)
        dealt = conftest.scenario_batch("uniform", 100, 3)
        assert dealt == EventBatch.from_events(
            conftest.scenario_events("uniform", 100, 3)
        )
        raw = conftest.scenario_batch("sharded-uniform", 100, 3)
        assert raw.sites is None
        assert raw.items.tolist() == conftest.scenario_events(
            "sharded-uniform", 100, 3
        )

    def test_empty_slotted_schedule_yields_empty_batch(self):
        schedule = SlottedArrivals([], 3, 5, np.random.default_rng(0))
        batch = schedule.event_batch()
        assert len(batch) == 0
        sampler = make_sampler("sliding", num_sites=3, window=4)
        assert sampler.observe_batch(batch) == 0

    def test_slotted_event_batch_equals_slot_loop(self):
        rng = np.random.default_rng(3)
        schedule = SlottedArrivals(list(range(23)), 4, 5, rng)
        batch = schedule.event_batch()
        sampler_loop = make_sampler("sliding", num_sites=4, window=6)
        sampler_batch = make_sampler("sliding", num_sites=4, window=6)
        for slot, arrivals in schedule.slots():
            sampler_loop.advance(slot)
            sampler_loop.observe_batch(arrivals)
        sampler_batch.observe_batch(batch)
        assert sampler_loop.sample() == sampler_batch.sample()
        assert sampler_loop.stats() == sampler_batch.stats()
        assert sampler_loop.state_dict() == sampler_batch.state_dict()
