"""Tests for the network simulation substrate."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.netsim import (
    COORDINATOR,
    Message,
    MessageKind,
    MessageTrace,
    Network,
    SlotClock,
)


class Recorder:
    """Minimal node that records received messages."""

    def __init__(self):
        self.received: list[Message] = []

    def handle_message(self, message, network):
        self.received.append(message)


class Echoer:
    """Node that replies to every message (tests reentrancy)."""

    def __init__(self, address, reply_to):
        self.address = address
        self.reply_to = reply_to

    def handle_message(self, message, network):
        if message.src != self.reply_to:
            return
        network.send(self.address, self.reply_to, MessageKind.THRESHOLD, 0.5)


class PingPonger:
    """Malicious node pair that loops forever (tests the depth guard)."""

    def __init__(self, address, peer):
        self.address = address
        self.peer = peer

    def handle_message(self, message, network):
        network.send(self.address, self.peer, MessageKind.REPORT, None)


class TestRouting:
    def test_register_and_send(self):
        net = Network()
        node = Recorder()
        net.register(0, node)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.7)
        assert len(node.received) == 1
        message = node.received[0]
        assert message.payload == 0.7
        assert message.kind is MessageKind.THRESHOLD

    def test_duplicate_address_rejected(self):
        net = Network()
        net.register(0, Recorder())
        with pytest.raises(ProtocolError):
            net.register(0, Recorder())

    def test_unknown_destination(self):
        net = Network()
        with pytest.raises(ProtocolError):
            net.send(0, 99, MessageKind.REPORT, None)

    def test_node_at(self):
        net = Network()
        node = Recorder()
        net.register(3, node)
        assert net.node_at(3) is node
        with pytest.raises(ProtocolError):
            net.node_at(4)

    def test_addresses(self):
        net = Network()
        net.register(1, Recorder())
        net.register(COORDINATOR, Recorder())
        assert set(net.addresses) == {1, COORDINATOR}

    def test_reentrant_reply(self):
        net = Network()
        site = Recorder()
        coordinator = Echoer(COORDINATOR, reply_to=0)
        net.register(0, site)
        net.register(COORDINATOR, coordinator)
        net.send(0, COORDINATOR, MessageKind.REPORT, ("e", 0.1, 0))
        assert len(site.received) == 1  # got the echo
        assert net.stats.total_messages == 2

    def test_depth_guard(self):
        net = Network()
        net.register(0, PingPonger(0, 1))
        net.register(1, PingPonger(1, 0))
        with pytest.raises(ProtocolError, match="nested"):
            net.send(0, 1, MessageKind.REPORT, None)


class TestAccounting:
    def test_direction_counters(self):
        net = Network()
        net.register(0, Recorder())
        net.register(COORDINATOR, Recorder())
        net.send(0, COORDINATOR, MessageKind.REPORT, None)
        net.send(0, COORDINATOR, MessageKind.REPORT, None)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        stats = net.stats
        assert stats.total_messages == 3
        assert stats.site_to_coordinator == 2
        assert stats.coordinator_to_site == 1

    def test_byte_accounting(self):
        net = Network()
        net.register(0, Recorder())
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5, size_bytes=24)
        assert net.stats.total_bytes == 24

    def test_rejected_send_counts_nothing(self):
        # Regression: counters used to move BEFORE the destination was
        # validated, so a rejected send inflated every statistic.
        net = Network()
        net.register(0, Recorder())
        net.send(0, 0, MessageKind.REPORT, None, size_bytes=8)
        with pytest.raises(ProtocolError, match="no node registered"):
            net.send(0, 99, MessageKind.REPORT, None, size_bytes=8)
        stats = net.stats
        assert stats.total_messages == 1
        assert stats.total_bytes == 8
        assert net.kind_count(MessageKind.REPORT) == 1

    def test_kind_counters(self):
        net = Network()
        net.register(0, Recorder())
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        net.send(COORDINATOR, 0, MessageKind.BROADCAST, 0.5)
        net.send(COORDINATOR, 0, MessageKind.BROADCAST, 0.4)
        assert net.kind_count(MessageKind.BROADCAST) == 2
        assert net.kind_count(MessageKind.THRESHOLD) == 1
        assert net.kind_count(MessageKind.REPORT) == 0

    def test_broadcast_counts_per_destination(self):
        net = Network()
        for i in range(5):
            net.register(i, Recorder())
        sent = net.broadcast(COORDINATOR, range(5), MessageKind.BROADCAST, 0.1)
        assert sent == 5
        assert net.stats.total_messages == 5
        assert net.stats.coordinator_to_site == 5

    def test_reset_stats(self):
        net = Network()
        net.register(0, Recorder())
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        net.reset_stats()
        assert net.stats.total_messages == 0
        # Topology preserved.
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        assert net.stats.total_messages == 1

    def test_snapshot_is_independent(self):
        net = Network()
        net.register(0, Recorder())
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        snap = net.snapshot()
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        assert snap.total_messages == 1
        assert net.stats.total_messages == 2


class TestClock:
    def test_advance(self):
        clock = SlotClock()
        assert clock.now == 0
        clock.advance_to(5)
        assert clock.now == 5
        clock.advance_to(5)  # idempotent
        assert clock.now == 5

    def test_tick(self):
        clock = SlotClock(3)
        assert clock.tick() == 4
        assert clock.now == 4

    def test_no_rewind(self):
        clock = SlotClock(10)
        with pytest.raises(ProtocolError):
            clock.advance_to(9)


class TestTrace:
    def test_sampling(self):
        net = Network()
        net.register(0, Recorder())
        trace = MessageTrace(net)
        trace.sample(0)
        net.send(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        trace.sample(100)
        assert trace.series() == [(0, 0), (100, 1)]
        assert len(trace) == 2
        assert trace.bytes == [0, 16]
