"""Tests for the experiment harness: config, runner, report, registry,
and the shape properties of every figure at tiny scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    FigureResult,
    Series,
    checkpoints_for,
    get_experiment,
    prepare_stream,
    run_experiment,
    run_infinite_once,
    run_sliding_once,
)
from repro.streams.partition import make_distributor

TINY = ExperimentConfig(scale="tiny", runs=1, datasets=("oc48",))
TINY2 = ExperimentConfig(scale="tiny", runs=2, datasets=("oc48",))


class TestConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.scale == "small"
        assert config.effective_runs == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale="gigantic")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(runs=-1)

    def test_with_(self):
        config = ExperimentConfig().with_(scale="tiny")
        assert config.scale == "tiny"

    def test_run_seeds_independent(self):
        config = ExperimentConfig(runs=3)
        seeds = config.run_seeds()
        assert len(seeds) == 3
        states = [s.generate_state(1)[0] for s in seeds]
        assert len(set(states)) == 3

    def test_effective_runs_override(self):
        assert ExperimentConfig(runs=7).effective_runs == 7


class TestRunnerHelpers:
    def test_checkpoints(self):
        cps = checkpoints_for(100, count=10)
        assert cps[-1] == 100
        assert all(a < b for a, b in zip(cps, cps[1:]))
        assert checkpoints_for(0) == []
        assert checkpoints_for(5, count=10) == [1, 2, 3, 4, 5]

    def test_prepare_stream(self):
        elements, hashes, n_distinct = prepare_stream(
            "oc48", "tiny", np.random.default_rng(0), hash_seed=5
        )
        assert len(elements) == len(hashes) == 4000
        assert n_distinct == 410
        assert all(0.0 <= h < 1.0 for h in hashes[:100])

    def test_run_infinite_once_fields(self):
        rng = np.random.default_rng(1)
        elements, hashes, _ = prepare_stream("oc48", "tiny", rng, 7)
        out = run_infinite_once(
            elements,
            hashes,
            3,
            5,
            make_distributor("random", 3),
            rng,
            7,
            checkpoints=[1000, 4000],
        )
        assert out.messages > 0
        assert [x for x, _ in out.trace] == [1000, 4000]
        assert out.trace[-1][1] == out.messages
        assert out.distinct_total == 410
        assert len(out.distinct_per_site) == 3
        assert sum(out.distinct_per_site) >= out.distinct_total
        assert len(out.sample) == 5

    def test_run_infinite_once_flooding_per_site(self):
        rng = np.random.default_rng(2)
        elements, hashes, _ = prepare_stream("oc48", "tiny", rng, 8)
        out = run_infinite_once(
            elements, hashes, 2, 5, make_distributor("flooding", 2), rng, 8
        )
        assert out.distinct_per_site == [410, 410]

    def test_run_infinite_unknown_system(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ConfigurationError):
            run_infinite_once(
                [1], [0.5], 1, 1, make_distributor("random", 1), rng, 0,
                system="quantum",
            )

    def test_run_sliding_once_fields(self):
        rng = np.random.default_rng(4)
        elements = list(range(2000))
        out = run_sliding_once(
            elements, 4, 50, rng, hash_seed=9, record_series=True
        )
        assert out.messages > 0
        assert out.mem_mean > 0
        assert out.mem_max >= out.mem_mean
        assert out.num_slots == 400
        assert len(out.mem_series) == 400


class TestReport:
    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series("x", [1, 2], [1.0])
        with pytest.raises(ValueError):
            Series("x", [1], [1.0], errs=[0.1, 0.2])

    def test_render_contains_data(self):
        result = FigureResult(
            figure_id="figX",
            title="Test",
            x_label="n",
            y_label="messages",
            series=[Series("a", [1, 2], [10.0, 20.0]), Series("b", [1, 2], [3.0, 4.0])],
            notes="note",
        )
        text = result.render()
        assert "figX" in text and "note" in text
        assert "10.0" in text and "4.0" in text.replace("4.000", "4.0")

    def test_render_empty(self):
        result = FigureResult("f", "t", "x", "y")
        assert "(no data)" in result.render()

    def test_csv(self):
        result = FigureResult(
            "f", "t", "x", "y", series=[Series("a", [1], [2.5])]
        )
        csv = result.to_csv()
        assert csv.splitlines() == ["x,a", "1,2.5"]

    def test_series_by_name(self):
        result = FigureResult(
            "f", "t", "x", "y", series=[Series("a", [1], [2.5])]
        )
        assert result.series_by_name("a").ys == [2.5]
        with pytest.raises(KeyError):
            result.series_by_name("zz")


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        for artifact in (
            ["table5_1"] + [f"fig5_{i}" for i in range(1, 11)]
        ):
            assert artifact in EXPERIMENTS, f"missing {artifact}"

    def test_ablations_registered(self):
        for ablation in (
            "ablation_theory",
            "ablation_sync",
            "ablation_structure",
            "ablation_hash",
        ):
            assert ablation in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig9_99")


class TestExperimentShapes:
    """Each experiment at tiny scale reproduces the paper's qualitative
    shape.  These are the repository's headline assertions."""

    def test_table5_1(self):
        (result,) = run_experiment("table5_1", TINY)
        assert result.series_by_name("elements").ys == [4000]
        assert result.series_by_name("distinct").ys == [410]
        ratio = result.series_by_name("ratio").ys[0]
        paper = result.series_by_name("paper_ratio").ys[0]
        assert abs(ratio - paper) < 0.003

    def test_fig5_1_flooding_dominates(self):
        (result,) = run_experiment("fig5_1", TINY)
        flood = result.series_by_name("flooding").ys
        rand = result.series_by_name("random").ys
        rr = result.series_by_name("round_robin").ys
        # Flooding well above random at the end; random ≈ round robin.
        assert flood[-1] > 2 * rand[-1]
        assert abs(rand[-1] - rr[-1]) / rand[-1] < 0.25
        # Cumulative counts are non-decreasing and concave-ish.
        assert all(a <= b for a, b in zip(flood, flood[1:]))

    def test_fig5_2_linear_in_s(self):
        (result,) = run_experiment("fig5_2", TINY)
        for name in ("flooding", "random"):
            ys = result.series_by_name(name).ys
            assert all(a < b for a, b in zip(ys, ys[1:])), name
        # Flooding slope ≈ k x random slope (generous band).
        flood = result.series_by_name("flooding").ys
        rand = result.series_by_name("random").ys
        assert flood[-1] / rand[-1] > 2

    def test_fig5_3_flooding_linear_random_flat(self):
        (result,) = run_experiment("fig5_3", TINY)
        flood = result.series_by_name("flooding").ys
        rand = result.series_by_name("random").ys
        ks = result.series_by_name("flooding").xs
        # Flooding roughly proportional to k.
        assert flood[-1] / flood[0] > 0.5 * ks[-1] / ks[0]
        # Random nearly flat: less than 2.5x over a 25x site range.
        assert rand[-1] / rand[0] < 2.5

    def test_fig5_4_broadcast_dominates(self):
        (result,) = run_experiment("fig5_4", TINY)
        ours = result.series_by_name("ours").ys
        broadcast = result.series_by_name("broadcast").ys
        assert broadcast[-1] > 2 * ours[-1]

    def test_fig5_5_broadcast_dominates_across_s(self):
        (result,) = run_experiment("fig5_5", TINY)
        ours = result.series_by_name("ours").ys
        broadcast = result.series_by_name("broadcast").ys
        assert all(b > o for o, b in zip(ours, broadcast))

    def test_fig5_6_decreasing_in_dominate_rate(self):
        (result,) = run_experiment("fig5_6", TINY2)
        ours = result.series_by_name("ours").ys
        broadcast = result.series_by_name("broadcast").ys
        # Our algorithm benefits from locality: fewer messages as one site
        # dominates (its threshold view stays fresh).
        assert ours[-1] < ours[0]
        # Broadcast's cost is provably distribution-independent: with
        # synced thresholds, reports depend only on the union stream order,
        # so its curve is flat in the dominate rate.
        assert max(broadcast) - min(broadcast) < 0.05 * max(broadcast)
        # And Broadcast dominates our algorithm throughout.
        assert all(b > o for o, b in zip(ours, broadcast))

    def test_fig5_7_memory_grows_sublinearly(self):
        (result,) = run_experiment("fig5_7", TINY)
        mean = result.series_by_name("mean").ys
        ws = result.series_by_name("mean").xs
        assert mean[-1] > mean[0] * 0.9  # grows (or saturates)
        # Far sublinear: 32x window -> < 4x memory.
        assert mean[-1] / mean[0] < 4
        assert all(m < w for m, w in zip(mean, ws))

    def test_fig5_8_messages_decrease_with_window(self):
        (result,) = run_experiment("fig5_8", TINY)
        ys = result.series_by_name("messages").ys
        assert ys[-1] < ys[0]

    def test_fig5_9_memory_decreases_with_sites(self):
        (result,) = run_experiment("fig5_9", TINY)
        ys = result.series_by_name("mean").ys
        assert ys[-1] < ys[0]

    def test_fig5_10_messages_increase_with_sites(self):
        (result,) = run_experiment("fig5_10", TINY)
        ys = result.series_by_name("messages").ys
        assert ys[-1] > ys[0]

    def test_ablation_theory_bounds(self):
        (result,) = run_experiment(
            "ablation_theory", ExperimentConfig(scale="tiny", runs=3)
        )
        ratio = result.series_by_name("measured/lower").ys
        assert all(3.0 < r < 5.5 for r in ratio), ratio

    def test_ablation_structure_equivalence(self):
        (result,) = run_experiment("ablation_structure", TINY)
        assert (
            result.series_by_name("treap").ys
            == result.series_by_name("sorted").ys
        )

    def test_ablation_sync_ordering(self):
        (result,) = run_experiment("ablation_sync", TINY)
        exact = result.series_by_name("lazy_exact").ys
        paper = result.series_by_name("lazy_paper").ys
        # Exact and paper modes are within ~25% of each other.
        for e, p in zip(exact, paper):
            assert abs(e - p) / max(e, p) < 0.25

    def test_ablation_hash_similar_counts(self):
        (result,) = run_experiment("ablation_hash", TINY2)
        values = [s.ys[0] for s in result.series]
        assert max(values) / min(values) < 1.3
