"""Tests for the shared distributed-runtime layer: Topology wiring,
canonical message stats, and Engine routing policies."""

from __future__ import annotations

import pytest

from repro import SamplerConfig, make_sampler, sampler_variants
from repro.core.api import get_variant
from repro.errors import ConfigurationError, ProtocolError
from repro.netsim.delayed import DelayedNetwork
from repro.netsim.message import COORDINATOR, MessageKind
from repro.netsim.network import MessageStats
from repro.runtime import (
    ROUTING_POLICIES,
    Engine,
    Topology,
    merge_message_stats,
)

#: One buildable config per registered variant (mirrors the conformance
#: suite, minus the per-facade duplicates).
VARIANT_CONFIGS = {
    "infinite": SamplerConfig(variant="infinite", num_sites=3, sample_size=4),
    "broadcast": SamplerConfig(variant="broadcast", num_sites=3, sample_size=4),
    "caching": SamplerConfig(variant="caching", num_sites=3, sample_size=4),
    "sliding": SamplerConfig(variant="sliding", num_sites=3, window=10),
    "sliding-feedback": SamplerConfig(
        variant="sliding-feedback", num_sites=3, window=10, sample_size=2
    ),
    "sliding-local-push": SamplerConfig(
        variant="sliding-local-push", num_sites=3, window=10, sample_size=2
    ),
    "with-replacement": SamplerConfig(
        variant="with-replacement", num_sites=3, sample_size=2
    ),
    "sharded:infinite": SamplerConfig(
        variant="sharded:infinite", num_sites=3, sample_size=4, shards=2
    ),
    "sharded:broadcast": SamplerConfig(
        variant="sharded:broadcast", num_sites=3, sample_size=4, shards=2
    ),
    "sharded:caching": SamplerConfig(
        variant="sharded:caching", num_sites=3, sample_size=4, shards=2
    ),
    "sharded:sliding": SamplerConfig(
        variant="sharded:sliding", num_sites=3, window=10, shards=2
    ),
    "sharded:sliding-feedback": SamplerConfig(
        variant="sharded:sliding-feedback",
        num_sites=3,
        window=10,
        sample_size=2,
        shards=2,
    ),
    "sharded:sliding-local-push": SamplerConfig(
        variant="sharded:sliding-local-push",
        num_sites=3,
        window=10,
        sample_size=2,
        shards=2,
    ),
}


class _Sink:
    """A minimal node for wiring tests."""

    def __init__(self, site_id: int = 0) -> None:
        self.site_id = site_id
        self.received = []

    def handle_message(self, message, network) -> None:
        self.received.append(message)


class TestTopology:
    def test_build_registers_coordinator_and_sites(self):
        coordinator = _Sink()
        topology = Topology.build(
            coordinator=coordinator,
            site_factory=lambda i: _Sink(i),
            num_sites=3,
        )
        assert topology.num_sites == 3
        assert topology.coordinator is coordinator
        assert topology.network.node_at(COORDINATOR) is coordinator
        for i, site in enumerate(topology.sites):
            assert site.site_id == i
            assert topology.network.node_at(i) is site
            assert topology.site_at(i) is site

    def test_build_rejects_bad_site_count(self):
        for bad in (0, -1):
            with pytest.raises(ConfigurationError, match="num_sites"):
                Topology.build(
                    coordinator=_Sink(),
                    site_factory=lambda i: _Sink(i),
                    num_sites=bad,
                )
        with pytest.raises(ConfigurationError, match="num_sites"):
            Topology(_Sink(), [])

    def test_duplicate_address_rejected(self):
        with pytest.raises(ProtocolError, match="already registered"):
            Topology(_Sink(), [_Sink(0), _Sink(0)])

    def test_site_at_range_check(self):
        topology = Topology(_Sink(), [_Sink(0)])
        with pytest.raises(ConfigurationError, match="site_id"):
            topology.site_at(1)

    def test_message_stats_is_the_network_counters(self):
        topology = Topology(_Sink(), [_Sink(0)])
        assert topology.message_stats() is topology.network.stats
        assert topology.total_messages == 0
        topology.network.send(0, COORDINATOR, MessageKind.REPORT, "x")
        assert topology.total_messages == 1

    def test_accepts_custom_transport(self):
        network = DelayedNetwork()
        topology = Topology(_Sink(), [_Sink(0)], network=network)
        assert topology.network is network

    @pytest.mark.parametrize("name", sorted(VARIANT_CONFIGS))
    def test_every_registry_variant_constructs_through_the_runtime(self, name):
        """The acceptance contract: facades never wire networks directly.

        Single-group facades expose the topology; composite facades
        (with-replacement, sharded) are built *from* single-group facades
        that do.
        """
        sampler = make_sampler(VARIANT_CONFIGS[name])
        parts = getattr(sampler, "copies", None) or getattr(
            sampler, "groups", None
        )
        if parts is None:
            assert isinstance(sampler.topology, Topology)
            assert sampler.network is sampler.topology.network
            assert sampler.coordinator is sampler.topology.coordinator
            assert sampler.sites is sampler.topology.sites
        else:
            for part in parts:
                assert isinstance(part.topology, Topology)

    def test_rewire_keeps_topology_canonical(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=2)
        rewired = DelayedNetwork.rewire(sampler)
        assert sampler.network is rewired
        assert sampler.topology.network is rewired
        # Canonical stats now read from the new transport.
        sampler.observe(0, 11)
        assert sampler.total_messages == sampler.network.stats.total_messages
        assert sampler.total_messages >= 1


class TestMergeMessageStats:
    def test_sums_all_fields(self):
        a, b = MessageStats(), MessageStats()
        a.total_messages, a.total_bytes = 3, 48
        a.site_to_coordinator, a.coordinator_to_site = 2, 1
        a.by_kind[MessageKind.REPORT] = 2
        b.total_messages, b.total_bytes = 5, 80
        b.site_to_coordinator, b.coordinator_to_site = 1, 4
        b.by_kind[MessageKind.REPORT] = 1
        b.by_kind[MessageKind.THRESHOLD] = 4
        merged = merge_message_stats([a, b])
        assert merged.total_messages == 8
        assert merged.total_bytes == 128
        assert merged.site_to_coordinator == 3
        assert merged.coordinator_to_site == 5
        assert merged.by_kind[MessageKind.REPORT] == 3
        assert merged.by_kind[MessageKind.THRESHOLD] == 4

    def test_empty_merge_is_zero(self):
        merged = merge_message_stats([])
        assert merged == MessageStats()

    def test_composite_facades_report_the_merged_counters(self):
        sampler = make_sampler("with-replacement", num_sites=2, sample_size=3)
        for i in range(40):
            sampler.observe(i % 2, i)
        expected = merge_message_stats(
            copy.message_stats() for copy in sampler.copies
        )
        assert sampler.message_stats() == expected
        assert sampler.total_messages == expected.total_messages
        assert sampler.stats().messages_total == expected.total_messages


def _engine_pair(policy: str, **config):
    config = dict(
        dict(variant="infinite", num_sites=4, sample_size=4, seed=3), **config
    )
    single = Engine(make_sampler(SamplerConfig(**config)), policy=policy, seed=7)
    batched = Engine(make_sampler(SamplerConfig(**config)), policy=policy, seed=7)
    return single, batched


class TestEngine:
    def test_unknown_policy_rejected(self):
        sampler = make_sampler("infinite", num_sites=2, sample_size=2)
        with pytest.raises(ConfigurationError, match="routing policy"):
            Engine(sampler, policy="teleport")
        assert set(ROUTING_POLICIES) == {"explicit", "round-robin", "hash"}

    @pytest.mark.parametrize("policy", ["round-robin", "hash"])
    def test_batch_matches_single(self, policy):
        single, batched = _engine_pair(policy)
        items = [(i * 13) % 37 for i in range(120)]
        for item in items:
            single.observe(item)
        assert batched.observe_batch(items) == len(items)
        assert single.sampler.sample() == batched.sampler.sample()
        assert single.sampler.stats() == batched.sampler.stats()
        assert single.sampler.state_dict() == batched.sampler.state_dict()

    @pytest.mark.parametrize("policy", ["round-robin", "hash"])
    def test_chunked_batches_compose(self, policy):
        one, chunked = _engine_pair(policy)
        items = [(i * 17) % 53 for i in range(90)]
        one.observe_batch(items)
        for start in range(0, len(items), 7):
            chunked.observe_batch(items[start : start + 7])
        assert one.sampler.state_dict() == chunked.sampler.state_dict()

    def test_round_robin_cycles_sites(self):
        engine, _ = _engine_pair("round-robin")
        assert [engine.site_for(object()) for _ in range(1)] == [0]
        engine.observe("a")
        assert engine.site_for("b") == 1
        engine.observe_batch(["b", "c", "d"])
        assert engine.site_for("e") == 0  # 4 items into k=4 wraps around

    def test_hash_routing_is_sticky(self):
        engine, _ = _engine_pair("hash")
        site = engine.site_for("alice")
        for _ in range(3):
            engine.observe("alice")
            assert engine.site_for("alice") == site
        assignments = engine._distributor.assignments_for(["alice"] * 5)
        assert set(assignments.tolist()) == {site}

    def test_explicit_policy_passes_events_through(self):
        single, batched = _engine_pair("explicit")
        events = [(0, 5), (1, 9), (2, 5), (3, 7)]
        for event in events:
            single.observe(event)
        batched.observe_batch(events)
        assert single.sampler.state_dict() == batched.sampler.state_dict()
        with pytest.raises(ConfigurationError, match="explicit"):
            single.site_for(5)

    def test_slot_kwarg_advances_before_event_stamps(self):
        """The slot kwarg means advance-then-deliver on both paths, so a
        stamped event behind the advanced clock raises identically."""
        config = dict(variant="sliding", num_sites=2, window=8, seed=2)
        single = Engine(make_sampler(SamplerConfig(**config)), policy="explicit")
        batched = Engine(make_sampler(SamplerConfig(**config)), policy="explicit")
        with pytest.raises(ProtocolError, match="non-decreasing"):
            single.observe((0, "x", 3), slot=7)
        with pytest.raises(ProtocolError, match="non-decreasing"):
            batched.observe_batch([(0, "x", 3)], slot=7)
        # Stamps at/after the advanced clock are honored on both paths.
        single.observe((0, "y", 9), slot=7)
        batched.observe_batch([(0, "y", 9)], slot=7)
        assert single.sampler.state_dict() == batched.sampler.state_dict()

    def test_slot_kwarg_applies_even_to_an_empty_batch(self):
        engine = Engine(
            make_sampler(SamplerConfig(variant="sliding", num_sites=2, window=3)),
            policy="hash",
        )
        engine.observe_batch(["a"], slot=1)
        assert engine.observe_batch([], slot=10) == 0
        assert engine.sampler.current_slot == 10
        assert not engine.sampler.sample()  # window expired by the advance

    def test_slotted_routing(self):
        config = dict(variant="sliding", num_sites=3, window=8, seed=2)
        engine = Engine(make_sampler(SamplerConfig(**config)), policy="hash")
        direct = Engine(make_sampler(SamplerConfig(**config)), policy="hash")
        for slot in range(1, 6):
            engine.observe_batch([slot, slot + 10, 3], slot=slot)
            direct.sampler.advance(slot)
            for item in (slot, slot + 10, 3):
                direct.observe(item)
        assert engine.sampler.state_dict() == direct.sampler.state_dict()

    def test_routes_into_sharded_sampler(self):
        sampler = make_sampler(
            "sharded:infinite",
            num_sites=4,
            sample_size=8,
            shards=3,
            algorithm="mix64",
        )
        engine = Engine(sampler, policy="hash", seed=5)
        assert engine.observe_batch(list(range(500))) == 500
        assert len(sampler.sample().items) == 8
        assert sampler.total_messages > 0


class TestRegistryRoutingMetadata:
    def test_sharded_variants_carry_hash_partition_routing(self):
        for name in sampler_variants():
            variant = get_variant(name)
            if name.startswith("sharded:"):
                assert variant.sharded
                assert variant.routing == "hash-partition"
            else:
                assert not variant.sharded
                assert variant.routing == "explicit-site"
