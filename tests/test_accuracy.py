"""Tests for the accuracy subsystem: truth, suite, report, gate, CLI."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.accuracy import (
    ACCURACY_SCHEMA_VERSION,
    AccuracyConfig,
    AccuracyRecord,
    AccuracyReport,
    AccuracyTolerances,
    TruthContext,
    accuracy_estimators,
    accuracy_report_from_dict,
    compare_accuracy_reports,
    get_estimator,
    load_accuracy_report,
    run_accuracy_suite,
    save_accuracy_report,
)
from repro.cli import main
from repro.core.events import EventBatch
from repro.errors import AccuracyError

# The registry tolerances are calibrated for s = 64 (binomial SE ~0.06);
# shrinking the sample would make the small grid flakier than CI's.
SMALL = AccuracyConfig(
    n_events=1_500,
    num_sites=3,
    sample_size=64,
    window=16,
    seed=11,
    scenarios=("uniform", "sliding-churn"),
    variants=("infinite", "sharded:infinite", "sliding", "sharded:sliding"),
    shards=4,
    workers=2,
)


@pytest.fixture(scope="module")
def small_report() -> AccuracyReport:
    return run_accuracy_suite(SMALL)


class TestTruthContext:
    def test_tuple_events_full_history(self):
        events = [(0, 1), (1, 2), (0, 2), (2, 3)]
        truth = TruthContext.from_events(events, window=4)
        assert not truth.slotted
        assert truth.distinct_count(windowed=False) == 3
        # Unslotted streams never expire: both populations coincide.
        assert truth.distinct_count(windowed=True) == 3

    def test_slotted_window_uses_last_arrival(self):
        # Element 1 arrives early but is refreshed at slot 9; element 2
        # only ever arrives at slot 1 and has expired from a window of 4.
        events = [(0, 1, 1), (0, 2, 1), (0, 3, 8), (0, 1, 9)]
        truth = TruthContext.from_events(events, window=4)
        assert truth.final_slot == 9
        assert truth.distinct_count(windowed=False) == 3
        assert sorted(truth.distinct_window.tolist()) == [1, 3]

    def test_raw_items_and_event_batch(self):
        raw = TruthContext.from_events([5, 6, 5, 7], window=4)
        batch = TruthContext.from_events(
            EventBatch(np.asarray([5, 6, 5, 7])), window=4
        )
        assert raw.distinct_all.tolist() == batch.distinct_all.tolist()

    def test_derived_truths(self):
        events = list(range(10))
        truth = TruthContext.from_events(events, window=4)
        assert truth.fraction_where_mod(False, 2, 0) == 0.5
        shares = truth.group_shares(False, 5)
        assert shares.tolist() == [0.2] * 5
        assert truth.quantile_value(False, 0.5) == 4.5
        assert truth.rank_of(False, 4.5) == 0.5

    def test_empty_and_invalid(self):
        with pytest.raises(AccuracyError):
            TruthContext.from_events([], window=4)
        with pytest.raises(AccuracyError):
            TruthContext.from_events([1, 2], window=0)


class TestEstimatorRegistry:
    def test_builtin_estimators(self):
        assert accuracy_estimators() == (
            "distinct-eh",
            "distinct-kmv",
            "heavy-hitters",
            "predicate-fraction",
            "quantile-median",
        )

    def test_unknown_estimator_raises(self):
        with pytest.raises(AccuracyError):
            get_estimator("nope")

    def test_eh_skips_sharded_twins(self):
        estimator = get_estimator("distinct-eh")
        assert estimator.applies_to("infinite")
        assert not estimator.applies_to("sharded:infinite")

    def test_tolerances_are_positive(self):
        for name in accuracy_estimators():
            assert get_estimator(name).tolerance > 0


class TestSuite:
    def test_all_records_within_tolerance(self, small_report):
        for record in small_report.records:
            assert record.error <= record.tolerance, record

    def test_grid_coverage(self, small_report):
        keys = set(small_report.by_key())
        # Windowed variants only run on the slotted scenario.
        assert ("uniform", "distinct-kmv", "infinite") in keys
        assert ("uniform", "distinct-kmv", "sliding") not in keys
        assert ("sliding-churn", "distinct-kmv", "sliding") in keys
        # The stream-replay EH estimator skips the sharded twins.
        assert ("uniform", "distinct-eh", "infinite") in keys
        assert ("uniform", "distinct-eh", "sharded:infinite") not in keys

    def test_sharded_cells_are_bit_identical(self, small_report):
        """S=4 sharded merges must equal the centralized sample exactly."""
        pairs = [("infinite", "sharded:infinite"), ("sliding", "sharded:sliding")]
        compared = 0
        for record in small_report.records:
            central, sharded = next(
                (c, s) for c, s in pairs if record.variant in (c, s)
            )
            if record.variant != central:
                continue
            twin = small_report.record_for(
                record.scenario, record.estimator, sharded
            )
            if twin is None:
                continue
            assert record.estimate == twin.estimate, record.key
            assert record.error == twin.error, record.key
            assert record.ci_low == twin.ci_low, record.key
            assert record.ci_high == twin.ci_high, record.key
            compared += 1
        assert compared >= 6

    def test_process_executor_matches_serial(self):
        """W=2 process-pool ingestion must not change a single estimate."""
        base = dataclasses.replace(
            SMALL,
            scenarios=("sharded-uniform",),
            variants=("sharded:infinite",),
        )
        serial = run_accuracy_suite(base)
        parallel = run_accuracy_suite(
            dataclasses.replace(base, scenarios=("sharded-uniform-parallel",))
        )
        for record in serial.records:
            twin = parallel.record_for(
                "sharded-uniform-parallel", record.estimator, record.variant
            )
            assert twin is not None
            assert record.estimate == twin.estimate
            assert record.error == twin.error

    def test_deterministic_given_seed(self):
        config = dataclasses.replace(
            SMALL, scenarios=("uniform",), variants=("infinite",)
        )
        a = run_accuracy_suite(config)
        b = run_accuracy_suite(config)
        assert a.by_key() == b.by_key()

    def test_empty_grid_raises(self):
        with pytest.raises(AccuracyError):
            run_accuracy_suite(
                dataclasses.replace(
                    SMALL, scenarios=("uniform",), variants=("sliding",)
                )
            )

    def test_unknown_names_raise(self):
        with pytest.raises(Exception):
            run_accuracy_suite(dataclasses.replace(SMALL, scenarios=("nope",)))
        with pytest.raises(AccuracyError):
            run_accuracy_suite(dataclasses.replace(SMALL, estimators=("nope",)))


class TestReport:
    def test_round_trip(self, small_report):
        again = accuracy_report_from_dict(json.loads(small_report.to_json()))
        assert again.by_key() == small_report.by_key()
        assert again.params == small_report.params

    def test_save_and_load(self, small_report, tmp_path):
        path = save_accuracy_report(small_report, tmp_path / "acc.json")
        loaded = load_accuracy_report(path)
        assert loaded.by_key() == small_report.by_key()

    def test_schema_version_enforced(self, small_report):
        data = small_report.to_dict()
        data["schema_version"] = ACCURACY_SCHEMA_VERSION + 1
        with pytest.raises(AccuracyError):
            accuracy_report_from_dict(data)
        with pytest.raises(AccuracyError):
            accuracy_report_from_dict([1, 2])

    def test_malformed_records_rejected(self, small_report):
        data = small_report.to_dict()
        del data["records"][0]["error"]
        with pytest.raises(AccuracyError):
            accuracy_report_from_dict(data)
        data = small_report.to_dict()
        data["records"] = "nope"
        with pytest.raises(AccuracyError):
            accuracy_report_from_dict(data)

    def test_json_is_stable(self, small_report):
        assert small_report.to_json() == small_report.to_json()
        assert small_report.to_json().endswith("\n")


def _with_error(report: AccuracyReport, index: int, error: float) -> AccuracyReport:
    records = list(report.records)
    records[index] = dataclasses.replace(records[index], error=error)
    return dataclasses.replace(report, records=tuple(records))


class TestRegressionGate:
    def test_self_compare_is_ok(self, small_report):
        comparison = compare_accuracy_reports(small_report, small_report)
        assert comparison.ok
        assert not comparison.regressions and not comparison.missing
        assert "OK" in comparison.render()

    def test_tolerance_breach_fails(self, small_report):
        worse = _with_error(small_report, 0, 5.0)
        comparison = compare_accuracy_reports(worse, small_report)
        assert not comparison.ok
        assert comparison.regressions[0].over_tolerance
        assert "REGRESSION" in comparison.render()

    def test_drift_breach_fails_even_under_tolerance(self, small_report):
        # Stay under the registry ceiling but triple the baseline error.
        target = next(
            i
            for i, record in enumerate(small_report.records)
            if record.error > 0.03
        )
        baseline_error = small_report.records[target].error
        drifted = min(baseline_error * 3.0 + 0.03,
                      small_report.records[target].tolerance * 0.99)
        worse = _with_error(small_report, target, drifted)
        comparison = compare_accuracy_reports(worse, small_report)
        assert not comparison.ok
        delta = comparison.regressions[0]
        assert delta.drifted and not delta.over_tolerance

    def test_slack_absorbs_tiny_drift(self, small_report):
        nudged = _with_error(
            small_report, 0, small_report.records[0].error + 0.005
        )
        comparison = compare_accuracy_reports(
            nudged, small_report, AccuracyTolerances(drift_factor=1.0)
        )
        assert comparison.ok

    def test_missing_record_fails(self, small_report):
        shrunk = dataclasses.replace(
            small_report, records=small_report.records[1:]
        )
        comparison = compare_accuracy_reports(shrunk, small_report)
        assert not comparison.ok
        assert comparison.missing == (small_report.records[0].key,)

    def test_added_record_is_informational(self, small_report):
        shrunk = dataclasses.replace(
            small_report, records=small_report.records[1:]
        )
        comparison = compare_accuracy_reports(small_report, shrunk)
        assert comparison.ok
        assert comparison.added == (small_report.records[0].key,)

    def test_workload_mismatch_raises(self, small_report):
        other = dataclasses.replace(
            small_report, params={**small_report.params, "seed": 999}
        )
        with pytest.raises(AccuracyError):
            compare_accuracy_reports(small_report, other)

    def test_markdown_render(self, small_report):
        worse = _with_error(small_report, 0, 5.0)
        text = compare_accuracy_reports(worse, small_report).render_markdown()
        assert text.startswith("### Accuracy gate: ❌ fail")
        assert "| scenario | estimator | variant |" in text
        assert "regressed" in text
        ok_text = compare_accuracy_reports(
            small_report, small_report
        ).render_markdown()
        assert ok_text.startswith("### Accuracy gate: ✅ pass")


# s = 64 keeps the CLI grid inside the registry tolerances (see SMALL).
ACC_CLI_ARGS = [
    "--n", "1000", "--sites", "3", "--sample-size", "64", "--window", "16",
    "--scenario", "uniform", "--variant", "infinite",
]


class TestCLI:
    def test_run_writes_report(self, capsys, tmp_path):
        out = tmp_path / "acc.json"
        code = main(["accuracy", "run", *ACC_CLI_ARGS, "--out", str(out)])
        assert code == 0
        report = load_accuracy_report(out)
        assert report.schema_version == ACCURACY_SCHEMA_VERSION
        assert {record.estimator for record in report.records} == set(
            accuracy_estimators()
        )

    def test_compare_ok_and_markdown(self, capsys, tmp_path):
        out = tmp_path / "acc.json"
        assert main(["accuracy", "run", *ACC_CLI_ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["accuracy", "compare", str(out), str(out)]) == 0
        assert "OK" in capsys.readouterr().out
        code = main(
            ["accuracy", "compare", str(out), str(out), "--format", "markdown"]
        )
        assert code == 0
        assert "### Accuracy gate: ✅ pass" in capsys.readouterr().out

    def test_compare_exits_1_on_seeded_regression(self, capsys, tmp_path):
        """A deliberately broken record must trip the gate with exit 1."""
        out = tmp_path / "acc.json"
        assert main(["accuracy", "run", *ACC_CLI_ARGS, "--out", str(out)]) == 0
        report = load_accuracy_report(out)
        worse = _with_error(report, 0, report.records[0].tolerance + 1.0)
        bad = tmp_path / "bad.json"
        save_accuracy_report(worse, bad)
        capsys.readouterr()
        assert main(["accuracy", "compare", str(bad), str(out)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_baseline_refuses_overwrite_without_force(self, capsys, tmp_path):
        out = tmp_path / "baseline.json"
        args = ["accuracy", "baseline", *ACC_CLI_ARGS, "--out", str(out)]
        assert main(args) == 0
        first = out.read_text()
        assert main(args) == 2
        assert "refusing to overwrite" in capsys.readouterr().err
        assert out.read_text() == first
        assert main([*args, "--force"]) == 0

    def test_perf_baseline_guard(self, capsys, tmp_path):
        out = tmp_path / "perf_baseline.json"
        out.write_text("{}")
        code = main(["perf", "baseline", "--n", "100", "--out", str(out)])
        assert code == 2
        assert "refusing to overwrite" in capsys.readouterr().err
        assert out.read_text() == "{}"


class TestCommittedBaseline:
    def test_committed_baseline_loads_and_matches_defaults(self):
        """The committed baseline must parse and cover the default grid."""
        baseline = load_accuracy_report("benchmarks/accuracy_baseline.json")
        assert baseline.schema_version == ACCURACY_SCHEMA_VERSION
        assert baseline.params["sample_size"] == 64
        assert baseline.params["shards"] == 4
        assert baseline.params["workers"] == 2
        for record in baseline.records:
            assert record.error <= record.tolerance, record

    def test_record_key_identity(self):
        record = AccuracyRecord(
            scenario="s",
            estimator="e",
            variant="v",
            n_events=1,
            window=1,
            windowed=False,
            sample_len=1,
            estimate=1.0,
            truth=1.0,
            error=0.0,
            error_kind="relative",
            ci_low=0.0,
            ci_high=2.0,
            within_ci=True,
            tolerance=0.5,
        )
        assert record.key == ("s", "e", "v")
