"""Hypothesis stateful (rule-based) tests.

These drive long arbitrary interleavings of operations against the core
data structures and the distributed protocol, holding a reference model
alongside and checking equivalence after every step — the strongest
random-testing layer in the suite.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import CentralizedDistinctSampler, DistinctSamplerSystem
from repro.hashing import UnitHasher
from repro.structures.bottomk import BottomK
from repro.structures.dominance import SortedDominanceSet, brute_force_survivors
from repro.structures.treap import Treap


class BottomKMachine(RuleBasedStateMachine):
    """BottomK vs a sorted-list model under offers and discards."""

    def __init__(self):
        super().__init__()
        self.bk = BottomK(5)
        self.model: dict[int, float] = {}  # element -> hash
        self._next_hash = 0

    def _fresh_hash(self, raw: int) -> float:
        # Deterministic unique hash per element.
        return ((raw * 0x9E3779B1) % (2**32) + 0.5) / 2**32

    @rule(element=st.integers(0, 60))
    def offer(self, element):
        h = self._fresh_hash(element)
        self.bk.offer(h, element)
        if element not in self.model:
            candidate = dict(self.model)
            candidate[element] = h
            kept = sorted(candidate.items(), key=lambda kv: kv[1])[:5]
            self.model = dict(kept)

    @rule(element=st.integers(0, 60))
    def discard(self, element):
        was_present = element in self.model
        assert self.bk.discard(element) == was_present
        self.model.pop(element, None)

    @invariant()
    def agrees_with_model(self):
        self.bk.check_invariants()
        want = [e for e, _ in sorted(self.model.items(), key=lambda kv: kv[1])]
        assert self.bk.elements() == want


class DominanceMachine(RuleBasedStateMachine):
    """SortedDominanceSet vs brute force under observes and expiries."""

    def __init__(self):
        super().__init__()
        self.ds = SortedDominanceSet(2)
        self.live: dict[int, int] = {}  # element -> expiry
        self.now = 0

    def _hash(self, element: int) -> float:
        return ((element * 0x45D9F3B) % (2**32)) / 2**32

    @rule(element=st.integers(0, 25), life=st.integers(1, 30))
    def observe(self, element, life):
        expiry = self.now + life
        self.ds.observe(element, expiry, self._hash(element))
        if expiry > self.live.get(element, -1):
            self.live[element] = expiry

    @rule(step=st.integers(1, 10))
    def advance(self, step):
        self.now += step
        self.ds.expire(self.now)
        self.live = {e: t for e, t in self.live.items() if t > self.now}

    @invariant()
    def matches_brute_force(self):
        raw = [(e.element, e.expiry, e.hash) for e in self.ds.entries()]
        want = brute_force_survivors(
            [(e, t, self._hash(e)) for e, t in self.live.items()], 2
        )
        assert raw == want


class TreapMachine(RuleBasedStateMachine):
    """Treap vs a dict model under inserts, removals, and range splits."""

    def __init__(self):
        super().__init__()
        self.treap = Treap()
        self.model: dict[int, float] = {}

    @rule(key=st.integers(0, 100), priority=st.floats(0, 1, allow_nan=False))
    def insert(self, key, priority):
        if key in self.model:
            return
        self.treap.insert(key, priority, value=key)
        self.model[key] = priority

    @rule(key=st.integers(0, 100))
    def remove(self, key):
        if key in self.model:
            assert self.treap.remove(key) == key
            del self.model[key]

    @rule(bound=st.integers(0, 100))
    def split(self, bound):
        removed = self.treap.split_leq(bound)
        assert sorted(n.key for n in removed) == sorted(
            k for k in self.model if k <= bound
        )
        self.model = {k: p for k, p in self.model.items() if k > bound}

    @invariant()
    def consistent(self):
        self.treap.check_invariants()
        assert sorted(n.key for n in self.treap) == sorted(self.model)
        if self.model:
            want = min((p, k) for k, p in self.model.items())[1]
            assert self.treap.min_priority().key == want


class ProtocolMachine(RuleBasedStateMachine):
    """Distributed system vs centralized oracle under arbitrary routing."""

    def __init__(self):
        super().__init__()
        hasher = UnitHasher(4242)
        self.system = DistinctSamplerSystem(4, 6, hasher=hasher)
        self.oracle = CentralizedDistinctSampler(6, hasher)

    @rule(element=st.integers(0, 120), site=st.integers(0, 3))
    def observe(self, element, site):
        self.system.observe(site, element)
        self.oracle.observe(element)

    @rule(element=st.integers(0, 120))
    def flood(self, element):
        self.system.flood(element)
        self.oracle.observe(element)

    @invariant()
    def sample_exact(self):
        assert self.system.sample() == self.oracle.sample()
        assert self.system.threshold == self.oracle.threshold


_settings = settings(max_examples=25, stateful_step_count=40, deadline=None)

TestBottomKMachine = BottomKMachine.TestCase
TestBottomKMachine.settings = _settings
TestDominanceMachine = DominanceMachine.TestCase
TestDominanceMachine.settings = _settings
TestTreapMachine = TreapMachine.TestCase
TestTreapMachine.settings = _settings
TestProtocolMachine = ProtocolMachine.TestCase
TestProtocolMachine.settings = _settings
