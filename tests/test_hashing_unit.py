"""Tests for UnitHasher, SeededHashFamily, and the vectorized fast path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    HASH_ALGORITHMS,
    SeededHashFamily,
    UnitHasher,
    unit_hash_array,
)


class TestUnitRange:
    @pytest.mark.parametrize("algorithm", ["murmur2", "murmur3"])
    @given(st.one_of(st.integers(0, 2**63), st.text(max_size=30)))
    @settings(max_examples=100)
    def test_in_unit_interval(self, algorithm, element):
        h = UnitHasher(5, algorithm)
        value = h.unit(element)
        assert 0.0 <= value < 1.0

    def test_callable_alias(self):
        h = UnitHasher(1)
        assert h("x") == h.unit("x")

    def test_unit_many(self):
        h = UnitHasher(1)
        assert h.unit_many(["a", "b"]) == [h.unit("a"), h.unit("b")]

    def test_hash32_range(self):
        h = UnitHasher(1)
        assert 0 <= h.hash32("abc") <= 0xFFFFFFFF


class TestDeterminismAndSeeds:
    def test_same_seed_same_hash(self):
        assert UnitHasher(9).unit("x") == UnitHasher(9).unit("x")

    def test_different_seed_different_hash(self):
        assert UnitHasher(1).unit("x") != UnitHasher(2).unit("x")

    def test_algorithms_differ(self):
        vals = {
            algorithm: UnitHasher(3, algorithm).unit(12345)
            for algorithm in ("murmur2", "murmur3", "mix64")
        }
        assert len(set(vals.values())) == 3

    def test_equality_and_hashability(self):
        assert UnitHasher(1, "murmur2") == UnitHasher(1, "murmur2")
        assert UnitHasher(1, "murmur2") != UnitHasher(2, "murmur2")
        assert UnitHasher(1, "murmur2") != UnitHasher(1, "murmur3")
        assert len({UnitHasher(1), UnitHasher(1)}) == 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            UnitHasher(0, "sha256")


class TestMix64:
    def test_int_only(self):
        h = UnitHasher(0, "mix64")
        with pytest.raises(TypeError):
            h.unit("not an int")

    @given(st.lists(st.integers(0, 2**62), min_size=1, max_size=200), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_vectorized_matches_scalar(self, ids, seed):
        h = UnitHasher(seed, "mix64")
        arr = unit_hash_array(np.array(ids, dtype=np.int64), seed)
        for i, value in zip(ids, arr.tolist()):
            assert value == h.unit(i)


class TestUniformity:
    """Hash outputs should look Uniform(0,1) — KS-style check."""

    @pytest.mark.parametrize("algorithm", ["murmur2", "murmur3", "mix64"])
    def test_ks_statistic(self, algorithm):
        h = UnitHasher(17, algorithm)
        n = 4000
        values = np.sort([h.unit(i) for i in range(n)])
        grid = np.arange(1, n + 1) / n
        ks = np.max(np.abs(values - grid))
        # Critical value at alpha=0.001 is ~1.95/sqrt(n) ≈ 0.031.
        assert ks < 0.035, f"{algorithm} KS statistic too large: {ks}"

    def test_mean_and_variance(self):
        h = UnitHasher(23)
        values = np.array([h.unit(i) for i in range(4000)])
        assert abs(values.mean() - 0.5) < 0.02
        assert abs(values.var() - 1 / 12) < 0.01


class TestFamily:
    def test_members_deterministic(self):
        fam = SeededHashFamily(7)
        assert fam.member(3) == fam.member(3)

    def test_members_independentish(self):
        fam = SeededHashFamily(7)
        h0, h1 = fam.member(0), fam.member(1)
        # Different members hash the same element differently.
        assert h0.unit("x") != h1.unit("x")

    def test_members_iterator(self):
        fam = SeededHashFamily(7)
        members = list(fam.members(5))
        assert len(members) == 5
        assert members[2] == fam.member(2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            SeededHashFamily(0).member(-1)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SeededHashFamily(0, "md5")

    def test_family_correlation_low(self):
        # Samples under different members should be nearly uncorrelated.
        fam = SeededHashFamily(11)
        h0, h1 = fam.member(0), fam.member(1)
        a = np.array([h0.unit(i) for i in range(2000)])
        b = np.array([h1.unit(i) for i in range(2000)])
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.08
