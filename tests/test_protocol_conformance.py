"""Shared protocol-conformance suite, parametrized over the registry.

Every registered sampler variant — the five paper systems plus the
baselines — must speak the same lifecycle: ``observe``/``observe_batch``
→ ``advance`` → ``sample() -> SampleResult`` → ``stats() -> SamplerStats``,
and must checkpoint/restore through the variant-agnostic
``snapshot``/``restore`` pair.  These tests are the contract that lets
the CLI, experiment drivers, and persistence treat samplers uniformly
with no per-class branching.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    BroadcastSamplerSystem,
    CachingSamplerSystem,
    DistinctSamplerSystem,
    Sampler,
    SampleResult,
    SamplerConfig,
    SamplerStats,
    ShardedSampler,
    SlidingWindowBottomS,
    SlidingWindowBottomSFeedback,
    SlidingWindowSystem,
    SlidingWindowWithReplacement,
    WithReplacementSampler,
    make_sampler,
    restore,
    sampler_variants,
    snapshot,
)
from repro.errors import ProtocolError

#: One config per registered variant *and* per concrete facade class the
#: variant can resolve to, so the whole zoo runs through every test.
CONFIGS = {
    "infinite": SamplerConfig(variant="infinite", num_sites=3, sample_size=4, seed=9),
    "broadcast": SamplerConfig(variant="broadcast", num_sites=3, sample_size=4, seed=9),
    "caching": SamplerConfig(variant="caching", num_sites=3, sample_size=4, seed=9),
    "sliding-s1": SamplerConfig(variant="sliding", num_sites=3, window=20, seed=9),
    "sliding-s3": SamplerConfig(
        variant="sliding", num_sites=3, window=20, sample_size=3, seed=9
    ),
    "sliding-feedback": SamplerConfig(
        variant="sliding-feedback", num_sites=3, window=20, sample_size=3, seed=9
    ),
    "sliding-local-push": SamplerConfig(
        variant="sliding-local-push", num_sites=3, window=20, sample_size=3, seed=9
    ),
    "wr-infinite": SamplerConfig(
        variant="with-replacement", num_sites=3, sample_size=3, seed=9
    ),
    "wr-sliding": SamplerConfig(
        variant="with-replacement", num_sites=3, window=20, sample_size=3, seed=9
    ),
    # Sharded scale-out wrappers: S coordinator groups, hash-partitioned
    # key space, query-time bottom-s merge (repro.runtime.sharded).
    "sharded-infinite": SamplerConfig(
        variant="sharded:infinite", num_sites=3, sample_size=4, shards=3, seed=9
    ),
    "sharded-broadcast": SamplerConfig(
        variant="sharded:broadcast", num_sites=3, sample_size=4, shards=2, seed=9
    ),
    "sharded-caching": SamplerConfig(
        variant="sharded:caching", num_sites=3, sample_size=4, shards=2, seed=9
    ),
    "sharded-sliding-s1": SamplerConfig(
        variant="sharded:sliding", num_sites=3, window=20, shards=2, seed=9
    ),
    "sharded-sliding-feedback": SamplerConfig(
        variant="sharded:sliding-feedback",
        num_sites=3,
        window=20,
        sample_size=3,
        shards=2,
        seed=9,
    ),
    "sharded-sliding-local-push": SamplerConfig(
        variant="sharded:sliding-local-push",
        num_sites=3,
        window=20,
        sample_size=3,
        shards=2,
        seed=9,
    ),
}


def workload(n_slots: int = 40, per_slot: int = 3, sites: int = 3, base: int = 0):
    """A deterministic slotted arrival schedule (no RNG needed)."""
    schedule = []
    for slot in range(1, n_slots + 1):
        arrivals = [
            (
                (slot * 7 + j) % sites,
                (base + slot * 13 + j * 31) % 57,
            )
            for j in range(per_slot)
        ]
        schedule.append((slot, arrivals))
    return schedule


def drive(sampler: Sampler, schedule) -> None:
    for slot, arrivals in schedule:
        sampler.advance(slot)
        sampler.observe_batch(arrivals)


@pytest.fixture(params=sorted(CONFIGS), ids=sorted(CONFIGS))
def config(request) -> SamplerConfig:
    return CONFIGS[request.param]


class TestRegistryCoverage:
    def test_every_variant_has_a_config(self):
        assert set(sampler_variants()) == {c.variant for c in CONFIGS.values()}

    def test_every_concrete_facade_class_covered(self):
        # The full concrete-facade zoo; `repro lint` (RPR003) statically
        # checks that every concrete Sampler subclass is named here.
        built = {type(make_sampler(c)) for c in CONFIGS.values()}
        assert {
            DistinctSamplerSystem,
            SlidingWindowSystem,
            SlidingWindowBottomS,
            SlidingWindowBottomSFeedback,
            WithReplacementSampler,
            SlidingWindowWithReplacement,
            BroadcastSamplerSystem,
            CachingSamplerSystem,
            ShardedSampler,
        } <= built


class TestLifecycle:
    def test_is_sampler_and_config_roundtrips(self, config):
        sampler = make_sampler(config)
        assert isinstance(sampler, Sampler)
        # The sampler's own config rebuilds an identical sampler class.
        rebuilt = make_sampler(sampler.config)
        assert type(rebuilt) is type(sampler)
        assert rebuilt.config == sampler.config

    def test_sample_result_shape(self, config):
        sampler = make_sampler(config)
        drive(sampler, workload())
        result = sampler.sample()
        assert isinstance(result, SampleResult)
        assert isinstance(result.items, tuple)
        assert result.sample_size == config.sample_size
        if result.with_replacement:
            assert len(result.items) == config.sample_size
            assert result.threshold is None
        else:
            assert len(result.items) <= config.sample_size
            # Items mirror the (hash, item) pairs, ascending by hash.
            assert result.items == tuple(item for _, item in result.pairs)
            hashes = [h for h, _ in result.pairs]
            assert hashes == sorted(hashes)
            assert all(h <= result.threshold for h in hashes)
        if config.window:
            assert result.window == config.window
            assert result.slot == 40
        else:
            assert result.window is None

    def test_sample_result_is_sequence_like(self, config):
        sampler = make_sampler(config)
        drive(sampler, workload())
        result = sampler.sample()
        assert list(result) == list(result.items)
        assert len(result) == len(result.items)
        assert result == list(result.items)
        if result.items:
            assert result[0] == result.items[0]
            assert result.items[0] in result

    def test_stats_shape(self, config):
        sampler = make_sampler(config)
        drive(sampler, workload())
        stats = sampler.stats()
        assert isinstance(stats, SamplerStats)
        assert stats.num_sites == config.num_sites
        assert len(stats.per_site_memory) == config.num_sites
        assert stats.messages_total == (
            stats.messages_to_coordinator + stats.messages_to_sites
        )
        assert stats.messages_total > 0
        assert stats.slots_processed == 40
        assert all(size >= 0 for size in stats.per_site_memory)

    def test_observe_batch_matches_per_item_observe(self, config):
        batched = make_sampler(config)
        single = make_sampler(config)
        for slot, arrivals in workload():
            batched.advance(slot)
            batched.observe_batch(arrivals)
            for site_id, item in arrivals:
                single.observe(site_id, item, slot=slot)
        assert batched.sample() == single.sample()
        assert batched.stats() == single.stats()

    def test_observe_with_slot_stamps(self, config):
        # 3-tuple events advance time exactly like explicit advance().
        via_events = make_sampler(config)
        explicit = make_sampler(config)
        for slot, arrivals in workload(n_slots=20):
            explicit.advance(slot)
            explicit.observe_batch(arrivals)
            via_events.observe_batch(
                [(site, item, slot) for site, item in arrivals]
            )
        assert via_events.sample() == explicit.sample()
        assert via_events.current_slot == explicit.current_slot

    def test_advance_is_idempotent_per_slot(self, config):
        sampler = make_sampler(config)
        drive(sampler, workload(n_slots=10))
        before = sampler.stats()
        sampler.advance(10)
        sampler.advance(10)
        assert sampler.stats() == before

    def test_advance_rejects_rewind(self, config):
        sampler = make_sampler(config)
        sampler.advance(5)
        with pytest.raises(ProtocolError):
            sampler.advance(4)


class TestSnapshotRoundTrip:
    """Snapshot → JSON wire → restore, for every registered variant."""

    def test_roundtrip_identical(self, config):
        sampler = make_sampler(config)
        drive(sampler, workload())
        wire = json.dumps(snapshot(sampler))
        revived = restore(json.loads(wire))
        assert type(revived) is type(sampler)
        assert revived.sample() == sampler.sample()
        assert revived.stats() == sampler.stats()

    def test_revived_sampler_continues_identically(self, config):
        sampler = make_sampler(config)
        drive(sampler, workload())
        revived = restore(json.loads(json.dumps(snapshot(sampler))))
        continuation = [
            (slot + 40, arrivals)
            for slot, arrivals in workload(n_slots=15, base=17)
        ]
        drive(sampler, continuation)
        drive(revived, continuation)
        assert revived.sample() == sampler.sample()
        assert revived.stats() == sampler.stats()
