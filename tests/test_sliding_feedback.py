"""Tests for the general-s lazy-feedback sliding-window system."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CentralizedWindowSampler
from repro.core.sliding_feedback import SlidingWindowBottomSFeedback
from repro.core.sliding_general import SlidingWindowBottomS
from repro.errors import ConfigurationError, ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, Message, MessageKind


def random_schedule(rng, num_sites, universe, slots, max_per_slot=5):
    for slot in range(1, slots + 1):
        burst = int(rng.integers(0, max_per_slot))
        yield slot, [
            (int(rng.integers(0, num_sites)), int(rng.integers(0, universe)))
            for _ in range(burst)
        ]


class TestExactness:
    @pytest.mark.parametrize("sample_size", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_equals_oracle_every_slot(self, sample_size, seed):
        hasher = UnitHasher(seed * 31 + sample_size)
        system = SlidingWindowBottomSFeedback(
            num_sites=3, window=20, sample_size=sample_size, hasher=hasher
        )
        oracle = CentralizedWindowSampler(20, sample_size, hasher)
        rng = np.random.default_rng(seed)
        for slot, arrivals in random_schedule(rng, 3, 50, 500):
            system.advance(slot)
            system.observe_batch(arrivals)
            for _site, element in arrivals:
                oracle.observe(element, slot)
            oracle.advance(slot)
            assert system.sample() == oracle.sample(), f"slot {slot}"

    def test_heavy_churn_tiny_window(self):
        hasher = UnitHasher(99)
        system = SlidingWindowBottomSFeedback(
            num_sites=2, window=3, sample_size=3, hasher=hasher
        )
        oracle = CentralizedWindowSampler(3, 3, hasher)
        rng = np.random.default_rng(9)
        for slot, arrivals in random_schedule(rng, 2, 12, 400, max_per_slot=7):
            system.advance(slot)
            system.observe_batch(arrivals)
            for _site, element in arrivals:
                oracle.observe(element, slot)
            oracle.advance(slot)
            assert system.sample() == oracle.sample()

    def test_window_empties(self):
        system = SlidingWindowBottomSFeedback(
            num_sites=2, window=5, sample_size=3, seed=2
        )
        system.advance(1)
        system.observe_batch([(0, "a"), (1, "b")])
        assert system.sample() == sorted(
            ["a", "b"], key=system.hasher.unit
        )
        for slot in range(2, 12):
            system.advance(slot)
        assert system.sample() == []


class TestThresholdInvariants:
    def test_site_threshold_always_safe(self):
        # Whenever a site's threshold is valid (t_i > now), there exist s
        # live elements (at the coordinator) hashing below u_i — so a
        # skipped arrival could not be in the global bottom-s.
        hasher = UnitHasher(10)
        system = SlidingWindowBottomSFeedback(
            num_sites=3, window=15, sample_size=3, hasher=hasher
        )
        rng = np.random.default_rng(3)
        for slot, arrivals in random_schedule(rng, 3, 40, 400):
            system.advance(slot)
            system.observe_batch(arrivals)
            coordinator = system.coordinator
            u, valid = coordinator._threshold(slot)
            for site in system.sites:
                if site.valid_until > slot and site.u_local < 1.0:
                    # Site threshold is some past (u, t_u) with t_u > now:
                    # its backing bottom-s is still live, so the current
                    # coordinator u can only be <= the site's view.
                    assert u <= site.u_local + 1e-15

    def test_messages_two_way(self):
        system = SlidingWindowBottomSFeedback(
            num_sites=3, window=15, sample_size=2, seed=4
        )
        rng = np.random.default_rng(1)
        for slot, arrivals in random_schedule(rng, 3, 40, 300):
            system.advance(slot)
            system.observe_batch(arrivals)
        stats = system.network.stats
        assert stats.total_messages == 2 * stats.site_to_coordinator
        assert stats.by_kind[MessageKind.SW_REPORT] == stats.site_to_coordinator


class TestVsLocalPush:
    def test_same_samples_different_costs(self):
        hasher = UnitHasher(11)
        feedback = SlidingWindowBottomSFeedback(
            num_sites=4, window=25, sample_size=3, hasher=hasher
        )
        push = SlidingWindowBottomS(
            num_sites=4, window=25, sample_size=3, hasher=hasher
        )
        rng = np.random.default_rng(5)
        schedule = list(random_schedule(rng, 4, 60, 600))
        for slot, arrivals in schedule:
            feedback.advance(slot)
            feedback.observe_batch(arrivals)
            push.advance(slot)
            push.observe_batch(arrivals)
            assert feedback.sample() == list(push.sample().items)
        # Both are exact; costs differ by strategy, not correctness.
        assert feedback.total_messages > 0
        assert push.total_messages > 0


class TestErrors:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowBottomSFeedback(num_sites=0, window=5, sample_size=1)
        with pytest.raises(ConfigurationError):
            SlidingWindowBottomSFeedback(num_sites=2, window=0, sample_size=1)
        with pytest.raises(ConfigurationError):
            SlidingWindowBottomSFeedback(num_sites=2, window=5, sample_size=0)

    def test_foreign_messages_rejected(self):
        system = SlidingWindowBottomSFeedback(
            num_sites=1, window=5, sample_size=1, seed=6
        )
        with pytest.raises(ProtocolError):
            system.sites[0].handle_message(
                Message(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5),
                system.network,
            )
        with pytest.raises(ProtocolError):
            system.coordinator.handle_message(
                Message(0, COORDINATOR, MessageKind.REPORT, None),
                system.network,
            )


class TestFactoryIntegration:
    def test_registry_dispatch(self):
        from repro import make_sampler
        from repro.core.sliding import SlidingWindowSystem

        assert isinstance(
            make_sampler("sliding", num_sites=2, window=10), SlidingWindowSystem
        )
        assert isinstance(
            make_sampler("sliding", num_sites=2, window=10, sample_size=4),
            SlidingWindowBottomSFeedback,
        )
        assert isinstance(
            make_sampler(
                "sliding-local-push", num_sites=2, window=10, sample_size=4
            ),
            SlidingWindowBottomS,
        )
