"""Tests for the canonical element-to-bytes encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.encoding import encode_element


# Strategy covering all supported element types, nested one level.
_scalar = st.one_of(
    st.integers(min_value=-(2**80), max_value=2**80),
    st.text(max_size=20),
    st.binary(max_size=20),
)
_element = st.one_of(_scalar, st.tuples(_scalar, _scalar))


class TestInjectivity:
    """Distinct elements must encode to distinct byte strings."""

    @given(_element, _element)
    def test_pairwise_injective(self, a, b):
        if a != b:
            assert encode_element(a) != encode_element(b)

    def test_int_vs_str_collision_free(self):
        assert encode_element(1) != encode_element("1")

    def test_str_vs_bytes_collision_free(self):
        assert encode_element("ab") != encode_element(b"ab")

    def test_negative_vs_positive(self):
        assert encode_element(-5) != encode_element(5)

    def test_tuple_vs_flat(self):
        assert encode_element(("ab",)) != encode_element("ab")

    def test_tuple_boundary_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc") — length prefixes do it.
        assert encode_element(("ab", "c")) != encode_element(("a", "bc"))

    def test_nested_tuples(self):
        assert encode_element(((1, 2), 3)) != encode_element((1, (2, 3)))


class TestDeterminism:
    @given(_element)
    def test_stable(self, element):
        assert encode_element(element) == encode_element(element)

    def test_zero(self):
        assert encode_element(0) == encode_element(0)
        assert encode_element(0) != encode_element(1)


class TestErrors:
    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            encode_element(True)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            encode_element(3.14)

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            encode_element(None)

    def test_list_rejected(self):
        with pytest.raises(TypeError):
            encode_element([1, 2])

    def test_bad_tuple_member_rejected(self):
        with pytest.raises(TypeError):
            encode_element((1, 2.5))

    def test_bytearray_accepted(self):
        assert encode_element(bytearray(b"xy")) == encode_element(b"xy")
