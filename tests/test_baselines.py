"""Tests for the baseline samplers: reservoir, weighted reservoir, DRS,
and single-stream priority window sampling."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.baselines import (
    DistributedRandomSampler,
    PriorityWindowSampler,
    ReservoirSampler,
    WeightedReservoirSampler,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.hashing import UnitHasher
from repro.netsim import COORDINATOR, Message, MessageKind


class TestReservoir:
    def test_fill_phase(self):
        sampler = ReservoirSampler(5, np.random.default_rng(0))
        sampler.extend(range(3))
        assert sorted(sampler.sample()) == [0, 1, 2]

    def test_fixed_size(self):
        sampler = ReservoirSampler(5, np.random.default_rng(0))
        sampler.extend(range(100))
        assert len(sampler.sample()) == 5
        assert sampler.count == 100

    def test_uniform_over_occurrences(self):
        # Chi-square over many trials: each position equally likely.
        n, s, trials = 20, 1, 4000
        counts = Counter()
        rng = np.random.default_rng(1)
        for _ in range(trials):
            sampler = ReservoirSampler(s, rng)
            sampler.extend(range(n))
            counts[sampler.sample()[0]] += 1
        expected = trials / n
        chi2 = sum((counts[i] - expected) ** 2 / expected for i in range(n))
        assert chi2 < 45  # 19 dof, p ~ 0.001

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(0, np.random.default_rng(0))


class TestWeightedReservoir:
    def test_respects_weights(self):
        # An element with 20x weight should appear ~20x as often.
        trials = 3000
        heavy = 0
        rng = np.random.default_rng(2)
        for _ in range(trials):
            sampler = WeightedReservoirSampler(1, rng)
            sampler.observe("heavy", weight=20.0)
            sampler.observe("light", weight=1.0)
            heavy += sampler.sample()[0] == "heavy"
        share = heavy / trials
        assert 0.90 < share < 0.98, share  # expected 20/21 ≈ 0.952

    def test_fixed_size(self):
        rng = np.random.default_rng(3)
        sampler = WeightedReservoirSampler(4, rng)
        for element in range(50):
            sampler.observe(element, weight=1.0 + element % 3)
        assert len(sampler.sample()) == 4

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            WeightedReservoirSampler(0, rng)
        sampler = WeightedReservoirSampler(2, rng)
        with pytest.raises(ConfigurationError):
            sampler.observe("x", weight=0.0)


class TestDRS:
    def test_sample_size(self):
        drs = DistributedRandomSampler(num_sites=3, sample_size=5, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(500):
            drs.observe(int(rng.integers(0, 3)), int(rng.integers(0, 50)))
        assert len(drs.sample()) == 5

    def test_frequency_sensitive(self):
        # "hot" appears 50x as often as each cold element: it should be
        # sampled far more often than 1/universe.
        trials = 400
        hot_hits = 0
        for seed in range(trials):
            drs = DistributedRandomSampler(num_sites=2, sample_size=1, seed=seed)
            rng = np.random.default_rng(seed)
            stream = ["hot"] * 50 + list(range(50))
            rng.shuffle(stream)
            for element in stream:
                drs.observe(int(rng.integers(0, 2)), element)
            hot_hits += drs.sample()[0] == "hot"
        share = hot_hits / trials
        assert 0.35 < share < 0.65, share  # expected 0.5

    def test_message_accounting(self):
        drs = DistributedRandomSampler(num_sites=2, sample_size=3, seed=2)
        for element in range(200):
            drs.observe(element % 2, element)
        stats = drs.network.stats
        assert stats.total_messages == 2 * stats.site_to_coordinator
        assert stats.by_kind[MessageKind.DRS_REPORT] == stats.site_to_coordinator

    def test_cheaper_than_dds_on_duplicate_heavy_stream(self):
        # The intro's qualitative claim: when n >> d, DRS sends fewer
        # messages than DDS does *per occurrence* is not the point — the
        # point is DDS's probability decays in d while DRS's decays in n.
        # With all-duplicates input, both settle; sanity check DRS runs.
        drs = DistributedRandomSampler(num_sites=2, sample_size=2, seed=3)
        for _ in range(1000):
            drs.observe(0, "same")
        assert len(drs.sample()) == 2
        assert drs.sample() == ["same", "same"]

    def test_validation_and_errors(self):
        with pytest.raises(ConfigurationError):
            DistributedRandomSampler(num_sites=0, sample_size=1)
        with pytest.raises(ConfigurationError):
            DistributedRandomSampler(num_sites=1, sample_size=0)
        drs = DistributedRandomSampler(num_sites=1, sample_size=1, seed=4)
        bad = Message(0, COORDINATOR, MessageKind.REPORT, None)
        with pytest.raises(ProtocolError):
            drs.coordinator.handle_message(bad, drs.network)
        bad_site = Message(COORDINATOR, 0, MessageKind.THRESHOLD, 0.5)
        with pytest.raises(ProtocolError):
            drs.sites[0].handle_message(bad_site, drs.network)


class TestPriorityWindow:
    def test_matches_brute_force(self):
        hasher = UnitHasher(9)
        sampler = PriorityWindowSampler(window=10, sample_size=2, hasher=hasher)
        rng = np.random.default_rng(5)
        last_seen: dict[int, int] = {}
        for slot in range(1, 300):
            for _ in range(int(rng.integers(0, 3))):
                element = int(rng.integers(0, 40))
                sampler.observe(element, slot)
                last_seen[element] = slot
            sampler.advance(slot)
            live = [e for e, seen in last_seen.items() if seen > slot - 10]
            want = sorted(live, key=hasher.unit)[:2]
            assert sampler.sample() == want

    def test_memory_small(self):
        hasher = UnitHasher(10)
        sampler = PriorityWindowSampler(window=1000, sample_size=1, hasher=hasher)
        for slot in range(1, 1000):
            sampler.observe(slot * 7919, slot)
        assert sampler.memory_size < 40  # ~H_1000 ≈ 7.5 expected

    def test_min_entry(self):
        hasher = UnitHasher(11)
        sampler = PriorityWindowSampler(window=5, sample_size=1, hasher=hasher)
        assert sampler.min_entry() is None
        sampler.observe("a", 1)
        assert sampler.min_entry().element == "a"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PriorityWindowSampler(window=0, sample_size=1, hasher=UnitHasher(0))
