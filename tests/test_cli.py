"""Tests for the command-line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out


class TestRun:
    def test_run_table(self, capsys):
        code = main(
            ["run", "table5_1", "--scale", "tiny", "--runs", "1", "--datasets", "oc48"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table5_1" in out
        assert "4,000" in out

    def test_run_with_csv(self, capsys, tmp_path):
        csv_dir = tmp_path / "csv"
        code = main(
            [
                "run",
                "table5_1",
                "--scale",
                "tiny",
                "--runs",
                "1",
                "--datasets",
                "oc48",
                "--csv",
                str(csv_dir),
            ]
        )
        assert code == 0
        files = list(csv_dir.glob("*.csv"))
        assert len(files) == 1
        assert "elements" in files[0].read_text()

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig_nope", "--scale", "tiny"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_seed_changes_nothing_for_table(self, capsys):
        # Table 5.1 counts are seed-independent (calibrated generators).
        main(["run", "table5_1", "--scale", "tiny", "--seed", "1", "--datasets", "oc48"])
        first = capsys.readouterr().out
        main(["run", "table5_1", "--scale", "tiny", "--seed", "2", "--datasets", "oc48"])
        second = capsys.readouterr().out
        get_counts = lambda s: [
            line for line in s.splitlines() if "oc48" in line
        ]
        assert get_counts(first) == get_counts(second)


class TestDatasets:
    def test_lists_profiles(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "oc48:paper" in out
        assert "42,268,510" in out
        assert "enron:tiny" in out


class TestVariants:
    def test_lists_sharded_wrappers_with_routing(self, capsys):
        from repro import sampler_variants

        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        for name in sampler_variants():
            assert name in out
        assert "sharded:infinite" in out
        assert "hash-partition" in out
        assert "explicit-site" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(
            ["demo", "--dataset", "oc48", "--scale", "tiny", "--sample-size", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distinct-count estimate" in out
        assert "messages" in out

    def test_demo_sharded(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "oc48",
                "--scale",
                "tiny",
                "--sample-size",
                "8",
                "--shards",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "variant=sharded:infinite" in out
        assert "3 coordinator groups" in out
        assert "critical-path" in out

    def test_demo_sharded_parallel_workers(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "oc48",
                "--scale",
                "tiny",
                "--sample-size",
                "8",
                "--shards",
                "2",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "variant=sharded:infinite" in out
        assert "process executor" in out
        assert "measured over 2 worker processes" in out

    def test_demo_workers_alone_wrap_into_sharded(self, capsys):
        # --workers without --shards still runs the sharded wrapper
        # (shards=1) so the process backend has groups to fan out.
        code = main(
            [
                "demo",
                "--dataset",
                "oc48",
                "--scale",
                "tiny",
                "--sample-size",
                "4",
                "--workers",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "variant=sharded:infinite" in out
        assert "1 coordinator groups" in out

    def test_demo_sharded_sliding(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "oc48",
                "--scale",
                "tiny",
                "--variant",
                "sliding",
                "--window",
                "16",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        assert "variant=sharded:sliding" in capsys.readouterr().out

    def test_demo_unknown_dataset(self, capsys):
        assert main(["demo", "--dataset", "oc768", "--scale", "tiny"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestBounds:
    def test_bounds_output(self, capsys):
        assert main(["bounds", "--k", "5", "--s", "10", "--d", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 4" in out and "Lemma 9" in out
        assert "4.000" in out  # the optimality gap

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
