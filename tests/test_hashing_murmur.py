"""Tests for the from-scratch MurmurHash implementations.

Reference vectors were generated from the canonical C++ implementations
(Austin Appleby's MurmurHash2.cpp / MurmurHash3.cpp); the smoke values
below pin the implementation so refactors cannot silently change hashes
(which would invalidate every recorded experiment).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.murmur import (
    fmix64,
    fmix64_array,
    murmur2_32,
    murmur2_64a,
    murmur3_32,
    murmur3_128_x64,
)


class TestReferenceVectors:
    """Pin known-good outputs of each hash function."""

    # Canonical test: murmur3_32("", 0) == 0 and well-known seeds.
    def test_murmur3_32_empty(self):
        assert murmur3_32(b"", 0) == 0

    def test_murmur3_32_empty_seed1(self):
        # Verified against the reference implementation.
        assert murmur3_32(b"", 1) == 0x514E28B7

    def test_murmur3_32_hello(self):
        # "hello" with seed 0 — widely published vector.
        assert murmur3_32(b"hello", 0) == 0x248BFA47

    def test_murmur3_32_quick_fox(self):
        data = b"The quick brown fox jumps over the lazy dog"
        assert murmur3_32(data, 0) == 0x2E4FF723

    def test_fmix64_zero(self):
        assert fmix64(0) == 0

    def test_fmix64_known(self):
        # fmix64(1) from the reference finalizer.
        assert fmix64(1) == 0xB456BCFC34C2CB2C

    def test_murmur2_32_stability(self):
        # Self-recorded vectors (stability pins, not external references).
        assert murmur2_32(b"", 0) == 0
        assert murmur2_32(b"hello", 0) == murmur2_32(b"hello", 0)

    def test_murmur2_64a_distinct_seeds(self):
        assert murmur2_64a(b"hello", 0) != murmur2_64a(b"hello", 1)


class TestShapes:
    """Output ranges and structural behaviour."""

    @pytest.mark.parametrize("n", range(0, 17))
    def test_murmur3_32_all_tail_lengths(self, n):
        out = murmur3_32(bytes(range(n)), 7)
        assert 0 <= out <= 0xFFFFFFFF

    @pytest.mark.parametrize("n", range(0, 25))
    def test_murmur2_64a_all_tail_lengths(self, n):
        out = murmur2_64a(bytes(range(n)), 7)
        assert 0 <= out <= 0xFFFFFFFFFFFFFFFF

    @pytest.mark.parametrize("n", range(0, 33))
    def test_murmur3_128_all_tail_lengths(self, n):
        h1, h2 = murmur3_128_x64(bytes(range(n)), 7)
        assert 0 <= h1 <= 0xFFFFFFFFFFFFFFFF
        assert 0 <= h2 <= 0xFFFFFFFFFFFFFFFF

    def test_murmur2_32_range(self):
        assert 0 <= murmur2_32(b"abcdef", 3) <= 0xFFFFFFFF

    def test_length_sensitivity(self):
        # Same prefix, different length => different hash.
        assert murmur3_32(b"aaaa", 0) != murmur3_32(b"aaaaa", 0)
        assert murmur2_64a(b"aaaa", 0) != murmur2_64a(b"aaaaa", 0)


class TestProperties:
    """Hypothesis-driven properties."""

    @given(st.binary(max_size=64), st.integers(0, 2**32 - 1))
    @settings(max_examples=200)
    def test_murmur3_32_deterministic(self, data, seed):
        assert murmur3_32(data, seed) == murmur3_32(data, seed)

    @given(st.binary(max_size=64), st.integers(0, 2**64 - 1))
    @settings(max_examples=200)
    def test_murmur2_64a_deterministic(self, data, seed):
        assert murmur2_64a(data, seed) == murmur2_64a(data, seed)

    @given(st.binary(max_size=64))
    def test_murmur3_128_halves_differ(self, data):
        h1, h2 = murmur3_128_x64(data, 0)
        # The two lanes agree only with negligible probability; allow the
        # empty-input degenerate case.
        if len(data) > 0:
            assert h1 != h2 or h1 == 0

    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=300)
    def test_fmix64_bijective_locally(self, x):
        # Bijection implies distinct neighbours map to distinct outputs.
        if x > 0:
            assert fmix64(x) != fmix64(x - 1)

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=100))
    def test_fmix64_array_matches_scalar(self, keys):
        arr = fmix64_array(np.array(keys, dtype=np.uint64))
        for key, got in zip(keys, arr.tolist()):
            assert got == fmix64(key)


class TestAvalanche:
    """Bit-flip diffusion: flipping one input bit changes ~half the output."""

    def test_fmix64_avalanche(self):
        rng = np.random.default_rng(1)
        total = 0.0
        trials = 200
        for _ in range(trials):
            x = int(rng.integers(0, 2**63))
            bit = int(rng.integers(0, 64))
            diff = fmix64(x) ^ fmix64(x ^ (1 << bit))
            total += bin(diff).count("1")
        mean_flips = total / trials
        assert 24 <= mean_flips <= 40, f"poor avalanche: {mean_flips}"

    def test_murmur3_32_avalanche(self):
        rng = np.random.default_rng(2)
        total = 0.0
        trials = 200
        for _ in range(trials):
            data = bytearray(rng.integers(0, 256, 12, dtype=np.uint8).tobytes())
            base = murmur3_32(bytes(data), 0)
            i = int(rng.integers(0, len(data)))
            bit = int(rng.integers(0, 8))
            data[i] ^= 1 << bit
            total += bin(base ^ murmur3_32(bytes(data), 0)).count("1")
        mean_flips = total / trials
        assert 12 <= mean_flips <= 20, f"poor avalanche: {mean_flips}"
