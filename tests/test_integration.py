"""End-to-end integration tests spanning multiple subsystems.

Each scenario wires real stream generators, distributors, protocol
systems, estimators, and analysis formulas together the way a downstream
user would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BroadcastSamplerSystem,
    CachingSamplerSystem,
    DistinctSamplerSystem,
    SlidingWindowBottomS,
    SlidingWindowSystem,
    restore,
    snapshot,
)
from repro.analysis import upper_bound_observation1
from repro.estimators import (
    estimate_fraction,
    estimate_from_sampler,
    estimate_quantile,
)
from repro.hashing import UnitHasher, unit_hash_array
from repro.streams import (
    SlottedArrivals,
    get_dataset,
    make_distributor,
)


class TestFullPipelineInfinite:
    """Dataset -> distributor -> protocol -> estimators -> bounds."""

    def test_oc48_pipeline(self):
        spec = get_dataset("oc48", "tiny")
        rng = np.random.default_rng(1)
        ids = spec.generate(rng)
        hashes = unit_hash_array(ids, 77)
        sites = make_distributor("random", 4).assignments(len(ids), rng)

        system = DistinctSamplerSystem(4, 32, seed=77, algorithm="mix64")
        system.process_batch(sites, ids.tolist(), hashes)

        # Sample is exactly the bottom-32 of the distinct set.
        hasher = UnitHasher(77, "mix64")
        want = sorted(set(ids.tolist()), key=hasher.unit)[:32]
        assert system.sample() == want

        # Estimator lands near the calibrated distinct count.
        estimate = estimate_from_sampler(system)
        assert abs(estimate.estimate - spec.n_distinct) / spec.n_distinct < 0.6

        # Message cost below the first-occurrence bound plus repeat slack.
        per_site = [
            len(set(ids[sites == i].tolist())) for i in range(4)
        ]
        bound = upper_bound_observation1(4, 32, per_site)
        assert system.total_messages < bound * 3

    def test_three_systems_same_sample(self):
        # Plain, broadcast, and caching systems agree on the sample for
        # identical streams and hash functions.
        hasher = UnitHasher(88)
        plain = DistinctSamplerSystem(3, 6, hasher=hasher)
        eager = BroadcastSamplerSystem(3, 6, hasher=hasher)
        cached = CachingSamplerSystem(3, 6, cache_size=8, hasher=hasher)
        rng = np.random.default_rng(2)
        for _ in range(2500):
            element = int(rng.integers(0, 300))
            site = int(rng.integers(0, 3))
            plain.observe(site, element)
            eager.observe(site, element)
            cached.observe(site, element)
        assert plain.sample() == eager.sample() == cached.sample()
        # Caching never costs more than the plain protocol.  (Broadcast's
        # ordering vs plain is k-dependent — it loses only at large k,
        # covered by test_broadcast.py at k=40.)
        assert cached.total_messages <= plain.total_messages

    def test_crash_recovery_mid_stream(self):
        spec = get_dataset("enron", "tiny")
        rng = np.random.default_rng(3)
        ids = spec.generate(rng).tolist()
        half = len(ids) // 2

        uninterrupted = DistinctSamplerSystem(2, 10, seed=5)
        for i, element in enumerate(ids):
            uninterrupted.observe(i % 2, element)

        crashed = DistinctSamplerSystem(2, 10, seed=5)
        for i, element in enumerate(ids[:half]):
            crashed.observe(i % 2, element)
        revived = restore(snapshot(crashed))
        for i, element in enumerate(ids[half:], start=half):
            revived.observe(i % 2, element)

        assert revived.sample() == uninterrupted.sample()


class TestFullPipelineSliding:
    def test_enron_window_pipeline(self):
        spec = get_dataset("enron", "tiny")
        rng = np.random.default_rng(4)
        ids = spec.generate(rng).tolist()
        schedule = SlottedArrivals(ids, 3, 5, rng)

        hasher = UnitHasher(9)
        system = SlidingWindowSystem(num_sites=3, window=60, hasher=hasher)
        bottom = SlidingWindowBottomS(
            num_sites=3, window=60, sample_size=4, hasher=hasher
        )
        last_seen: dict[int, int] = {}
        final_slot = 0
        for slot, arrivals in schedule.slots():
            system.advance(slot)
            system.observe_batch(arrivals)
            bottom.advance(slot)
            bottom.observe_batch(arrivals)
            for _site, element in arrivals:
                last_seen[element] = slot
            final_slot = slot

        live = [e for e, seen in last_seen.items() if seen > final_slot - 60]
        want = sorted(live, key=hasher.unit)
        assert system.sample().first == want[0]
        assert bottom.sample() == want[:4]
        # Memory stays tiny relative to the window.
        assert max(system.per_site_memory()) < 60

    def test_quantiles_over_window_sample(self):
        # Query-time analytics over the bottom-s window sample.
        rng = np.random.default_rng(5)
        system = SlidingWindowBottomS(
            num_sites=2, window=50, sample_size=32, seed=6
        )
        for slot in range(1, 200):
            arrivals = [
                (int(rng.integers(0, 2)), int(rng.integers(0, 1000)))
                for _ in range(4)
            ]
            system.advance(slot)
            system.observe_batch(arrivals)
        sample = system.sample().items
        assert len(sample) == 32
        median = estimate_quantile(sample, 0.5, value_fn=float)
        assert 100 < median.value < 900  # uniform ids: median near 500
        frac = estimate_fraction(sample, lambda e: e < 500)
        assert 0.2 < frac.value < 0.8


class TestScaleInvariants:
    def test_message_growth_is_logarithmic_in_distinct(self):
        # Quadrupling d adds ~constant messages (harmonic growth), on
        # all-distinct streams.
        def run(d):
            system = DistinctSamplerSystem(3, 8, seed=10, algorithm="mix64")
            ids = np.arange(d)
            hashes = unit_hash_array(ids, 10)
            rng = np.random.default_rng(0)
            sites = rng.integers(0, 3, d)
            system.process_batch(sites, ids.tolist(), hashes)
            return system.total_messages

        m1, m4, m16 = run(1000), run(4000), run(16_000)
        growth_low = m4 - m1
        growth_high = m16 - m4
        assert growth_high < growth_low * 2.5
        assert m16 < m1 * 3

    def test_threshold_tracks_s_over_d(self):
        system = DistinctSamplerSystem(2, 50, seed=11, algorithm="mix64")
        d = 20_000
        ids = np.arange(d)
        hashes = unit_hash_array(ids, 11)
        rng = np.random.default_rng(1)
        sites = rng.integers(0, 2, d)
        system.process_batch(sites, ids.tolist(), hashes)
        assert system.threshold == pytest.approx(50 / d, rel=0.5)
