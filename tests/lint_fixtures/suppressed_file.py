"""Suppression fixture: file-level disable silences the whole module."""
# repro-lint: disable-file=RPR005

import time


def clocked(a, b):
    return time.time() if a else time.time_ns() + b
