"""RPR006 fixture: pool workers mutating parent-owned state."""

from multiprocessing import Pool

COUNTER = {"ingested": 0}


def bad_worker(group):
    group.slot = 99  # line 9: writes through a parameter
    COUNTER["ingested"] += 1  # line 10: mutates a module global
    global COUNTER_TOTAL  # line 11: global declaration
    COUNTER_TOTAL = 1
    return group


def good_worker(payload):
    # Rebuild locally, mutate locals, return the result — must NOT fire.
    state = dict(payload)
    state["replayed"] = True
    return state


def fan_out(groups):
    with Pool(2) as pool:
        bad = pool.map(bad_worker, groups)
        good = pool.map(good_worker, groups)
    return bad, good
