"""A module every rule should pass untouched."""

import random


class TidySampler:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.slot = 0

    def observe_columns(self, batch):
        return len(batch)

    def state_dict(self):
        return {"slot": self.slot}

    def load_state(self, state):
        self.slot = state["slot"]
