"""RPR007 fixture: SharedMemory creation with/without error-path unlink."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leaky_create(nbytes):
    block = shared_memory.SharedMemory(create=True, size=nbytes)  # line 8
    block.buf[: len(b"x")] = b"x"
    block.unlink()  # straight-line unlink: skipped by any raise above
    block.close()


def guarded_create(nbytes):
    # The _create_block pattern — must NOT fire.
    block = SharedMemory(create=True, size=nbytes)
    try:
        block.buf[: len(b"x")] = b"x"
    except BaseException:
        block.unlink()
        block.close()
        raise
    return block


def finally_create(nbytes):
    # unlink in a finally covers every path — must NOT fire.
    block = SharedMemory(create=True, size=nbytes)
    try:
        return bytes(block.buf[:nbytes])
    finally:
        block.unlink()
        block.close()


def attach_only(name):
    # Attaching does not own the segment — must NOT fire.
    block = SharedMemory(name=name)
    value = bytes(block.buf[:1])
    block.close()
    return value


def nested_unlink_does_not_protect(nbytes):
    block = SharedMemory(create=True, size=nbytes)  # line 45

    def cleanup():
        try:
            pass
        finally:
            block.unlink()  # never runs unless someone calls cleanup()

    return block, cleanup


MODULE_BLOCK = SharedMemory(create=True, size=16)  # line 56: no frame
