"""Fixture hierarchy: one wired facade, one orphan, exempt helpers."""

from abc import abstractmethod


class Sampler:
    """The protocol root."""


class CoveredSampler(Sampler):
    """Registered and conformance-covered — must NOT fire."""


class OrphanSampler(Sampler):
    """Concrete, but neither registered nor conformance-covered."""


class _HelperSampler(Sampler):
    """Underscore prefix marks a helper — exempt."""


class SamplerFacadeBase(Sampler):
    """`Base` suffix marks a shared base — exempt."""


class AbstractSampler(Sampler):
    """Declares abstract members — exempt."""

    @abstractmethod
    def sample(self):
        raise NotImplementedError
