"""Fixture registry wiring: only CoveredSampler is reachable."""

from samplers import CoveredSampler

_VARIANTS = {}


def register_variant(name, cls):
    _VARIANTS[name] = cls


register_variant("covered", CoveredSampler)
