"""Fixture conformance suite: names CoveredSampler, not OrphanSampler."""

from samplers import CoveredSampler

COVERED = {CoveredSampler}
