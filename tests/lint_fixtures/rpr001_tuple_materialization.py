"""RPR001 fixture: tuple materialization inside columnar fast paths."""

from repro.core.events import EventBatch


class BadColumnarSampler:
    def observe_columns(self, batch):
        events = batch.to_events()  # line 8: .to_events() in a fast path
        return len(events)

    def _deliver_columns(self, run):
        sites, items = zip(*run)  # line 12: zip(*...) transpose
        return sites, items

    def ingest_columns(self, batch):
        rebuilt = EventBatch.from_events(batch.to_events())  # line 16: both
        return rebuilt

    def observe_batch(self, events):
        # Tuple paths may transpose freely; this must NOT fire.
        sites, items = zip(*events)
        return sites, items
