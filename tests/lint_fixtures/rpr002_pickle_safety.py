"""RPR002 fixture: unpicklable resources and shipped caches."""

import threading
from multiprocessing.pool import Pool


class LeakyExecutor:
    """Binds a lock and a pool with no pickle-protocol override."""

    def __init__(self, workers):
        self._lock = threading.Lock()  # line 11: unpicklable, no override
        self._pool = Pool(processes=workers)  # line 12: unpicklable
        self.workers = workers


class SafeExecutor:
    """Same resources, but opts out of shipping them — must NOT fire."""

    def __init__(self, workers):
        self._lock = threading.Lock()
        self.workers = workers

    def __getstate__(self):
        return {"workers": self.workers}

    def __setstate__(self, state):
        self.workers = state["workers"]
        self._lock = threading.Lock()


class CacheShipper:
    """A __getstate__ that ships derived caches across the boundary."""

    def __init__(self, items):
        self.items = tuple(items)
        self._hash_columns = None
        self._items_list = None

    def __getstate__(self):
        return {
            "items": self.items,
            "hash_columns": self._hash_columns,  # line 40: derived cache
            "views": self._items_list,  # line 41: derived cache
        }

    def __setstate__(self, state):
        self.items = state["items"]
        self._hash_columns = state["hash_columns"]
        self._items_list = state["views"]


class ShmHolder:
    """Binds a shared-memory handle with no override."""

    def __init__(self, size):
        from multiprocessing.shared_memory import SharedMemory

        self._block = SharedMemory(create=True, size=size)  # unpicklable


class SafeShmHolder:
    """Same handle, but never shipped — must NOT fire."""

    def __init__(self, size):
        from multiprocessing.shared_memory import SharedMemory

        self._block = SharedMemory(create=True, size=size)
        self.size = size

    def __getstate__(self):
        return {"size": self.size}
