"""RPR008 fixture: Python sorts inside and outside query fast paths."""

import numpy as np


class BadMergingSampler:
    def sample(self):
        pairs = [(0.5, "a"), (0.25, "b")]
        pairs.sort(key=lambda pair: pair[0])  # line 9: .sort() in sample
        return pairs

    def sample_columns(self):
        pairs = sorted(self._pairs)  # line 13: sorted() in sample_columns
        hashes, items = zip(*pairs)
        return np.asarray(hashes), list(items)

    def _merge_groups(self):
        union = []
        for group in self.groups:
            union.extend(group.pairs())
        return sorted(union, key=lambda pair: pair[0])  # line 21


class GoodMergingSampler:
    def sample(self):
        # Vectorized selection over the hash column — must NOT fire.
        hashes = np.asarray(self._hashes)
        order = np.argsort(hashes, kind="stable")
        top = np.sort(hashes)  # np module-level sort — must NOT fire
        return hashes[order], top

    def rebuild_index(self):
        # Sorting outside the query fast path — must NOT fire.
        self._entries.sort()
        return sorted(self._entries)
