"""RPR005 fixture: wall clocks, global RNGs, and set-order iteration."""

import random
import time

import numpy as np
from numpy.random import default_rng


def decide_eviction(items):
    stamp = time.time()  # line 11: wall-clock read
    pick = random.choice(items)  # line 12: global RNG
    np.random.shuffle(items)  # line 13: legacy numpy global RNG
    rng = default_rng()  # line 14: unseeded generator
    return stamp, pick, rng


def order_dependent(keys):
    ordered = list({k for k in keys})  # line 19: list(set comprehension)
    for key in {1, 2, 3}:  # line 20: set-literal iteration
        ordered.append(key)
    return ordered


def deterministic_ok(seed, keys):
    # Seeded instances and sorted sets — must NOT fire.
    rng = random.Random(seed)
    gen = default_rng(seed)
    started = time.perf_counter()
    ordered = sorted(set(keys))
    return rng, gen, started, ordered
