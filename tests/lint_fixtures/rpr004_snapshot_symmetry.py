"""RPR004 fixture: asymmetric state writer/reader pairs."""


class DriftingSampler:
    """Writes a key the loader drops, reads a key the writer never emits."""

    def __init__(self):
        self.slot = 0
        self.items = []
        self.seed = 0

    def _state(self):
        return {
            "slot": self.slot,
            "items": list(self.items),
            "orphan": self.seed,  # line 15: written, never consumed
        }

    def _load(self, state):
        self.slot = state["slot"]
        self.items = list(state["items"])
        self.seed = state.get("phantom", 0)  # line 21: consumed, never written


class SymmetricSampler:
    """Matched keys — must NOT fire."""

    def __init__(self):
        self.slot = 0
        self.items = []

    def state_dict(self):
        return {"slot": self.slot, "items": list(self.items)}

    def load_state(self, state):
        self.slot = state["slot"]
        self.items = list(state["items"])
