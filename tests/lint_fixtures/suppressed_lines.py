"""Suppression fixture: same-line, previous-line, and wildcard forms."""

import random
import time


def measured_decisions(items):
    stamp = time.time()  # repro-lint: disable=RPR005
    # repro-lint: disable=RPR005
    pick = random.choice(items)
    extra = random.random()  # repro-lint: disable=all
    total = stamp + extra
    loud = time.time()  # line 13: this one stays unsuppressed
    return total, pick, loud
