"""Sharded scale-out correctness: S hash-partitioned coordinator groups
must reproduce, after the query-time merge, exactly the sample the
single-coordinator system defines — and each group must agree with a
centralized oracle restricted to that group's key space."""

from __future__ import annotations

import copy
import gc
import json
import time

import numpy as np
import pytest

from repro import (
    CentralizedDistinctSampler,
    CentralizedWindowSampler,
    EventBatch,
    ProcessExecutor,
    SamplerConfig,
    SerialExecutor,
    ShardedSampler,
    SharedMemoryExecutor,
    ThreadExecutor,
    UnitHasher,
    make_sampler,
    restore,
    snapshot,
)
from repro.core.api import register_sharded_variant
from repro.errors import ConfigurationError

SEED = 20150525


def uniform_events(n: int, sites: int, universe: int, seed: int = SEED) -> list:
    rng = np.random.default_rng(seed)
    site_ids = rng.integers(0, sites, n).tolist()
    items = rng.integers(0, universe, n).tolist()
    return list(zip(site_ids, items))


def slotted_schedule(n_slots: int, per_slot: int, sites: int, universe: int):
    rng = np.random.default_rng(SEED + 1)
    for slot in range(1, n_slots + 1):
        arrivals = [
            (int(rng.integers(0, sites)), int(rng.integers(0, universe)))
            for _ in range(per_slot)
        ]
        yield slot, arrivals


class TestInfiniteOracleMerge:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "variant", ["sharded:infinite", "sharded:broadcast", "sharded:caching"]
    )
    def test_merge_equals_unrestricted_oracle(self, variant, shards):
        sampler = make_sampler(
            variant, num_sites=4, sample_size=8, shards=shards, seed=SEED
        )
        oracle = CentralizedDistinctSampler(8, UnitHasher(SEED, "murmur2"))
        for site, item in uniform_events(3000, sites=4, universe=400):
            sampler.observe(site, item)
            oracle.observe(item)
        result = sampler.sample()
        assert list(result.items) == oracle.sample()
        assert list(result.pairs) == oracle.sample_pairs()
        assert result.threshold == oracle.threshold

    def test_each_group_matches_its_restricted_oracle(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=4, sample_size=6, shards=3, seed=SEED
        )
        assert isinstance(sampler, ShardedSampler)
        restricted = [
            CentralizedDistinctSampler(6, UnitHasher(SEED, "murmur2"))
            for _ in range(3)
        ]
        for site, item in uniform_events(3000, sites=4, universe=300):
            sampler.observe(site, item)
            restricted[sampler.shard_of(item)].observe(item)
        for group, oracle in zip(sampler.groups, restricted):
            assert list(group.sample().items) == oracle.sample()

    def test_key_spaces_are_disjoint_and_cover(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=2, sample_size=4, shards=4, seed=SEED
        )
        owners = {key: sampler.shard_of(key) for key in range(1000)}
        assert set(owners.values()) == {0, 1, 2, 3}
        # Stickiness: re-asking never moves a key.
        assert all(sampler.shard_of(key) == owner for key, owner in owners.items())


class TestSlidingOracleMerge:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_feedback_bottom_s_tracks_window_oracle(self, shards):
        sampler = make_sampler(
            "sharded:sliding-feedback",
            num_sites=3,
            window=15,
            sample_size=4,
            shards=shards,
            seed=SEED,
        )
        oracle = CentralizedWindowSampler(15, 4, UnitHasher(SEED, "murmur2"))
        for slot, arrivals in slotted_schedule(120, 6, sites=3, universe=90):
            sampler.advance(slot)
            oracle.advance(slot)
            for site, item in arrivals:
                sampler.observe(site, item)
                oracle.observe(item, slot)
            assert list(sampler.sample().items) == oracle.sample(), slot

    @pytest.mark.parametrize(
        "variant", ["sharded:sliding", "sharded:sliding-local-push"]
    )
    def test_s1_variants_track_window_minimum(self, variant):
        sampler = make_sampler(
            variant, num_sites=3, window=12, shards=2, seed=SEED
        )
        oracle = CentralizedWindowSampler(12, 1, UnitHasher(SEED, "murmur2"))
        for slot, arrivals in slotted_schedule(100, 5, sites=3, universe=60):
            sampler.advance(slot)
            oracle.advance(slot)
            for site, item in arrivals:
                sampler.observe(site, item)
                oracle.observe(item, slot)
            assert sampler.sample().first == oracle.min_element(), slot

    def test_sliding_groups_match_restricted_window_oracles(self):
        sampler = make_sampler(
            "sharded:sliding-feedback",
            num_sites=3,
            window=10,
            sample_size=3,
            shards=2,
            seed=SEED,
        )
        restricted = [
            CentralizedWindowSampler(10, 3, UnitHasher(SEED, "murmur2"))
            for _ in range(2)
        ]
        for slot, arrivals in slotted_schedule(80, 5, sites=3, universe=50):
            sampler.advance(slot)
            for oracle in restricted:
                oracle.advance(slot)
            for site, item in arrivals:
                sampler.observe(site, item)
                restricted[sampler.shard_of(item)].observe(item, slot)
        for group, oracle in zip(sampler.groups, restricted):
            assert list(group.sample().items) == oracle.sample()


class TestShardOneDegeneracy:
    def test_shards_1_is_indistinguishable_from_the_base(self):
        sharded = make_sampler(
            "sharded:infinite", num_sites=3, sample_size=5, shards=1, seed=SEED
        )
        base = make_sampler("infinite", num_sites=3, sample_size=5, seed=SEED)
        events = uniform_events(2000, sites=3, universe=250)
        sharded.observe_batch(events)
        base.observe_batch(events)
        assert sharded.sample() == base.sample()
        assert sharded.stats() == base.stats()
        assert sharded.total_messages == base.total_messages


class TestShardedPersistence:
    def test_snapshot_roundtrip_and_continuation(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=3, sample_size=6, shards=3, seed=SEED
        )
        events = uniform_events(1500, sites=3, universe=200)
        sampler.observe_batch(events[:1000])
        revived = restore(json.loads(json.dumps(snapshot(sampler))))
        assert type(revived) is type(sampler)
        assert revived.shards == 3
        assert revived.sample() == sampler.sample()
        assert revived.stats() == sampler.stats()
        sampler.observe_batch(events[1000:])
        revived.observe_batch(events[1000:])
        assert revived.sample() == sampler.sample()
        assert revived.stats() == sampler.stats()

    def test_load_state_rejects_malformed_snapshots(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=2, sample_size=2, shards=2
        )
        with pytest.raises(ConfigurationError, match="malformed"):
            sampler.load_state({"protocol": {}})
        with pytest.raises(ConfigurationError, match="malformed"):
            sampler.load_state(
                {
                    "protocol": {"last_slot": None, "slots_processed": 0},
                    "groups": "nope",
                }
            )

    def test_load_state_is_atomic_on_mid_restore_failure(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=3, sample_size=4, shards=3, seed=SEED
        )
        sampler.observe_batch(uniform_events(800, sites=3, universe=120))
        baseline_sample = sampler.sample()
        baseline_state = copy.deepcopy(sampler.state_dict())
        poisoned = copy.deepcopy(baseline_state)
        # Group 0 loads fine; group 1 blows up mid-loop.  The restore
        # must roll group 0 (and the half-loaded group 1) back.
        poisoned["groups"][1]["system"] = {"sample": "not-a-sample"}
        with pytest.raises(Exception):
            sampler.load_state(poisoned)
        assert sampler.sample() == baseline_sample
        assert sampler.state_dict() == baseline_state
        # Still fully usable after the rejected restore.
        sampler.observe_batch(uniform_events(100, sites=3, universe=120))


class TestElasticResharding:
    """``reshard(S→S')`` and cross-count ``load_state`` must be *exact*:
    every group shares the same sampling hash, so re-routing the retained
    per-group state under a new-count distributor reproduces, through the
    query-time merge, bit for bit what a fresh S'-sharded sampler fed the
    same stream returns (see ``repro.runtime.reshard`` for the argument).
    """

    INFINITE = ["sharded:infinite", "sharded:broadcast", "sharded:caching"]
    WINDOWED = [
        "sharded:sliding",
        "sharded:sliding-feedback",
        "sharded:sliding-local-push",
    ]

    @classmethod
    def _make(cls, variant, shards):
        kwargs = {"num_sites": 3, "shards": shards, "seed": SEED}
        if variant in cls.WINDOWED:
            kwargs["window"] = 12
            if variant == "sharded:sliding-feedback":
                kwargs["sample_size"] = 4
        else:
            kwargs["sample_size"] = 6
        return make_sampler(variant, **kwargs)

    @pytest.mark.parametrize("new_shards", [8, 2])
    @pytest.mark.parametrize("variant", INFINITE + WINDOWED)
    def test_reshard_matches_fresh_twin(self, variant, new_shards):
        windowed = variant in self.WINDOWED
        sampler = self._make(variant, 4)
        twin = self._make(variant, new_shards)
        if windowed:
            schedule = list(slotted_schedule(80, 5, sites=3, universe=70))
            for slot, arrivals in schedule[:40]:
                sampler.advance(slot)
                twin.advance(slot)
                for site, item in arrivals:
                    sampler.observe(site, item)
                    twin.observe(site, item)
        else:
            events = uniform_events(2400, sites=3, universe=300)
            sampler.observe_batch(events[:1200])
            twin.observe_batch(events[:1200])
        assert sampler.reshard(new_shards) is sampler
        assert sampler.shards == new_shards
        assert len(sampler.groups) == new_shards
        assert sampler.sample() == twin.sample()
        if windowed:
            for slot, arrivals in schedule[40:]:
                sampler.advance(slot)
                twin.advance(slot)
                for site, item in arrivals:
                    sampler.observe(site, item)
                    twin.observe(site, item)
                assert sampler.sample() == twin.sample(), slot
        else:
            events_tail = events[1200:]
            sampler.observe_batch(events_tail)
            twin.observe_batch(events_tail)
            assert sampler.sample() == twin.sample()

    @pytest.mark.parametrize("variant", INFINITE)
    def test_reshard_oracle_pinned_infinite(self, variant):
        sampler = self._make(variant, 4)
        oracle = CentralizedDistinctSampler(6, UnitHasher(SEED, "murmur2"))
        events = uniform_events(3000, sites=3, universe=350)
        for site, item in events[:1500]:
            sampler.observe(site, item)
            oracle.observe(item)
        sampler.reshard(3)
        for site, item in events[1500:]:
            sampler.observe(site, item)
            oracle.observe(item)
        result = sampler.sample()
        assert list(result.items) == oracle.sample()
        assert list(result.pairs) == oracle.sample_pairs()
        assert result.threshold == oracle.threshold

    @pytest.mark.parametrize("variant", WINDOWED)
    def test_reshard_oracle_pinned_windowed(self, variant):
        sampler = self._make(variant, 4)
        s = 4 if variant == "sharded:sliding-feedback" else 1
        oracle = CentralizedWindowSampler(12, s, UnitHasher(SEED, "murmur2"))
        for slot, arrivals in slotted_schedule(100, 5, sites=3, universe=80):
            if slot == 50:
                sampler.reshard(5)
            sampler.advance(slot)
            oracle.advance(slot)
            for site, item in arrivals:
                sampler.observe(site, item)
                oracle.observe(item, slot)
            if s == 1:
                assert sampler.sample().first == oracle.min_element(), slot
            else:
                assert list(sampler.sample().items) == oracle.sample(), slot

    def test_reshard_validates_and_noops(self):
        sampler = self._make("sharded:infinite", 2)
        with pytest.raises(ConfigurationError, match="shards"):
            sampler.reshard(0)
        assert sampler.reshard(2) is sampler
        assert sampler.shards == 2

    @pytest.mark.parametrize("new_shards", [8, 2])
    def test_snapshot_restores_into_any_shard_count(self, new_shards):
        donor = self._make("sharded:infinite", 4)
        events = uniform_events(2000, sites=3, universe=250)
        donor.observe_batch(events[:1400])
        target = self._make("sharded:infinite", new_shards)
        target.load_state(donor.state_dict())
        assert target.sample() == donor.sample()
        # Continued ingest after the cross-count restore stays exact
        # against a fresh twin born at the target shard count.
        twin = self._make("sharded:infinite", new_shards)
        twin.observe_batch(events[:1400])
        target.observe_batch(events[1400:])
        twin.observe_batch(events[1400:])
        assert target.sample() == twin.sample()

    def test_windowed_snapshot_restores_into_other_shard_count(self):
        donor = self._make("sharded:sliding-feedback", 3)
        schedule = list(slotted_schedule(60, 5, sites=3, universe=50))
        for slot, arrivals in schedule[:30]:
            donor.advance(slot)
            for site, item in arrivals:
                donor.observe(site, item)
        target = self._make("sharded:sliding-feedback", 2)
        target.load_state(donor.state_dict())
        assert target.sample() == donor.sample()
        twin = self._make("sharded:sliding-feedback", 2)
        for slot, arrivals in schedule[:30]:
            twin.advance(slot)
            for site, item in arrivals:
                twin.observe(site, item)
        for slot, arrivals in schedule[30:]:
            target.advance(slot)
            twin.advance(slot)
            for site, item in arrivals:
                target.observe(site, item)
                twin.observe(site, item)
            assert target.sample() == twin.sample(), slot


class TestShardedConfigSurface:
    def test_config_roundtrips_through_the_front_door(self):
        config = SamplerConfig(
            variant="sharded:sliding-feedback",
            num_sites=4,
            window=9,
            sample_size=3,
            shards=2,
            seed=11,
        )
        sampler = make_sampler(config)
        assert sampler.config == config
        rebuilt = make_sampler(sampler.config)
        assert type(rebuilt) is type(sampler)
        assert rebuilt.shards == 2

    def test_plain_variants_reject_shards(self):
        with pytest.raises(ConfigurationError, match="single-coordinator"):
            make_sampler("infinite", num_sites=2, sample_size=2, shards=2)

    def test_with_replacement_is_not_shardable(self):
        with pytest.raises(ConfigurationError, match="unknown sampler variant"):
            make_sampler(
                "sharded:with-replacement", num_sites=2, sample_size=2, shards=2
            )
        with pytest.raises(ConfigurationError, match="cannot be sharded"):
            register_sharded_variant("with-replacement")

    def test_shards_validation(self):
        with pytest.raises(ConfigurationError, match="shards"):
            SamplerConfig(variant="sharded:infinite", shards=0).validate()

    def test_group_count_must_match_config(self):
        groups = [
            make_sampler("infinite", num_sites=2, sample_size=2)
            for _ in range(2)
        ]
        with pytest.raises(ConfigurationError, match="groups"):
            ShardedSampler(
                groups,
                SamplerConfig(
                    variant="sharded:infinite", num_sites=2, sample_size=2,
                    shards=3,
                ),
            )


def _timed_ingest_sampler(executor: str = "serial", workers: int = 0):
    sampler = make_sampler(
        "sharded:infinite",
        num_sites=4,
        sample_size=8,
        shards=4,
        algorithm="mix64",
        seed=SEED,
        executor=executor,
        workers=workers,
    )
    rng = np.random.default_rng(3)
    events = list(
        zip(
            rng.integers(0, 4, 4000).tolist(),
            rng.integers(0, 1000, 4000).tolist(),
        )
    )
    sampler.observe_batch(events)
    return sampler


class TestShardedCostModel:
    def test_message_totals_aggregate_group_networks(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=3, sample_size=4, shards=3, seed=SEED
        )
        sampler.observe_batch(uniform_events(1200, sites=3, universe=150))
        assert sampler.total_messages == sum(
            group.total_messages for group in sampler.groups
        )
        stats = sampler.stats()
        assert stats.messages_total == sampler.total_messages
        assert stats.num_sites == 3
        # Physical site i runs one shard-local site per group.
        for i in range(3):
            assert stats.per_site_memory[i] == sum(
                group.stats().per_site_memory[i] for group in sampler.groups
            )

    def test_ingest_timing_accumulates_per_group(self):
        # Deterministic timer *semantics* only — strict positivity is a
        # wall-clock property and lives under the speedup marker below,
        # so tier-1 stays deterministic on loaded machines.
        sampler = _timed_ingest_sampler()
        assert all(elapsed >= 0 for elapsed in sampler.group_ingest_seconds)
        assert sampler.critical_path_seconds >= 0
        assert sampler.critical_path_seconds == max(
            sampler.group_ingest_seconds
        )
        assert sampler.ingest_seconds == pytest.approx(
            sum(sampler.group_ingest_seconds)
        )

    @pytest.mark.speedup
    def test_ingest_timers_strictly_positive_on_quiet_machines(self):
        sampler = _timed_ingest_sampler()
        assert all(elapsed > 0 for elapsed in sampler.group_ingest_seconds)


class TestExecutionBackends:
    """The pluggable executor surface: default wiring, process-backend
    equivalence, config validation, lifecycle."""

    def test_serial_is_the_default_backend(self):
        sampler = make_sampler(
            "sharded:infinite", num_sites=2, sample_size=2, shards=2
        )
        assert isinstance(sampler.executor, SerialExecutor)
        assert sampler.config.executor == "serial"

    @pytest.mark.parametrize("executor", ["process", "shm", "thread"])
    @pytest.mark.parametrize(
        "variant,window",
        [
            ("sharded:infinite", 0),
            ("sharded:broadcast", 0),
            ("sharded:caching", 0),
            ("sharded:sliding", 10),
            ("sharded:sliding-feedback", 10),
            ("sharded:sliding-local-push", 10),
        ],
    )
    def test_parallel_backend_is_bit_identical_to_serial(
        self, variant, window, executor
    ):
        def build(executor):
            return make_sampler(
                variant,
                num_sites=3,
                sample_size=3,
                window=window,
                shards=2,
                seed=SEED,
                executor=executor,
                workers=2,
            )

        backend_types = {
            "process": ProcessExecutor,
            "shm": SharedMemoryExecutor,
            "thread": ThreadExecutor,
        }
        serial, parallel = build("serial"), build(executor)
        assert isinstance(parallel.executor, backend_types[executor])
        if window:
            events = [
                (site, item, slot)
                for slot, arrivals in slotted_schedule(
                    30, 4, sites=3, universe=60
                )
                for site, item in arrivals
            ]
        else:
            events = uniform_events(1500, sites=3, universe=200)
        cut = len(events) // 2
        for chunk in (events[:cut], events[cut:]):
            serial.observe_batch(chunk)
            parallel.observe_batch(chunk)
        assert parallel.sample() == serial.sample()
        assert parallel.sample().threshold == serial.sample().threshold
        assert parallel.stats() == serial.stats()
        assert parallel.state_dict() == serial.state_dict()
        parallel.close()

    def test_process_backend_measures_per_group_time(self):
        sampler = _timed_ingest_sampler(executor="process", workers=2)
        # Worker-measured timers carry the same semantics as the serial
        # simulation; strict positivity again belongs to the speedup tier.
        assert all(elapsed >= 0 for elapsed in sampler.group_ingest_seconds)
        assert sampler.critical_path_seconds == max(
            sampler.group_ingest_seconds
        )
        sampler.close()

    def test_executor_config_survives_snapshot_roundtrip(self):
        sampler = make_sampler(
            "sharded:infinite",
            num_sites=2,
            sample_size=4,
            shards=2,
            seed=SEED,
            executor="process",
            workers=2,
        )
        sampler.observe_batch(uniform_events(500, sites=2, universe=80))
        revived = restore(json.loads(json.dumps(snapshot(sampler))))
        assert revived.config.executor == "process"
        assert revived.config.workers == 2
        assert isinstance(revived.executor, ProcessExecutor)
        assert revived.sample() == sampler.sample()
        sampler.close()
        revived.close()

    def test_close_is_idempotent_and_pool_recreates(self):
        sampler = make_sampler(
            "sharded:infinite",
            num_sites=2,
            sample_size=4,
            shards=2,
            seed=SEED,
            executor="process",
            workers=2,
        )
        events = uniform_events(600, sites=2, universe=100)
        sampler.observe_batch(events[:300])
        sampler.close()
        sampler.close()
        # The backend stays usable: the pool is re-created on demand.
        sampler.observe_batch(events[300:])
        serial = make_sampler(
            "sharded:infinite", num_sites=2, sample_size=4, shards=2, seed=SEED
        )
        serial.observe_batch(events)
        assert sampler.sample() == serial.sample()
        sampler.close()

    def test_single_observe_stays_in_process(self):
        # Event-at-a-time delivery never pays a pool round-trip.
        sampler = make_sampler(
            "sharded:infinite",
            num_sites=2,
            sample_size=4,
            shards=2,
            seed=SEED,
            executor="process",
            workers=2,
        )
        for site, item in uniform_events(200, sites=2, universe=50):
            sampler.observe(site, item)
        assert sampler.executor._pool is None
        serial = make_sampler(
            "sharded:infinite", num_sites=2, sample_size=4, shards=2, seed=SEED
        )
        serial.observe_batch(uniform_events(200, sites=2, universe=50))
        assert sampler.sample() == serial.sample()

    def test_non_monotone_slot_raises_before_any_delivery(self):
        from repro.errors import ProtocolError

        sampler = make_sampler(
            "sharded:sliding",
            num_sites=2,
            window=5,
            shards=2,
            seed=SEED,
            executor="process",
            workers=2,
        )
        events = [(0, 1, 3), (1, 2, 2)]  # slot rewinds: plan must refuse
        with pytest.raises(ProtocolError, match="non-decreasing"):
            sampler.observe_batch(events)
        # Nothing shipped, nothing delivered, clock untouched.
        assert sampler.current_slot is None
        assert sampler.sample().items == ()
        sampler.close()

    def test_plain_variants_reject_process_executor(self):
        with pytest.raises(ConfigurationError, match="single-coordinator"):
            make_sampler(
                "infinite", num_sites=2, sample_size=2, executor="process"
            )

    def test_executor_validation(self):
        with pytest.raises(ConfigurationError, match="executor"):
            SamplerConfig(variant="sharded:infinite", executor="nope").validate()
        with pytest.raises(ConfigurationError, match="workers"):
            SamplerConfig(variant="sharded:infinite", workers=-1).validate()
        with pytest.raises(ConfigurationError, match="workers"):
            ProcessExecutor(workers=-2)
        with pytest.raises(ConfigurationError, match="workers"):
            SharedMemoryExecutor(workers=-2)
        with pytest.raises(ConfigurationError, match="workers"):
            ThreadExecutor(workers=-1)
        with pytest.raises(ConfigurationError, match="unknown executor"):
            from repro.runtime import make_executor

            make_executor(
                SamplerConfig(variant="sharded:infinite", executor="nope")
            )


class TestSharedMemoryBackendLifecycle:
    """shm/thread backend lifecycle: context managers, idempotent close
    with respawn-on-demand, in-process single observes, mixed ingest
    paths, and the no-leaked-segments guarantee."""

    @staticmethod
    def _segments():
        import os

        try:
            return {
                name
                for name in os.listdir("/dev/shm")
                if name.startswith("psm_")
            }
        except FileNotFoundError:
            return set()

    def _build(self, executor, workers=2):
        return make_sampler(
            "sharded:infinite",
            num_sites=3,
            sample_size=4,
            shards=3,
            seed=SEED,
            algorithm="mix64",
            executor=executor,
            workers=workers,
        )

    def test_context_manager_closes_the_backend(self):
        with self._build("shm") as sampler:
            sampler.observe_batch(uniform_events(400, sites=3, universe=90))
            sample = sampler.sample()
            assert sampler.executor._workers is not None
        assert sampler.executor._workers is None
        # Queries after close still serve from the parent's state.
        assert sampler.sample() == sample

    def test_close_is_idempotent_and_workers_respawn(self):
        sampler = self._build("shm")
        events = uniform_events(600, sites=3, universe=100)
        sampler.observe_batch(events[:300])
        sampler.close()
        sampler.close()
        # The backend stays usable: workers respawn on demand.
        sampler.observe_batch(events[300:])
        with self._build("serial") as serial:
            serial.observe_batch(events)
            assert sampler.sample() == serial.sample()
        sampler.close()

    def test_single_observe_never_spawns_workers(self):
        sampler = self._build("shm")
        for site, item in uniform_events(200, sites=3, universe=50):
            sampler.observe(site, item)
        assert sampler.executor._workers is None
        with self._build("serial") as serial:
            serial.observe_batch(uniform_events(200, sites=3, universe=50))
            assert sampler.sample() == serial.sample()
        sampler.close()

    @pytest.mark.parametrize("executor", ["shm", "thread"])
    def test_mixed_ingest_paths_match_serial(self, executor):
        events = uniform_events(900, sites=3, universe=150)
        batch = EventBatch.from_events(events[:300])

        def drive(sampler):
            sampler.observe_batch(batch)  # columnar
            _ = sampler.sample()  # mid-stream query forces a sync
            for site, item in events[300:350]:
                sampler.observe(site, item)  # single (in-parent)
            sampler.observe_batch(events[350:600])  # tuple list
            sampler.observe_batch(EventBatch.from_events(events[600:]))

        serial, parallel = self._build("serial"), self._build(executor)
        drive(serial)
        drive(parallel)
        assert parallel.sample() == serial.sample()
        assert parallel.stats() == serial.stats()
        assert parallel.state_dict() == serial.state_dict()
        parallel.close()

    def test_no_segments_leaked_across_the_lifecycle(self):
        before = self._segments()
        sampler = self._build("shm")
        sampler.observe_batch(uniform_events(800, sites=3, universe=120))
        _ = sampler.sample()
        sampler.observe_batch(uniform_events(800, sites=3, universe=120, seed=7))
        sampler.close()
        assert self._segments() - before == set()

    def test_serialization_counters_split_pickle_from_ipc(self):
        sampler = self._build("shm")
        sampler.observe_batch(
            EventBatch.from_events(uniform_events(500, sites=3, universe=90))
        )
        _ = sampler.sample()
        # Columns travel through /dev/shm: zero pickled event payload,
        # nonzero request/reply framing.
        assert sampler.executor.pickle_bytes == 0
        assert sampler.executor.ipc_bytes > 0
        sampler.observe_batch(uniform_events(100, sites=3, universe=90))
        # The tuple fallback is honest: it counts its pickled payloads.
        assert sampler.executor.pickle_bytes > 0
        sampler.close()


def python_sort_merge(sampler: ShardedSampler):
    """The pre-cache reference merge: gather every group's sample pairs
    in group order and Python-sort by hash (stable, so ties keep the
    (group, in-group index) order).  The vectorized cold merge must be
    bit-identical to this."""
    pairs = [
        pair for group in sampler.groups for pair in group.sample().pairs
    ]
    pairs.sort(key=lambda pair: pair[0])  # repro-lint: disable=RPR008
    top = pairs[: sampler.sample_size]
    threshold = top[-1][0] if len(top) == sampler.sample_size else 1.0
    return tuple(top), threshold


class TestQueryPathCache:
    """The incremental query path: merge caching, shared syncs,
    deterministic tie-breaking, bit-identity to the reference merge."""

    def build(self, variant="sharded:infinite", window=0, executor="serial"):
        kwargs = {} if executor == "serial" else {"workers": 2}
        return make_sampler(
            variant,
            num_sites=3,
            sample_size=8,
            window=window,
            shards=3,
            seed=SEED,
            executor=executor,
            **kwargs,
        )

    def test_repeated_queries_share_one_sync(self):
        """Regression: ``threshold`` used to force a full merge *and* an
        executor sync on every access."""
        sampler = self.build()
        sampler.observe_batch(uniform_events(2000, sites=3, universe=300))
        assert sampler.sync_count == 0
        first = sampler.sample()
        assert sampler.sync_count == 1
        for _ in range(50):
            sampler.threshold
            sampler.sample()
            sampler.stats()
            sampler.message_stats()
        # 200 queries later: still the single post-ingest sync.
        assert sampler.sync_count == 1
        assert sampler.query_count == 201
        assert sampler.sample() is first

    def test_mutation_invalidates_the_cache(self):
        sampler = self.build()
        sampler.observe_batch(uniform_events(1000, sites=3, universe=500))
        before = sampler.sample()
        # Find an element that displaces the current maximum hash.
        sampler.observe_batch(
            uniform_events(1000, sites=3, universe=500, seed=SEED + 7)
        )
        after = sampler.sample()
        assert sampler.sync_count == 2
        assert after is not before
        assert after.pairs == python_sort_merge(sampler)[0]

    def test_invalidate_merge_cache_recomputes_identically(self):
        sampler = self.build()
        sampler.observe_batch(uniform_events(1500, sites=3, universe=400))
        cached = sampler.sample()
        sampler.invalidate_merge_cache()
        recomputed = sampler.sample()
        assert recomputed is not cached
        assert recomputed == cached
        # The forced recompute shared the existing sync.
        assert sampler.sync_count == 1

    def test_colliding_hashes_break_ties_by_group_then_index(self):
        """Equal hashes across groups must order by (hash, group,
        in-group index) — the truncation boundary may not reorder them."""
        sampler = self.build()
        tied = 0.25
        # Same hash in every group, two entries in group 0; plus
        # distinct fillers on both sides of the tie.
        stores = [group.coordinator.sample_store for group in sampler.groups]
        stores[0].offer(0.1, "low0")
        stores[0].offer(tied, "g0-first")
        stores[0].offer(tied, "g0-second")
        stores[1].offer(tied, "g1")
        stores[2].offer(tied, "g2")
        stores[2].offer(0.9, "high2")
        result = sampler.sample()
        assert result.pairs == (
            (0.1, "low0"),
            (tied, "g0-first"),
            (tied, "g0-second"),
            (tied, "g1"),
            (tied, "g2"),
            (0.9, "high2"),
        )
        # The same order must survive a truncating merge (size > s):
        # ties straddling the argpartition pivot stay in group order.
        small = make_sampler(
            "sharded:infinite", num_sites=2, sample_size=3, shards=3, seed=SEED
        )
        for shard, store in enumerate(
            group.coordinator.sample_store for group in small.groups
        ):
            store.offer(tied, f"tied-{shard}")
            store.offer(0.5 + shard / 10, f"filler-{shard}")
        assert small.sample().pairs == (
            (tied, "tied-0"),
            (tied, "tied-1"),
            (tied, "tied-2"),
        )

    @pytest.mark.parametrize("executor", ["serial", "thread", "process", "shm"])
    @pytest.mark.parametrize(
        "variant,window",
        [
            ("sharded:infinite", 0),
            ("sharded:broadcast", 0),
            ("sharded:caching", 0),
            ("sharded:sliding", 10),
            ("sharded:sliding-feedback", 10),
            ("sharded:sliding-local-push", 10),
        ],
    )
    def test_vectorized_merge_is_bit_identical_to_reference(
        self, variant, window, executor
    ):
        """Acceptance gate: the cached/vectorized merge reproduces the
        Python-sort reference merge bit-for-bit on every sharded variant
        under every execution backend."""
        sampler = self.build(variant, window, executor)
        if window:
            events = [
                (site, item, slot)
                for slot, arrivals in slotted_schedule(
                    25, 5, sites=3, universe=80
                )
                for site, item in arrivals
            ]
            cut = len(events) // 2
            sampler.observe_batch(events[:cut])
            mid = sampler.sample()
            assert mid.pairs == python_sort_merge(sampler)[0]
            sampler.observe_batch(events[cut:])
        else:
            sampler.observe_batch(uniform_events(2000, sites=3, universe=250))
        result = sampler.sample()
        expected_pairs, expected_threshold = python_sort_merge(sampler)
        assert result.pairs == expected_pairs
        assert result.threshold == expected_threshold
        assert result.items == tuple(item for _, item in expected_pairs)
        assert sampler.sample() is result  # cache holds under queries
        sampler.close()

    def test_underfull_merge_threshold_is_one(self):
        sampler = self.build()
        sampler.observe(0, 101)
        sampler.observe(1, 202)
        result = sampler.sample()
        assert len(result.pairs) == 2
        assert result.threshold == 1.0

    def test_snapshot_restore_resets_the_cache(self):
        sampler = self.build()
        sampler.observe_batch(uniform_events(800, sites=3, universe=200))
        blob = snapshot(sampler)
        baseline = sampler.sample()
        clone = restore(blob)
        assert clone.sample() == baseline
        assert clone.sample().pairs == python_sort_merge(clone)[0]


@pytest.mark.speedup
class TestQueryPathSpeedup:
    """Query-side acceptance gates (single-threaded wall-clock — no
    core-count requirement): the merge cache must be >= 10x a cold
    merge, and the vectorized cold merge >= 2x the Python-sort
    reference at S=4, s=256."""

    def _loaded_sampler(self):
        sampler = make_sampler(
            "sharded:infinite",
            num_sites=4,
            sample_size=256,
            shards=4,
            algorithm="mix64",
            seed=SEED,
        )
        sampler.observe_batch(uniform_events(60_000, sites=4, universe=30_000))
        return sampler

    @staticmethod
    def _best_of(repeats, calls, fn):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(calls):
                fn()
            best = min(best, (time.perf_counter() - started) / calls)
        return best

    def test_cached_query_is_10x_cold(self):
        sampler = self._loaded_sampler()
        sampler.sample()

        def cold():
            sampler.invalidate_merge_cache()
            sampler.sample()

        gc.collect()
        gc.disable()
        try:
            t_cold = self._best_of(5, 20, cold)
            t_cached = self._best_of(5, 200, sampler.sample)
        finally:
            gc.enable()
        speedup = t_cold / t_cached
        assert speedup >= 10.0, (
            f"cached query only {speedup:.1f}x cold "
            f"(cold {t_cold * 1e6:.1f} us, cached {t_cached * 1e6:.1f} us)"
        )

    def test_vectorized_cold_merge_is_2x_python_sort(self):
        sampler = self._loaded_sampler()
        sampler.sample()  # sync once; both merges time pure merge cost

        def vectorized():
            sampler.invalidate_merge_cache()
            sampler.sample()

        def reference():
            python_sort_merge(sampler)

        gc.collect()
        gc.disable()
        try:
            t_vec = self._best_of(5, 20, vectorized)
            t_ref = self._best_of(5, 20, reference)
        finally:
            gc.enable()
        speedup = t_ref / t_vec
        assert speedup >= 2.0, (
            f"vectorized merge only {speedup:.2f}x the Python-sort "
            f"reference (vec {t_vec * 1e6:.1f} us, ref {t_ref * 1e6:.1f} us)"
        )


@pytest.mark.speedup
class TestShardedScaleOut:
    """The scale-out acceptance gate: ingest throughput along the critical
    path (the slowest coordinator group — groups run on independent
    hardware in the deployment the simulation models) must scale >= 1.5x
    from S=1 to S=4 on the uniform workload."""

    def test_critical_path_throughput_scales(self):
        n = 100_000
        rng = np.random.default_rng(SEED)
        events = list(
            zip(
                rng.integers(0, 8, n).tolist(),
                rng.integers(0, n // 4, n).tolist(),
            )
        )

        def critical_seconds(shards: int) -> float:
            sampler = make_sampler(
                "sharded:infinite",
                num_sites=8,
                sample_size=16,
                shards=shards,
                algorithm="mix64",
                seed=1,
            )
            started = time.perf_counter()
            sampler.observe_batch(events)
            assert time.perf_counter() > started  # ingest really ran
            return sampler.critical_path_seconds

        def measure() -> tuple[float, float]:
            # Interleave the two shapes so machine-load drift hits both;
            # best-of-5 is the standard noise-floor estimator.  GC stays
            # off during timing: the critical path is a max over S
            # windows, so a collection pause landing in any one of them
            # would inflate it far more than the single-group run.
            singles, shardeds = [], []
            gc.collect()
            gc.disable()
            try:
                for _ in range(5):
                    singles.append(critical_seconds(1))
                    shardeds.append(critical_seconds(4))
            finally:
                gc.enable()
            return min(singles), min(shardeds)

        t_single, t_sharded = measure()
        if t_single / t_sharded < 1.5:  # one retry absorbs load spikes
            t_single, t_sharded = measure()
        scaling = t_single / t_sharded
        assert scaling >= 1.5, (
            f"critical-path throughput scaled only {scaling:.2f}x "
            f"from S=1 ({t_single * 1e3:.1f} ms) to S=4 "
            f"({t_sharded * 1e3:.1f} ms)"
        )
