"""Tests for stream generation: synthetic calibration, datasets,
distributors, slotted arrivals, adversarial input, formatting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DatasetError
from repro.streams import (
    DATASETS,
    DominateDistributor,
    FloodingDistributor,
    RandomDistributor,
    RoundRobinDistributor,
    SlottedArrivals,
    adversarial_input,
    all_distinct_stream,
    calibrated_stream,
    dataset_names,
    email_stream,
    flow_stream,
    format_email_pair,
    format_flow,
    get_dataset,
    make_distributor,
    uniform_stream,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        w = zipf_weights(100, 1.0)
        assert abs(w.sum() - 1.0) < 1e-12

    def test_decreasing(self):
        w = zipf_weights(50, 0.8)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_uniform_at_zero_skew(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_errors(self):
        with pytest.raises(DatasetError):
            zipf_weights(0, 1.0)
        with pytest.raises(DatasetError):
            zipf_weights(10, -0.5)


class TestCalibratedStream:
    @given(
        st.integers(1, 500),
        st.floats(0, 2, allow_nan=False),
        st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_distinct_count(self, n_distinct, skew, seed):
        n_elements = n_distinct * 3
        stream = calibrated_stream(
            n_elements, n_distinct, skew, np.random.default_rng(seed)
        )
        assert stream.size == n_elements
        assert np.unique(stream).size == n_distinct
        assert stream.min() >= 0
        assert stream.max() < n_distinct

    def test_no_extras_case(self):
        stream = calibrated_stream(10, 10, 1.0, np.random.default_rng(0))
        assert sorted(stream.tolist()) == list(range(10))

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(1)
        flat = calibrated_stream(50_000, 1000, 0.0, rng)
        skewed = calibrated_stream(50_000, 1000, 1.2, np.random.default_rng(1))
        top_flat = np.bincount(flat).max()
        top_skewed = np.bincount(skewed).max()
        assert top_skewed > 3 * top_flat

    def test_errors(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            calibrated_stream(5, 10, 1.0, rng)
        with pytest.raises(DatasetError):
            calibrated_stream(5, 0, 1.0, rng)

    def test_reproducible(self):
        a = calibrated_stream(1000, 100, 0.9, np.random.default_rng(9))
        b = calibrated_stream(1000, 100, 0.9, np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestOtherStreams:
    def test_uniform_stream(self):
        s = uniform_stream(1000, 50, np.random.default_rng(0))
        assert s.size == 1000
        assert s.min() >= 0 and s.max() < 50

    def test_uniform_errors(self):
        with pytest.raises(DatasetError):
            uniform_stream(10, 0, np.random.default_rng(0))

    def test_all_distinct(self):
        s = all_distinct_stream(100)
        assert np.array_equal(s, np.arange(100))


class TestDatasets:
    def test_registry_contents(self):
        names = dataset_names()
        for family in ("oc48", "enron"):
            for scale in ("tiny", "small", "medium", "paper"):
                assert f"{family}:{scale}" in names

    def test_paper_counts_match_table5_1(self):
        oc48 = get_dataset("oc48", "paper")
        assert (oc48.n_elements, oc48.n_distinct) == (42_268_510, 4_337_768)
        enron = get_dataset("enron", "paper")
        assert (enron.n_elements, enron.n_distinct) == (1_557_491, 374_330)

    @pytest.mark.parametrize("family,paper_ratio", [("oc48", 0.1026), ("enron", 0.2403)])
    @pytest.mark.parametrize("scale", ["tiny", "small", "medium"])
    def test_scaled_ratios_preserved(self, family, paper_ratio, scale):
        spec = get_dataset(family, scale)
        assert abs(spec.distinct_ratio - paper_ratio) < 0.003

    def test_generation_matches_spec(self):
        spec = get_dataset("oc48", "tiny")
        stream = spec.generate(np.random.default_rng(4))
        assert stream.size == spec.n_elements
        assert np.unique(stream).size == spec.n_distinct

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("oc192", "small")
        with pytest.raises(DatasetError):
            get_dataset("oc48", "huge")


class TestFormatting:
    def test_format_flow_shape(self):
        flow = format_flow(12345)
        src, dst = flow.split(">")
        for ip in (src, dst):
            parts = ip.split(".")
            assert len(parts) == 4
            assert all(0 <= int(p) <= 255 for p in parts)

    def test_format_flow_deterministic_injectivish(self):
        flows = {format_flow(i) for i in range(2000)}
        assert len(flows) == 2000
        assert format_flow(7) == format_flow(7)

    def test_format_email_shape(self):
        pair = format_email_pair(999)
        sender, recipient = pair.split("->")
        assert "@" in sender and "@" in recipient

    def test_flow_stream_ints_and_strings(self):
        ints = flow_stream("tiny", np.random.default_rng(0))
        assert all(isinstance(e, int) for e in ints[:10])
        strs = flow_stream("tiny", np.random.default_rng(0), as_strings=True)
        assert len(strs) == len(ints)
        assert all(">" in s for s in strs[:10])

    def test_email_stream_strings(self):
        strs = email_stream("tiny", np.random.default_rng(0), as_strings=True)
        assert all("->" in s for s in strs[:10])


class TestDistributors:
    def test_flooding(self):
        d = FloodingDistributor(4)
        assert d.floods
        assert d.assignments(10) is None

    def test_random_range(self):
        d = RandomDistributor(7)
        a = d.assignments(5000, np.random.default_rng(0))
        assert a.min() >= 0 and a.max() < 7
        counts = np.bincount(a, minlength=7)
        assert counts.min() > 5000 / 7 * 0.7  # roughly balanced

    def test_random_needs_rng(self):
        with pytest.raises(ConfigurationError):
            RandomDistributor(3).assignments(10)

    def test_round_robin_pattern(self):
        d = RoundRobinDistributor(3)
        assert d.assignments(7).tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_dominate_ratio(self):
        d = DominateDistributor(5, alpha=40.0)
        a = d.assignments(20_000, np.random.default_rng(1))
        counts = np.bincount(a, minlength=5)
        # Site 0 expected share: 40/44; others 1/44 each.
        assert counts[0] / 20_000 > 0.85
        ratio = counts[0] / max(counts[1:].mean(), 1)
        assert 25 < ratio < 60

    def test_dominate_single_site(self):
        d = DominateDistributor(1, alpha=10)
        assert d.assignments(5, np.random.default_rng(0)).tolist() == [0] * 5

    def test_dominate_alpha_one_uniform(self):
        d = DominateDistributor(4, alpha=1.0)
        a = d.assignments(20_000, np.random.default_rng(2))
        counts = np.bincount(a, minlength=4)
        assert counts.min() > 20_000 / 4 * 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FloodingDistributor(0)
        with pytest.raises(ConfigurationError):
            DominateDistributor(3, alpha=0.5)

    def test_factory(self):
        assert isinstance(make_distributor("flooding", 3), FloodingDistributor)
        assert isinstance(make_distributor("random", 3), RandomDistributor)
        assert isinstance(
            make_distributor("round_robin", 3), RoundRobinDistributor
        )
        dom = make_distributor("dominate", 3, alpha=9)
        assert isinstance(dom, DominateDistributor)
        assert dom.alpha == 9
        with pytest.raises(ConfigurationError):
            make_distributor("hashring", 3)


class TestSlottedArrivals:
    def test_structure(self):
        arr = SlottedArrivals(list(range(12)), 4, 5, np.random.default_rng(0))
        slots = list(arr.slots())
        assert len(slots) == 3 == len(arr)
        assert slots[0][0] == 1  # slots start at 1
        assert [len(batch) for _, batch in slots] == [5, 5, 2]
        # Every element delivered exactly once, in order.
        flat = [e for _, batch in slots for _, e in batch]
        assert flat == list(range(12))
        for _, batch in slots:
            for site, _ in batch:
                assert 0 <= site < 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlottedArrivals([1], 0, 5, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            SlottedArrivals([1], 3, 0, np.random.default_rng(0))


class TestAdversarial:
    def test_construction(self):
        elements, distributor = adversarial_input(100, 7)
        assert elements.size == 100
        assert np.unique(elements).size == 100
        assert distributor.floods
        assert distributor.num_sites == 7
