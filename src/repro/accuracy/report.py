"""Schema-versioned, machine-readable accuracy reports.

One :class:`AccuracyReport` is the JSON artifact of an accuracy-suite run
— the statistical twin of :class:`~repro.perf.report.PerfReport`.  Where
the perf report tracks *cost* (time, messages, bytes), this one tracks
*answer quality*: every record pins one estimator's output on one
(scenario, variant) cell against the exact ground truth recomputed from
the raw workload, and the CI accuracy gate diffs the whole grid against
the committed ``benchmarks/accuracy_baseline.json``.

The schema is versioned so readers can reject files they do not
understand instead of mis-parsing them; bump
:data:`ACCURACY_SCHEMA_VERSION` on any incompatible change and teach
:func:`accuracy_report_from_dict` the migration.

Record identity is ``(scenario, estimator, variant)``; within one schema
version a record always carries the same keys, so diffs are plain
per-record comparisons (see :mod:`repro.accuracy.regress`).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..errors import AccuracyError

__all__ = [
    "ACCURACY_SCHEMA_VERSION",
    "AccuracyRecord",
    "AccuracyReport",
    "accuracy_report_from_dict",
    "load_accuracy_report",
    "save_accuracy_report",
]

#: Current accuracy-report schema version.  Readers must reject others.
ACCURACY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class AccuracyRecord:
    """One (scenario, estimator, variant) accuracy measurement.

    Every field is exactly reproducible given the workload seed — the
    samplers, the hash salts, and the ground-truth recomputation are all
    deterministic, so the regression gate can hold records to equality
    plus a small drift allowance rather than a wide noise band.

    Attributes:
        scenario: Workload the cell replayed.
        estimator: Registered accuracy-estimator name.
        variant: Sampler variant the estimator consumed.
        n_events: Number of ingestion events in the workload.
        window: Window (slots) the windowed truths/estimates used.
        windowed: Whether the cell targeted the sliding-window
            population (False = full-history distinct population).
        sample_len: Members in the sampler's (merged) sample at query
            time.
        estimate: The estimator's point estimate.
        truth: The exact answer recomputed from the raw stream.
        error: The estimator's error metric (see ``error_kind``).
        error_kind: How ``error`` is measured — ``"relative"``,
            ``"abs"``, or ``"rank"``.
        ci_low: Lower bound of the estimator's ~95 % interval.
        ci_high: Upper bound of the estimator's ~95 % interval.
        within_ci: Whether the truth fell inside the interval (the
            coverage bit the baseline trajectory tracks).
        tolerance: The registry's error ceiling for this estimator at
            report time (recorded so a baseline is self-describing).
    """

    scenario: str
    estimator: str
    variant: str
    n_events: int
    window: int
    windowed: bool
    sample_len: int
    estimate: float
    truth: float
    error: float
    error_kind: str
    ci_low: float
    ci_high: float
    within_ci: bool
    tolerance: float

    @property
    def key(self) -> tuple[str, str, str]:
        """Identity within a report: ``(scenario, estimator, variant)``."""
        return (self.scenario, self.estimator, self.variant)


@dataclass(frozen=True)
class AccuracyReport:
    """A full accuracy-suite run: environment + parameters + records."""

    records: tuple[AccuracyRecord, ...]
    params: dict[str, Any] = field(default_factory=dict)
    schema_version: int = ACCURACY_SCHEMA_VERSION
    generated_at: str = ""
    python: str = ""
    platform: str = ""
    numpy: str = ""

    @classmethod
    def build(
        cls, records: list[AccuracyRecord], params: dict[str, Any]
    ) -> "AccuracyReport":
        """Assemble a report, stamping the current environment.

        ``params`` is JSON-normalized (tuples become lists) so a report
        compares equal to its own serialized round trip.
        """
        import numpy

        return cls(
            records=tuple(records),
            params=json.loads(json.dumps(dict(params))),
            generated_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            python=sys.version.split()[0],
            platform=platform.platform(),
            numpy=numpy.__version__,
        )

    def record_for(
        self, scenario: str, estimator: str, variant: str
    ) -> Optional[AccuracyRecord]:
        """The record with the given identity, or None."""
        for record in self.records:
            if record.key == (scenario, estimator, variant):
                return record
        return None

    def by_key(self) -> dict[tuple[str, str, str], AccuracyRecord]:
        """Records indexed by ``(scenario, estimator, variant)``."""
        return {record.key: record for record in self.records}

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "schema_version": self.schema_version,
            "generated_at": self.generated_at,
            "environment": {
                "python": self.python,
                "platform": self.platform,
                "numpy": self.numpy,
            },
            "params": dict(self.params),
            "records": [asdict(record) for record in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON text (sorted keys; trailing newline)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"


_RECORD_FIELDS = {
    "scenario": str,
    "estimator": str,
    "variant": str,
    "n_events": int,
    "window": int,
    "windowed": bool,
    "sample_len": int,
    "estimate": float,
    "truth": float,
    "error": float,
    "error_kind": str,
    "ci_low": float,
    "ci_high": float,
    "within_ci": bool,
    "tolerance": float,
}


def accuracy_report_from_dict(data: Any) -> AccuracyReport:
    """Parse and validate a report dict (inverse of ``to_dict``).

    Raises:
        AccuracyError: On a non-dict payload, missing/unsupported schema
            version, or malformed records.
    """
    if not isinstance(data, dict):
        raise AccuracyError(
            f"accuracy report must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("schema_version")
    if version != ACCURACY_SCHEMA_VERSION:
        raise AccuracyError(
            f"unsupported accuracy report schema_version {version!r} "
            f"(this reader understands {ACCURACY_SCHEMA_VERSION})"
        )
    environment = data.get("environment") or {}
    raw_records = data.get("records")
    if not isinstance(raw_records, list):
        raise AccuracyError("accuracy report is missing its 'records' list")
    records = []
    for i, raw in enumerate(raw_records):
        if not isinstance(raw, dict):
            raise AccuracyError(f"record #{i} is not an object")
        try:
            records.append(
                AccuracyRecord(
                    **{
                        name: kind(raw[name])
                        for name, kind in _RECORD_FIELDS.items()
                    }
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AccuracyError(f"record #{i} is malformed: {exc!r}") from exc
    return AccuracyReport(
        records=tuple(records),
        params=dict(data.get("params") or {}),
        schema_version=ACCURACY_SCHEMA_VERSION,
        generated_at=str(data.get("generated_at", "")),
        python=str(environment.get("python", "")),
        platform=str(environment.get("platform", "")),
        numpy=str(environment.get("numpy", "")),
    )


def load_accuracy_report(path) -> AccuracyReport:
    """Read and validate an accuracy report JSON file.

    Raises:
        AccuracyError: If the file is unreadable, not JSON, or fails
            validation.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise AccuracyError(
            f"cannot read accuracy report {path}: {exc}"
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AccuracyError(
            f"accuracy report {path} is not valid JSON: {exc}"
        ) from exc
    return accuracy_report_from_dict(data)


def save_accuracy_report(report: AccuracyReport, path) -> Path:
    """Write a report as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json())
    return path
