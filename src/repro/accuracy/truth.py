"""Ground truth for accuracy cells, computed from the raw workload.

Every accuracy record compares an estimate against the *exact* answer
over the stream the sampler actually ingested.  :class:`TruthContext`
normalizes the three workload shapes the perf scenarios emit — tuple
events (``(site, item)`` / ``(site, item, slot)``), raw integer keys, and
columnar :class:`~repro.core.events.EventBatch` — into item/slot columns
and precomputes the two distinct populations estimators target:

* ``distinct_all`` — every distinct element of the stream (the
  population an infinite-window sampler maintains);
* ``distinct_window`` — the elements whose **last** arrival lies in the
  final ``window`` slots (the population a sliding sampler maintains at
  the end of ingestion).  Unslotted streams have no expiry, so the two
  populations coincide.

All derived truths (predicate fractions, group shares, quantile ranks)
are plain vectorized reductions over these columns — no sampling, no
estimation, bit-reproducible given the workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np
import numpy.typing as npt

from ..core.events import EventBatch
from ..errors import AccuracyError

__all__ = ["TruthContext"]

IntColumn = npt.NDArray[np.int64]


def _columns_from_events(
    events: Any,
) -> tuple[IntColumn, Optional[IntColumn]]:
    """Normalize a scenario workload into ``(items, slots-or-None)``."""
    if isinstance(events, EventBatch):
        return np.asarray(events.items, dtype=np.int64), events.slots
    if isinstance(events, np.ndarray):
        return np.asarray(events, dtype=np.int64), None
    events = list(events)
    if not events:
        raise AccuracyError("cannot compute ground truth of an empty workload")
    first = events[0]
    if isinstance(first, (int, np.integer)):
        return np.asarray(events, dtype=np.int64), None
    if len(first) == 2:
        items = np.fromiter(
            (event[1] for event in events), dtype=np.int64, count=len(events)
        )
        return items, None
    items = np.fromiter(
        (event[1] for event in events), dtype=np.int64, count=len(events)
    )
    slots = np.fromiter(
        (event[2] for event in events), dtype=np.int64, count=len(events)
    )
    return items, slots


@dataclass(frozen=True)
class TruthContext:
    """Exact per-window ground truth for one scenario workload.

    Attributes:
        items: Element ids in arrival order.
        slots: Per-event slot stamps, or None for unslotted streams.
        window: Window size in slots the windowed truths use.
        final_slot: The last slot of the stream (None when unslotted).
        distinct_all: Sorted distinct elements of the whole stream.
        distinct_window: Sorted distinct elements live in the final
            window (equals ``distinct_all`` for unslotted streams).
    """

    items: IntColumn
    slots: Optional[IntColumn]
    window: int
    final_slot: Optional[int]
    distinct_all: IntColumn
    distinct_window: IntColumn

    @classmethod
    def from_events(cls, events: Any, window: int) -> "TruthContext":
        """Build the context from any perf-scenario workload shape.

        Args:
            events: Tuple events, raw integer keys, or an ``EventBatch``.
            window: Window size in slots for the windowed truths.

        Raises:
            AccuracyError: On an empty workload or a non-positive window.
        """
        if window < 1:
            raise AccuracyError(f"window must be >= 1, got {window}")
        items, slots = _columns_from_events(events)
        if not items.size:
            raise AccuracyError("cannot compute ground truth of an empty workload")
        distinct_all = np.unique(items)
        if slots is None:
            return cls(
                items=items,
                slots=None,
                window=window,
                final_slot=None,
                distinct_all=distinct_all,
                distinct_window=distinct_all,
            )
        final_slot = int(slots.max())
        # An element is live iff its *last* arrival falls in the final
        # `window` slots — the expiry rule of the sliding cores.
        uniques, inverse = np.unique(items, return_inverse=True)
        last_slot = np.full(uniques.size, np.iinfo(np.int64).min, dtype=np.int64)
        np.maximum.at(last_slot, inverse, slots)
        live = uniques[last_slot > final_slot - window]
        return cls(
            items=items,
            slots=slots,
            window=window,
            final_slot=final_slot,
            distinct_all=distinct_all,
            distinct_window=live,
        )

    # -- population selection ---------------------------------------------

    @property
    def slotted(self) -> bool:
        """Whether the stream carried slot stamps."""
        return self.slots is not None

    def distinct_for(self, windowed: bool) -> IntColumn:
        """The distinct population a (windowed or infinite) sampler holds."""
        return self.distinct_window if windowed else self.distinct_all

    # -- derived exact answers --------------------------------------------

    def distinct_count(self, windowed: bool) -> int:
        """Exact distinct count of the selected population."""
        return int(self.distinct_for(windowed).size)

    def fraction_where_mod(self, windowed: bool, modulus: int, residue: int) -> float:
        """Exact fraction of the population with ``item % modulus == residue``."""
        population = self.distinct_for(windowed)
        if not population.size:
            raise AccuracyError("the selected population is empty")
        return float(np.count_nonzero(population % modulus == residue) / population.size)

    def group_shares(self, windowed: bool, modulus: int) -> npt.NDArray[np.float64]:
        """Exact per-group shares under the ``item % modulus`` grouping."""
        population = self.distinct_for(windowed)
        if not population.size:
            raise AccuracyError("the selected population is empty")
        counts = np.bincount(
            (population % modulus).astype(np.int64), minlength=modulus
        )
        return counts / float(population.size)

    def quantile_value(self, windowed: bool, q: float) -> float:
        """Exact q-quantile of the population's element values."""
        population = self.distinct_for(windowed)
        if not population.size:
            raise AccuracyError("the selected population is empty")
        return float(np.quantile(population.astype(np.float64), q))

    def rank_of(self, windowed: bool, value: float) -> float:
        """The population CDF at ``value`` (for quantile rank error)."""
        population = self.distinct_for(windowed)
        if not population.size:
            raise AccuracyError("the selected population is empty")
        rank = np.searchsorted(population, value, side="right")
        return float(rank / population.size)
