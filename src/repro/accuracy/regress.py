"""Accuracy regression gate: diff a report against a committed baseline.

Two independent checks per shared record, both on the deterministic
``error`` field:

* **tolerance** — the error must stay at or under the estimator's
  registered ceiling (recorded in the *current* report, so the registry
  is the single source of truth).  This is an absolute quality floor:
  even a "no worse than baseline" run fails if the estimator itself is
  broken.
* **drift** — the error must not exceed ``baseline_error * drift_factor
  + slack``.  Accuracy records are exactly reproducible given the seed,
  so the allowance only absorbs cross-version RNG/platform drift; the
  additive ``slack`` keeps near-zero baselines (exact cells) from
  turning the multiplicative factor into a zero-tolerance trap.

A comparison *fails* (``ok`` is False) when any shared record trips
either check, or when the current report lost coverage (a baseline
record with no counterpart — a silently skipped cell is itself a
regression).  Records new in the current report are reported but never
fail the gate, so adding estimators or scenarios does not require
touching the baseline in the same change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import AccuracyError
from .report import AccuracyReport

__all__ = [
    "AccuracyTolerances",
    "AccuracyDelta",
    "AccuracyComparison",
    "compare_accuracy_reports",
]

#: Suite parameters that shape the workload and the estimators' inputs.
#: Two reports are only comparable when these agree — otherwise every
#: error delta just measures the workload mismatch, not a regression.
#: ``workers`` is deliberately absent: the process pool never changes
#: the deterministic estimates (that bit-identity is itself under test).
WORKLOAD_PARAMS = (
    "n_events",
    "num_sites",
    "sample_size",
    "window",
    "seed",
    "algorithm",
    "shards",
)


def _check_comparable(current: AccuracyReport, baseline: AccuracyReport) -> None:
    """Reject report pairs whose workloads differ.

    Raises:
        AccuracyError: Naming every mismatched workload parameter.
            Skipped when either report carries no params (hand-built
            fixtures).
    """
    if not current.params or not baseline.params:
        return
    mismatches = [
        f"{name}: current={current.params.get(name)!r} "
        f"baseline={baseline.params.get(name)!r}"
        for name in WORKLOAD_PARAMS
        if current.params.get(name) != baseline.params.get(name)
    ]
    if mismatches:
        raise AccuracyError(
            "reports are not comparable — workload parameters differ "
            "(regenerate the baseline with matching flags): "
            + "; ".join(mismatches)
        )


@dataclass(frozen=True)
class AccuracyTolerances:
    """Drift allowance for the baseline comparison.

    Attributes:
        drift_factor: Multiplicative ceiling on the error relative to
            the baseline record.
        slack: Additive slack on top of the scaled baseline (absorbs
            exact-zero baselines).
    """

    drift_factor: float = 1.5
    slack: float = 0.02

    def limit_for(self, baseline_error: float) -> float:
        """The drift ceiling for a record with the given baseline error."""
        return baseline_error * self.drift_factor + self.slack


@dataclass(frozen=True)
class AccuracyDelta:
    """One record comparison: current error vs ceiling and baseline."""

    scenario: str
    estimator: str
    variant: str
    baseline: float
    current: float
    tolerance: float  # the estimator's registered absolute ceiling
    limit: float  # the drift ceiling derived from the baseline

    @property
    def over_tolerance(self) -> bool:
        """Whether the error exceeded the estimator's absolute ceiling."""
        return self.current > self.tolerance

    @property
    def drifted(self) -> bool:
        """Whether the error drifted past the baseline allowance."""
        return self.current > self.limit

    @property
    def regressed(self) -> bool:
        """Whether either check failed."""
        return self.over_tolerance or self.drifted

    @property
    def reason(self) -> str:
        """Which check(s) failed (empty when none did)."""
        reasons = []
        if self.over_tolerance:
            reasons.append(f"error {self.current:g} > tolerance {self.tolerance:g}")
        if self.drifted:
            reasons.append(
                f"error {self.current:g} > drift limit {self.limit:g} "
                f"(baseline {self.baseline:g})"
            )
        return "; ".join(reasons)


@dataclass(frozen=True)
class AccuracyComparison:
    """The result of diffing an accuracy report against a baseline."""

    deltas: tuple
    missing: tuple  # (scenario, estimator, variant) lost from current
    added: tuple  # new in current (informational)

    @property
    def regressions(self) -> tuple:
        """The deltas that failed a check."""
        return tuple(delta for delta in self.deltas if delta.regressed)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no coverage was lost."""
        return not self.regressions and not self.missing

    def render(self) -> str:
        """Human-readable summary (the CLI prints this)."""
        lines = []
        for delta in self.regressions:
            lines.append(
                f"REGRESSION {delta.scenario}/{delta.estimator}"
                f"/{delta.variant}: {delta.reason}"
            )
        for key in self.missing:
            lines.append(
                f"MISSING {key[0]}/{key[1]}/{key[2]}: present in "
                "baseline, absent from the current report"
            )
        for key in self.added:
            lines.append(f"new (uncompared): {key[0]}/{key[1]}/{key[2]}")
        checked = len(self.deltas)
        if self.ok:
            lines.append(
                f"OK: {checked} accuracy records within tolerance and drift"
            )
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} regression(s), "
                f"{len(self.missing)} missing record(s) "
                f"out of {checked} comparisons"
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured summary table (for ``GITHUB_STEP_SUMMARY``)."""
        verdict = "✅ pass" if self.ok else "❌ fail"
        lines = [
            f"### Accuracy gate: {verdict}",
            "",
            "| scenario | estimator | variant | error | baseline "
            "| tolerance | drift limit | status |",
            "| --- | --- | --- | ---: | ---: | ---: | ---: | --- |",
        ]
        for delta in self.deltas:
            status = "regressed" if delta.regressed else "ok"
            lines.append(
                f"| {delta.scenario} | {delta.estimator} | {delta.variant} "
                f"| {delta.current:.4f} | {delta.baseline:.4f} "
                f"| {delta.tolerance:g} | {delta.limit:.4f} | {status} |"
            )
        for key in self.missing:
            lines.append(
                f"| {key[0]} | {key[1]} | {key[2]} | — | — | — | — "
                "| **missing** |"
            )
        for key in self.added:
            lines.append(
                f"| {key[0]} | {key[1]} | {key[2]} | — | — | — | — | new |"
            )
        lines.append("")
        if self.ok:
            lines.append(
                f"{len(self.deltas)} records within tolerance and drift."
            )
        else:
            lines.append(
                f"**{len(self.regressions)} regression(s), "
                f"{len(self.missing)} missing record(s).**"
            )
        return "\n".join(lines) + "\n"


def compare_accuracy_reports(
    current: AccuracyReport,
    baseline: AccuracyReport,
    tolerances: Optional[AccuracyTolerances] = None,
) -> AccuracyComparison:
    """Diff ``current`` against ``baseline`` with tolerance + drift gates.

    Args:
        current: The freshly produced report.
        baseline: The committed reference report.
        tolerances: Drift allowance (defaults: 1.5x baseline + 0.02).

    Returns:
        An :class:`AccuracyComparison`; check ``.ok`` for the verdict.

    Raises:
        AccuracyError: When the reports' workload parameters differ (the
            errors would measure the mismatch, not a regression).
    """
    _check_comparable(current, baseline)
    tolerances = tolerances or AccuracyTolerances()
    current_by_key = current.by_key()
    baseline_by_key = baseline.by_key()
    deltas = []
    missing = []
    for key, base_record in baseline_by_key.items():
        record = current_by_key.get(key)
        if record is None:
            missing.append(key)
            continue
        deltas.append(
            AccuracyDelta(
                scenario=key[0],
                estimator=key[1],
                variant=key[2],
                baseline=base_record.error,
                current=record.error,
                tolerance=record.tolerance,
                limit=tolerances.limit_for(base_record.error),
            )
        )
    added = [key for key in current_by_key if key not in baseline_by_key]
    return AccuracyComparison(
        deltas=tuple(deltas),
        missing=tuple(sorted(missing)),
        added=tuple(sorted(added)),
    )
