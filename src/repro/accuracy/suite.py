"""The accuracy suite: scenarios x variants x estimators -> a report.

Replays the registered perf workloads (:mod:`repro.perf.scenarios` —
exactly the same builders, drivers, and slot semantics the benchmark
suite times) through the registered sampler variants, then runs every
applicable registered estimator against each cell's live sampler and the
exact ground truth recomputed from the raw stream.  The result is a
schema-versioned :class:`~repro.accuracy.report.AccuracyReport` for the
JSON trajectory and the CI accuracy gate.

Everything here is deterministic given the seed: workload generation,
sampling hashes, the auxiliary sketches, and the ground truth.  In
particular the ``sharded:*`` cells are *bit-identical* to their
centralized twins — the query-time bottom-s merge is provably the global
sample — whether the shard groups run serially or through the
multiprocessing :class:`~repro.runtime.executor.ProcessExecutor`, and
the suite's default grid exercises both paths.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Optional

from ..core.api import get_variant, sampler_variants
from ..errors import AccuracyError
from ..perf.scenarios import ScenarioParams, get_scenario, perf_scenarios
from ..perf.suite import SuiteConfig, build_sampler_for, close_sampler
from .estimators import (
    EstimatorContext,
    accuracy_estimators,
    get_estimator,
)
from .report import AccuracyRecord, AccuracyReport
from .truth import TruthContext

__all__ = ["AccuracyConfig", "run_accuracy_suite"]

#: The default grid covers the acceptance matrix: centralized vs sharded
#: on the same streams (bit-identical by construction), serial vs
#: process-executed shard groups, infinite vs sliding windows.
DEFAULT_SCENARIOS = (
    "sharded-uniform",
    "sharded-uniform-parallel",
    "sliding-churn",
    "uniform",
)
DEFAULT_VARIANTS = (
    "infinite",
    "sharded:infinite",
    "sliding",
    "sharded:sliding",
)


@dataclass(frozen=True)
class AccuracyConfig:
    """Parameters of one accuracy-suite run.

    Attributes:
        n_events: Workload size per scenario.
        num_sites: Sites k.
        sample_size: Sample size s (64 keeps the binomial queries'
            standard error near 0.06 — the tolerances assume it).
        window: Window (slots) for windowed cells and slotted scenarios.
        seed: Master workload + hash seed.
        scenarios: Scenario names to run; empty = the default grid.
        variants: Variant names to run; empty = the default grid.
        estimators: Estimator names to run; empty = all registered.
        algorithm: Hash algorithm for the samplers.
        shards: Coordinator groups S for the ``sharded:*`` variants.
        workers: Worker processes W for scenarios forcing the
            ``"process"`` backend (never changes the estimates — the
            acceptance matrix runs S=4, W=2).
    """

    n_events: int = 8_000
    num_sites: int = 8
    sample_size: int = 64
    window: int = 64
    seed: int = 20150525
    scenarios: tuple = DEFAULT_SCENARIOS
    variants: tuple = DEFAULT_VARIANTS
    estimators: tuple = ()
    algorithm: str = "mix64"
    shards: int = 4
    workers: int = 2

    def scenario_names(self) -> tuple:
        """Scenario names this run covers (validated)."""
        if not self.scenarios:
            return perf_scenarios()
        for name in self.scenarios:
            get_scenario(name)
        return tuple(self.scenarios)

    def variant_names(self) -> tuple:
        """Variant names this run covers (validated)."""
        if not self.variants:
            return sampler_variants()
        for name in self.variants:
            get_variant(name)
        return tuple(self.variants)

    def estimator_names(self) -> tuple:
        """Estimator names this run covers (validated)."""
        if not self.estimators:
            return accuracy_estimators()
        for name in self.estimators:
            get_estimator(name)
        return tuple(self.estimators)

    def suite_config(self) -> SuiteConfig:
        """The equivalent perf config (sampler construction reuses it)."""
        return SuiteConfig(
            n_events=self.n_events,
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            window=self.window,
            seed=self.seed,
            scenarios=self.scenarios,
            variants=self.variants,
            algorithm=self.algorithm,
            shards=self.shards,
            workers=self.workers,
        )

    def scenario_params(self) -> ScenarioParams:
        """The workload knobs shared by every scenario in this run."""
        return ScenarioParams(
            n_events=self.n_events,
            num_sites=self.num_sites,
            seed=self.seed,
            window=self.window,
        ).validate()


def run_accuracy_suite(
    config: AccuracyConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> AccuracyReport:
    """Run the suite and return the assembled report.

    Each (scenario, variant) cell ingests its workload exactly once;
    every applicable estimator then queries the same live sampler, so
    the report's records per cell are mutually consistent views of one
    maintained sample.

    Args:
        config: What to run and at what scale.
        progress: Optional callback receiving one line per finished
            record (the CLI prints these).

    Raises:
        AccuracyError: Unknown scenario/variant/estimator names, or an
            empty grid.
    """
    suite_config = config.suite_config()
    params = config.scenario_params()
    estimator_names = config.estimator_names()
    records = []
    for scenario_name in config.scenario_names():
        scenario = get_scenario(scenario_name)
        events = scenario.build(params)
        truth = TruthContext.from_events(events, config.window)
        for variant_name in config.variant_names():
            sampler = build_sampler_for(
                suite_config, variant_name, scenario.slotted, scenario.executor
            )
            if not scenario.applies_to(variant_name, sampler):
                close_sampler(sampler)
                continue
            variant = get_variant(variant_name)
            windowed = variant.windowed or (
                variant.with_replacement and scenario.slotted
            )
            scenario.driver(sampler, events, params)
            context = EstimatorContext(
                sampler=sampler,
                truth=truth,
                windowed=windowed,
                seed=config.seed,
            )
            sample_len = len(sampler.sample())
            for estimator_name in estimator_names:
                estimator = get_estimator(estimator_name)
                if not estimator.applies_to(variant_name):
                    continue
                outcome = estimator.run(context)
                record = AccuracyRecord(
                    scenario=scenario_name,
                    estimator=estimator_name,
                    variant=variant_name,
                    n_events=len(events),
                    window=config.window,
                    windowed=windowed,
                    sample_len=sample_len,
                    estimate=outcome.estimate,
                    truth=outcome.truth,
                    error=outcome.error,
                    error_kind=outcome.error_kind,
                    ci_low=outcome.ci_low,
                    ci_high=outcome.ci_high,
                    within_ci=outcome.within_ci,
                    tolerance=estimator.tolerance,
                )
                records.append(record)
                if progress is not None:
                    coverage = "in-CI " if record.within_ci else "out-CI"
                    progress(
                        f"{scenario_name:<26} {variant_name:<18} "
                        f"{estimator_name:<20} "
                        f"err={record.error:6.3f} ({record.error_kind}) "
                        f"{coverage} tol={record.tolerance:g}"
                    )
            close_sampler(sampler)
    if not records:
        raise AccuracyError("accuracy suite produced no records (empty grid?)")
    return AccuracyReport.build(records, params={**asdict(config)})
