"""Accuracy subsystem: estimator quality tracking with a CI gate.

The statistical twin of :mod:`repro.perf` — where the perf suite tracks
*cost* (time, messages, bytes) over the scenario x variant grid, this
suite tracks *answer quality* over the same workloads:

* :mod:`repro.accuracy.truth` — exact ground truth recomputed from the
  raw stream (full-history and sliding-window distinct populations).
* :mod:`repro.accuracy.estimators` — a registry of named statistical
  queries (KMV distinct count, exponential-histogram cross-check, heavy
  hitters, predicate fractions, quantiles), each owning the error
  tolerance the gate enforces.
* :mod:`repro.accuracy.suite` — replays the registered perf scenarios
  through the registered sampler variants (centralized and ``sharded:*``,
  serial and process-executed) and runs every applicable estimator
  against each cell.
* :mod:`repro.accuracy.report` / :mod:`repro.accuracy.regress` — the
  schema-versioned JSON artifact and the tolerance + drift diff that CI
  runs against ``benchmarks/accuracy_baseline.json``.

CLI: ``repro accuracy run | compare | baseline`` (see README
"Accuracy tracking").
"""

from .estimators import (
    AccuracyEstimator,
    EstimatorContext,
    EstimatorOutcome,
    accuracy_estimators,
    get_estimator,
    register_estimator,
)
from .regress import (
    AccuracyComparison,
    AccuracyDelta,
    AccuracyTolerances,
    compare_accuracy_reports,
)
from .report import (
    ACCURACY_SCHEMA_VERSION,
    AccuracyRecord,
    AccuracyReport,
    accuracy_report_from_dict,
    load_accuracy_report,
    save_accuracy_report,
)
from .suite import AccuracyConfig, run_accuracy_suite
from .truth import TruthContext

__all__ = [
    "ACCURACY_SCHEMA_VERSION",
    "TruthContext",
    "AccuracyEstimator",
    "EstimatorContext",
    "EstimatorOutcome",
    "register_estimator",
    "accuracy_estimators",
    "get_estimator",
    "AccuracyConfig",
    "run_accuracy_suite",
    "AccuracyRecord",
    "AccuracyReport",
    "accuracy_report_from_dict",
    "load_accuracy_report",
    "save_accuracy_report",
    "AccuracyTolerances",
    "AccuracyDelta",
    "AccuracyComparison",
    "compare_accuracy_reports",
]
