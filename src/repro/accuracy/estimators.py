"""The accuracy-estimator registry: named queries with error budgets.

An *accuracy estimator* is one statistical query run against a live
sampler (plus the exact ground truth of the stream it ingested) inside
the accuracy suite.  Each registered estimator owns:

* a ``run`` function mapping an :class:`EstimatorContext` to an
  :class:`EstimatorOutcome` (point estimate, truth, error, interval);
* a ``tolerance`` — the absolute error ceiling the CI gate enforces on
  every record this estimator produces.  Tolerances live here, next to
  the math that justifies them, not in the comparison code: the KMV
  estimator at s = 64 has RSE ≈ ``1/sqrt(62)`` ≈ 0.127, so a 0.40
  relative ceiling is ~3 standard errors; the exponential-histogram
  counter is a power-of-two sketch whose band is structurally wider; the
  share/fraction/rank queries are binomial at s = 64 (SE ≈ 0.06) so a
  0.15 absolute ceiling is ~2.5 standard errors.

The registry mirrors :func:`repro.perf.scenarios.register_scenario`: the
suite crosses registered estimators against the (scenario, variant) grid
and third parties can register their own queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.protocol import Sampler
from ..errors import AccuracyError
from ..estimators.eh_distinct import SlidingDistinctCounterEH
from ..estimators.windowed import (
    windowed_distinct,
    windowed_fraction,
    windowed_heavy_hitters,
    windowed_quantile,
)
from .truth import TruthContext

__all__ = [
    "EstimatorContext",
    "EstimatorOutcome",
    "AccuracyEstimator",
    "register_estimator",
    "accuracy_estimators",
    "get_estimator",
]

#: Group modulus for the heavy-hitter query (8 roughly equal groups).
HH_MODULUS = 8
#: Predicate for the fraction query: ``item % 3 == 0`` (~1/3 match rate).
PREDICATE_MODULUS = 3


@dataclass(frozen=True)
class EstimatorContext:
    """Everything one estimator run may consume.

    Attributes:
        sampler: The cell's sampler, already fed the whole workload (for
            ``sharded:*`` variants ``sample()`` is the provably-global
            merged bottom-s sample).
        truth: Exact ground truth recomputed from the raw stream.
        windowed: Whether this cell targets the sliding-window
            population (decides which truth population applies).
        seed: The suite seed (deterministic auxiliary sketches hash
            under it).
    """

    sampler: Sampler
    truth: TruthContext
    windowed: bool
    seed: int


@dataclass(frozen=True)
class EstimatorOutcome:
    """What one estimator run produced, ready to become a record.

    Attributes:
        estimate: Point estimate.
        truth: The exact answer.
        error: Error under this estimator's metric (``error_kind``).
        error_kind: ``"relative"``, ``"abs"``, or ``"rank"``.
        ci_low: ~95 % interval lower bound.
        ci_high: ~95 % interval upper bound.
        within_ci: Whether the truth fell inside the interval.
    """

    estimate: float
    truth: float
    error: float
    error_kind: str
    ci_low: float
    ci_high: float
    within_ci: bool


@dataclass(frozen=True)
class AccuracyEstimator:
    """A registered accuracy estimator.

    Attributes:
        name: Registry key (and the record's ``estimator`` field).
        summary: One-line description (CLI listing, README).
        tolerance: Absolute ceiling on ``EstimatorOutcome.error`` the
            regression gate enforces.
        run: The query implementation.
        variant_filter: Optional predicate over the variant name; when
            given, the estimator only runs on variants it accepts (e.g.
            the stream-replay EH counter skips the sharded twins, whose
            replay would be bit-identical to the centralized cell's).
    """

    name: str
    summary: str
    tolerance: float
    run: Callable[[EstimatorContext], EstimatorOutcome]
    variant_filter: Optional[Callable[[str], bool]] = None

    def applies_to(self, variant_name: str) -> bool:
        """Whether this estimator runs on the given variant."""
        return self.variant_filter is None or self.variant_filter(variant_name)


_REGISTRY: dict[str, AccuracyEstimator] = {}


def register_estimator(estimator: AccuracyEstimator) -> AccuracyEstimator:
    """Add an estimator to the registry (last registration wins)."""
    _REGISTRY[estimator.name] = estimator
    return estimator


def accuracy_estimators() -> tuple[str, ...]:
    """All registered estimator names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_estimator(name: str) -> AccuracyEstimator:
    """Look up a registered estimator.

    Raises:
        AccuracyError: For an unknown name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AccuracyError(
            f"unknown accuracy estimator {name!r}; "
            f"expected one of {accuracy_estimators()}"
        ) from None


def _relative_error(estimate: float, truth: float) -> float:
    """|estimate − truth| / truth (truth floored at 1 to stay finite)."""
    return abs(estimate - truth) / max(truth, 1.0)


# ---------------------------------------------------------------------------
# Built-in estimators
# ---------------------------------------------------------------------------


def _run_distinct_kmv(ctx: EstimatorContext) -> EstimatorOutcome:
    """KMV distinct count over the (merged) bottom-s sample."""
    est = windowed_distinct(ctx.sampler)
    truth = float(ctx.truth.distinct_count(ctx.windowed))
    return EstimatorOutcome(
        estimate=est.estimate,
        truth=truth,
        error=_relative_error(est.estimate, truth),
        error_kind="relative",
        ci_low=est.low,
        ci_high=est.high,
        within_ci=bool(est.low <= truth <= est.high),
    )


def _run_distinct_eh(ctx: EstimatorContext) -> EstimatorOutcome:
    """Exponential-histogram distinct count, replaying the raw stream.

    An independent cross-check from a different estimator family: the
    stream is replayed through
    :class:`~repro.estimators.eh_distinct.SlidingDistinctCounterEH`
    (window-restricted when the cell is windowed), so a sampler bug that
    skews the bottom-s sample shows up as KMV and EH drifting apart in
    the same report.
    """
    counter = SlidingDistinctCounterEH(
        seed=ctx.seed, window=ctx.truth.window if ctx.windowed else 0
    )
    counter.add_batch(ctx.truth.items, slots=ctx.truth.slots)
    estimate = counter.distinct()
    truth = float(ctx.truth.distinct_count(ctx.windowed))
    band = counter.relative_band()
    low = estimate * 2.0**-band
    high = estimate * 2.0**band
    return EstimatorOutcome(
        estimate=estimate,
        truth=truth,
        error=_relative_error(estimate, truth),
        error_kind="relative",
        ci_low=low,
        ci_high=high,
        within_ci=bool(low <= truth <= high),
    )


def _run_heavy_hitters(ctx: EstimatorContext) -> EstimatorOutcome:
    """Per-group distinct-population shares under ``item % 8``.

    The record's error is the *worst* absolute share deviation across
    all groups (groups absent from the sample count as estimate 0); its
    estimate/truth pair is the top estimated group's share vs that same
    group's exact share.
    """
    hitters = windowed_heavy_hitters(
        ctx.sampler, key_fn=lambda element: int(element) % HH_MODULUS
    )
    true_shares = ctx.truth.group_shares(ctx.windowed, HH_MODULUS)
    estimated = np.zeros(HH_MODULUS)
    for hitter in hitters:
        estimated[int(hitter.key)] = hitter.share
    error = float(np.abs(estimated - true_shares).max())
    top = hitters[0]
    top_truth = float(true_shares[int(top.key)])
    covered = all(
        hitter.low <= float(true_shares[int(hitter.key)]) <= hitter.high
        for hitter in hitters
    )
    return EstimatorOutcome(
        estimate=top.share,
        truth=top_truth,
        error=error,
        error_kind="abs",
        ci_low=top.low,
        ci_high=top.high,
        within_ci=bool(covered),
    )


def _run_predicate_fraction(ctx: EstimatorContext) -> EstimatorOutcome:
    """Fraction of the distinct population with ``item % 3 == 0``."""
    est = windowed_fraction(
        ctx.sampler, lambda element: int(element) % PREDICATE_MODULUS == 0
    )
    truth = ctx.truth.fraction_where_mod(ctx.windowed, PREDICATE_MODULUS, 0)
    return EstimatorOutcome(
        estimate=est.value,
        truth=truth,
        error=abs(est.value - truth),
        error_kind="abs",
        ci_low=est.low,
        ci_high=est.high,
        within_ci=bool(est.low <= truth <= est.high),
    )


def _run_quantile_median(ctx: EstimatorContext) -> EstimatorOutcome:
    """Median element id of the distinct population, scored by rank.

    Value-space error is meaningless across workloads (universes
    differ), so the error is the *rank* deviation: where the estimated
    median actually sits in the population CDF, versus 0.5.  The DKW
    value band still provides the coverage bit.
    """
    est = windowed_quantile(ctx.sampler, 0.5)
    truth = ctx.truth.quantile_value(ctx.windowed, 0.5)
    rank = ctx.truth.rank_of(ctx.windowed, est.value)
    return EstimatorOutcome(
        estimate=est.value,
        truth=truth,
        error=abs(rank - 0.5),
        error_kind="rank",
        ci_low=est.low,
        ci_high=est.high,
        within_ci=bool(est.low <= truth <= est.high),
    )


def _centralized_only(variant_name: str) -> bool:
    """Skip sharded twins for stream-replay estimators (identical input)."""
    return not variant_name.startswith("sharded:")


register_estimator(
    AccuracyEstimator(
        name="distinct-kmv",
        summary="KMV distinct count from the merged bottom-s sample "
        "((s-1)/u, normal-approximation interval)",
        tolerance=0.40,
        run=_run_distinct_kmv,
    )
)
register_estimator(
    AccuracyEstimator(
        name="distinct-eh",
        summary="exponential-histogram distinct count replaying the raw "
        "stream (independent FM-family cross-check)",
        tolerance=0.60,
        run=_run_distinct_eh,
        variant_filter=_centralized_only,
    )
)
register_estimator(
    AccuracyEstimator(
        name="heavy-hitters",
        summary="per-group distinct-population shares (item % 8) with "
        "binomial frequency bounds; worst-group deviation",
        tolerance=0.15,
        run=_run_heavy_hitters,
    )
)
register_estimator(
    AccuracyEstimator(
        name="predicate-fraction",
        summary="fraction of distinct elements with item % 3 == 0 "
        "(binomial interval, rule-of-three edges)",
        tolerance=0.15,
        run=_run_predicate_fraction,
    )
)
register_estimator(
    AccuracyEstimator(
        name="quantile-median",
        summary="median distinct element id, scored by CDF rank "
        "deviation with a DKW value band",
        tolerance=0.20,
        run=_run_quantile_median,
    )
)
