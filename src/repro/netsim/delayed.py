"""Delay-tolerant delivery: the protocol beyond the paper's model.

The paper (Ch. 2) assumes synchronized clocks and ignores message delay,
which :class:`~repro.netsim.network.Network` models as synchronous
delivery.  Real deployments have in-flight messages.  This module provides
:class:`DelayedNetwork`, which queues messages per directed link and
delivers them on an explicit pump, preserving **per-link FIFO order** —
the standard TCP-like assumption.

What survives delay (verified by ``tests/test_delayed.py``):

* **Safety of the infinite-window protocol.**  Site thresholds only ever
  tighten, and stale thresholds are *larger* than fresh ones, so delay can
  only cause extra (harmless, dedup-able) reports — never a missed sample
  update.  After the network quiesces (all queues drained), the
  coordinator's sample equals the centralized bottom-s exactly.
* **Monotone convergence.**  Delivering any subset of queued messages
  never moves the coordinator's sample *away* from the oracle sample:
  the bottom-s store only refines toward the true bottom-s.

What does not: *continuous* exactness between pumps (the coordinator may
briefly lag new arrivals — the fundamental price of asynchrony), and the
sliding-window protocol's expiry bookkeeping assumes bounded delay (a
reply older than a window is useless).  Both are demonstrated in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Optional

import numpy as np

from ..errors import ProtocolError
from .message import COORDINATOR, Message, MessageKind
from .network import MessageStats, Network


__all__ = ["DelayedNetwork"]


class DelayedNetwork(Network):
    """A network that queues sends and delivers on demand.

    Drop-in replacement for :class:`Network` in the system facades::

        system = DistinctSamplerSystem(...)
        system.network.__class__  # Network — swap via rewire()

    Use :meth:`DelayedNetwork.rewire` to retrofit an existing system, or
    construct systems around a pre-built instance.  Messages accumulate in
    per-link FIFO queues; :meth:`pump` delivers them (optionally a random
    interleaving across links, preserving per-link order).

    Args:
        rng: Optional randomness for interleaved delivery; None makes
            :meth:`pump` drain links in address order (deterministic).
        record_kinds: Same contract as :class:`Network` — False skips the
            per-kind counters.
    """

    __slots__ = ("_queues", "_rng", "delivered_messages")

    synchronous = False  # sends queue; replies land only at pump time

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        record_kinds: bool = True,
    ) -> None:
        super().__init__(record_kinds=record_kinds)
        self._queues: dict[tuple[int, int], deque[Message]] = {}
        self._rng = rng
        self.delivered_messages = 0

    # -- sending (queues instead of dispatching) ---------------------------

    def send(
        self,
        src: int,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size_bytes: int = 16,
    ) -> None:
        """Count and enqueue one message; delivery happens at pump time.

        As in :class:`Network`, the counters move only after ``dst``
        validates, and the per-kind counter honors ``record_kinds``.
        """
        if dst not in self._nodes:
            raise ProtocolError(f"no node registered at address {dst}")
        stats = self.stats
        stats.total_messages += 1
        stats.total_bytes += size_bytes
        if dst == COORDINATOR:
            stats.site_to_coordinator += 1
        elif src == COORDINATOR:
            stats.coordinator_to_site += 1
        if self._record_kinds:
            stats.by_kind[kind] += 1
        self._queues.setdefault((src, dst), deque()).append(
            Message(src, dst, kind, payload, size_bytes)
        )

    # -- delivery -----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Messages currently queued on all links."""
        return sum(len(q) for q in self._queues.values())

    def pump(self, limit: Optional[int] = None) -> int:
        """Deliver up to ``limit`` queued messages (None = all currently
        queued, plus any they synchronously enqueue, until quiescent).

        Per-link FIFO order is always preserved; with an ``rng`` the
        interleaving across links is random, otherwise links drain in
        sorted address order.

        Returns:
            The number of messages delivered.
        """
        delivered = 0
        budget = float("inf") if limit is None else limit
        while delivered < budget:
            links = [link for link, q in self._queues.items() if q]
            if not links:
                break
            if self._rng is not None:
                link = links[int(self._rng.integers(0, len(links)))]
            else:
                link = min(links)
            message = self._queues[link].popleft()
            node = self._nodes[message.dst]
            node.handle_message(message, self)
            delivered += 1
            self.delivered_messages += 1
        return delivered

    def drop_all(self) -> int:
        """Discard every queued message (crash/partition injection).

        Returns:
            The number of messages dropped.
        """
        dropped = self.in_flight
        self._queues.clear()
        return dropped

    def drop_link(self, src: int, dst: int) -> int:
        """Discard queued messages on one directed link."""
        queue = self._queues.get((src, dst))
        if not queue:
            return 0
        dropped = len(queue)
        queue.clear()
        return dropped

    # -- retrofit -------------------------------------------------------------

    @classmethod
    def rewire(
        cls,
        system,
        rng: Optional[np.random.Generator] = None,
        **kwargs: Any,
    ):
        """Replace ``system.network`` with a delayed network in place.

        Re-registers the system's coordinator and sites; message counters
        restart at zero.

        Args:
            system: Any facade exposing ``network``, ``coordinator``, and
                ``sites`` (all of this package's systems do).
            rng: Optional randomness for interleaved delivery.
            **kwargs: Extra constructor arguments for ``cls`` (e.g. the
                chaos probabilities of
                :class:`~repro.netsim.chaos.ChaosNetwork`).

        Returns:
            The new :class:`DelayedNetwork` (also assigned to
            ``system.network``).
        """
        net = cls(rng=rng, **kwargs)
        net.register(COORDINATOR, system.coordinator)
        for site in system.sites:
            net.register(site.site_id, site)
        system.network = net
        return net
