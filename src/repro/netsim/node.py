"""Node protocols for the simulated distributed system.

A node is anything addressable on the :class:`~repro.netsim.network.Network`
that can receive messages.  Sites additionally observe stream elements;
slotted (sliding-window) sites are driven by slot-boundary ticks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .message import Message
    from .network import Network

__all__ = ["Node", "StreamSite", "SlottedSite"]


@runtime_checkable
class Node(Protocol):
    """Anything that can receive a message."""

    def handle_message(self, message: "Message", network: "Network") -> None:
        """Process an incoming message; may send replies via ``network``."""
        ...


@runtime_checkable
class StreamSite(Node, Protocol):
    """A site monitoring an infinite-window local stream."""

    site_id: int

    def observe(self, element: Any, network: "Network") -> None:
        """Process one local stream element."""
        ...


@runtime_checkable
class SlottedSite(Node, Protocol):
    """A site monitoring a time-slotted (sliding-window) local stream."""

    site_id: int

    def observe(self, element: Any, now: int, network: "Network") -> None:
        """Process one local element arriving in slot ``now``."""
        ...

    def tick(self, now: int, network: "Network") -> None:
        """Run slot-boundary maintenance (expiry, sample refresh) for ``now``."""
        ...
