"""Distributed-system simulation substrate.

Implements the paper's system model (Ch. 2): ``k`` sites plus one
coordinator on a synchronous, zero-delay network.  The network's purpose is
exact *message accounting* — the paper's performance metric.
"""

from .chaos import ChaosNetwork
from .clock import SlotClock
from .delayed import DelayedNetwork
from .message import COORDINATOR, Message, MessageKind
from .network import MessageStats, Network
from .node import Node, SlottedSite, StreamSite
from .trace import MessageTrace

__all__ = [
    "COORDINATOR",
    "Message",
    "MessageKind",
    "Network",
    "DelayedNetwork",
    "ChaosNetwork",
    "MessageStats",
    "Node",
    "StreamSite",
    "SlottedSite",
    "SlotClock",
    "MessageTrace",
]
