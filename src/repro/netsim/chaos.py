"""Chaos-mode transport: seeded fault injection over queued links.

:class:`ChaosNetwork` extends :class:`~repro.netsim.delayed.DelayedNetwork`
with the failure modes a real deployment sees — message drop, duplication,
reordering, and dead sites — all driven by one seeded generator, so every
fault schedule is exactly reproducible.

What the protocols guarantee under chaos (pinned by the stateful machine
in ``tests/test_properties.py``):

* **Duplication is free.**  Bottom-s stores are idempotent (re-offering a
  present element is a no-op), so duplicated reports never skew a sample.
* **Reordering and delay are safety-preserving.**  Site thresholds only
  ever tighten; a stale (reordered or delayed) threshold is *larger* than
  the fresh one, so misordering causes extra reports, never missed sample
  updates.
* **Dead sites are blackholes.**  A dead site receives nothing (messages
  addressed to it are dropped at enqueue or delivery time) and sends
  nothing.  An infinite-window site that observes no arrivals while dead
  misses only threshold refreshes — stale-high, hence safe — so with
  ``drop == 0`` the merged sample after quiescence is indistinguishable
  from a no-fault twin fed the same arrivals.
* **With ``drop > 0`` exactness is forfeited** (a lost REPORT is lost
  data), but safety is not: the coordinator's threshold never falls below
  the oracle's, and every sample member remains a genuine observed
  element under the true sampling hash.

Faults happen *in the network*: a chaos-dropped message was still sent
(the sender paid for it), so the message-cost counters include it; the
``dropped_messages`` / ``duplicated_messages`` / ``reordered_messages``
counters account for the injected faults separately.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from ..errors import ConfigurationError, ProtocolError
from .delayed import DelayedNetwork
from .message import MessageKind

__all__ = ["ChaosNetwork"]

#: Per-link override keys accepted by ``link_profiles``.
_PROFILE_KEYS = ("drop", "duplicate", "reorder")


def _checked_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must be a probability in [0, 1], got {value}"
        )
    return value


class ChaosNetwork(DelayedNetwork):
    """A delayed network with seeded drop/duplicate/reorder fault injection.

    Args:
        drop: Default per-message drop probability.
        duplicate: Default per-message duplication probability (the copy
            lands behind the original on the same link).
        reorder: Default per-delivery probability of serving a random
            queue position instead of the link's FIFO head.
        seed: Seed for the fault generator (independent of ``rng``, which
            keeps its :class:`DelayedNetwork` role of link interleaving).
        link_profiles: Optional per-link overrides — a mapping from a
            directed ``(src, dst)`` link to a mapping with any of the keys
            ``"drop"`` / ``"duplicate"`` / ``"reorder"``.
        rng: Optional randomness for link interleaving (see
            :class:`DelayedNetwork`).
        record_kinds: Same contract as :class:`~repro.netsim.network.Network`.

    Raises:
        ConfigurationError: For a probability outside ``[0, 1]`` or an
            unknown profile key.
    """

    __slots__ = (
        "drop",
        "duplicate",
        "reorder",
        "_chaos_rng",
        "_link_profiles",
        "_dead",
        "dropped_messages",
        "duplicated_messages",
        "reordered_messages",
    )

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        seed: int = 0,
        link_profiles: Optional[
            Mapping[tuple[int, int], Mapping[str, float]]
        ] = None,
        rng: Optional[np.random.Generator] = None,
        record_kinds: bool = True,
    ) -> None:
        super().__init__(rng=rng, record_kinds=record_kinds)
        self.drop = _checked_probability("drop", drop)
        self.duplicate = _checked_probability("duplicate", duplicate)
        self.reorder = _checked_probability("reorder", reorder)
        self._chaos_rng = np.random.default_rng(seed)
        profiles: dict[tuple[int, int], tuple[float, float, float]] = {}
        for link, overrides in (link_profiles or {}).items():
            unknown = set(overrides) - set(_PROFILE_KEYS)
            if unknown:
                raise ConfigurationError(
                    f"unknown link profile keys {sorted(unknown)}; "
                    f"expected a subset of {_PROFILE_KEYS}"
                )
            src, dst = link
            profiles[(int(src), int(dst))] = tuple(
                _checked_probability(
                    f"link {link} {key}",
                    overrides.get(key, getattr(self, key)),
                )
                for key in _PROFILE_KEYS
            )  # type: ignore[assignment]
        self._link_profiles = profiles
        self._dead: set[int] = set()
        self.dropped_messages = 0
        self.duplicated_messages = 0
        self.reordered_messages = 0

    # -- fault configuration -------------------------------------------------

    def link_profile(self, src: int, dst: int) -> tuple[float, float, float]:
        """The effective ``(drop, duplicate, reorder)`` for one link."""
        return self._link_profiles.get(
            (src, dst), (self.drop, self.duplicate, self.reorder)
        )

    def kill_site(self, address: int) -> None:
        """Blackhole ``address``: it sends nothing and receives nothing
        until revived.  Messages addressed to it — queued or future — are
        dropped (and counted in :attr:`dropped_messages`).

        Raises:
            ProtocolError: If no node is registered at ``address``.
        """
        if address not in self._nodes:
            raise ProtocolError(f"no node registered at address {address}")
        self._dead.add(address)

    def revive_site(self, address: int) -> None:
        """Bring a dead address back (idempotent).  Only messages sent
        after revival reach it — nothing dropped while dead is replayed."""
        self._dead.discard(address)

    @property
    def dead_sites(self) -> frozenset[int]:
        """Addresses currently blackholed."""
        return frozenset(self._dead)

    # -- sending -------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size_bytes: int = 16,
    ) -> None:
        """Count, then maybe drop or duplicate, then enqueue.

        Validation and counting follow :class:`DelayedNetwork` exactly
        (``dst`` must be registered; counters move only after validation),
        with one exception: a *dead* ``src`` sends nothing at all, so
        nothing is counted — a crashed node does not pay message costs.
        """
        if dst not in self._nodes:
            raise ProtocolError(f"no node registered at address {dst}")
        if src in self._dead:
            self.dropped_messages += 1
            return
        super().send(src, dst, kind, payload, size_bytes)
        queue = self._queues[(src, dst)]
        drop_p, dup_p, _ = self.link_profile(src, dst)
        if dst in self._dead or (
            drop_p > 0.0 and self._chaos_rng.random() < drop_p
        ):
            queue.pop()
            self.dropped_messages += 1
            return
        if dup_p > 0.0 and self._chaos_rng.random() < dup_p:
            queue.append(queue[-1])
            self.duplicated_messages += 1

    # -- delivery ------------------------------------------------------------

    def pump(self, limit: Optional[int] = None) -> int:
        """Deliver queued messages like :meth:`DelayedNetwork.pump`, with
        two chaos twists: a link may serve a random queue position instead
        of its FIFO head (per-link ``reorder`` probability), and messages
        whose destination is dead at delivery time are dropped.

        Returns:
            The number of messages actually delivered (drops excluded).
        """
        delivered = 0
        budget = float("inf") if limit is None else limit
        while delivered < budget:
            links = [link for link, q in self._queues.items() if q]
            if not links:
                break
            if self._rng is not None:
                link = links[int(self._rng.integers(0, len(links)))]
            else:
                link = min(links)
            queue = self._queues[link]
            _, _, reorder_p = self.link_profile(*link)
            if (
                reorder_p > 0.0
                and len(queue) > 1
                and self._chaos_rng.random() < reorder_p
            ):
                # Serve a random non-head position; the rest of the link
                # keeps its relative order.
                position = int(self._chaos_rng.integers(1, len(queue)))
                queue.rotate(-position)
                message = queue.popleft()
                queue.rotate(position)
                self.reordered_messages += 1
            else:
                message = queue.popleft()
            if message.dst in self._dead:
                self.dropped_messages += 1
                continue
            node = self._nodes[message.dst]
            node.handle_message(message, self)
            delivered += 1
            self.delivered_messages += 1
        return delivered
