"""Message types exchanged between sites and the coordinator.

The paper's cost model counts *messages*; each message carries a constant
number of machine words ("message size is constant, assuming that each
stream element can be stored in a constant number of bytes").  We model a
message as a small frozen record with a kind tag and a payload tuple, and
account both message counts and approximate byte sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["MessageKind", "Message", "COORDINATOR"]

#: Address of the coordinator node on the simulated network.
COORDINATOR: int = -1


class MessageKind(enum.Enum):
    """Wire-protocol message kinds across all implemented algorithms."""

    #: Infinite window, site -> coordinator: candidate element (Alg. 1 line 4).
    REPORT = "report"
    #: Infinite window, coordinator -> site: refreshed threshold u (Alg. 2 line 11).
    THRESHOLD = "threshold"
    #: Broadcast baseline, coordinator -> all sites: new global threshold u.
    BROADCAST = "broadcast"
    #: Sliding window, site -> coordinator: (element, expiry) (Alg. 3 lines 13/24).
    SW_REPORT = "sw_report"
    #: Sliding window, coordinator -> site: (sample, expiry) (Alg. 4 line 6).
    SW_SAMPLE = "sw_sample"
    #: Frequency-sensitive DRS baseline, site -> coordinator.
    DRS_REPORT = "drs_report"
    #: Frequency-sensitive DRS baseline, coordinator -> site.
    DRS_THRESHOLD = "drs_threshold"


@dataclass(frozen=True, slots=True)
class Message:
    """A single message on the simulated network.

    Attributes:
        src: Sender address (site index, or :data:`COORDINATOR`).
        dst: Receiver address.
        kind: Protocol message kind.
        payload: Kind-specific tuple (e.g. ``(element, hash)`` for REPORT).
        size_bytes: Approximate on-wire size; defaults to a constant-size
            envelope consistent with the paper's cost model.
    """

    src: int
    dst: int
    kind: MessageKind
    payload: Any
    size_bytes: int = 16
