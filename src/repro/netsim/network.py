"""Synchronous zero-delay message-passing network with cost accounting.

The continuous-distributed-monitoring model (paper Ch. 2) assumes
synchronized clocks and negligible delay, so delivery is immediate: sending
a message invokes the destination's handler before ``send`` returns.  The
network's job is therefore mostly *accounting* — every message is counted
(total, per kind, per direction) because message count is the paper's cost
metric.

Reentrancy is expected and safe: a coordinator handling a site's REPORT
sends a THRESHOLD reply from inside its handler.  Protocol nesting in this
package is bounded (request -> reply), so plain recursion suffices; a depth
guard catches accidental ping-pong loops in user extensions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import ProtocolError
from .message import COORDINATOR, Message, MessageKind
from .node import Node

__all__ = ["Network", "MessageStats"]

_MAX_DISPATCH_DEPTH = 8


@dataclass
class MessageStats:
    """Aggregated message-cost counters.

    Attributes:
        total_messages: All messages sent.
        total_bytes: Sum of message ``size_bytes``.
        site_to_coordinator: Messages from any site to the coordinator.
        coordinator_to_site: Messages from the coordinator to any site
            (broadcast counts once per destination, as in the paper).
        by_kind: Message counts keyed by :class:`MessageKind`.
    """

    total_messages: int = 0
    total_bytes: int = 0
    site_to_coordinator: int = 0
    coordinator_to_site: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def snapshot(self) -> "MessageStats":
        """Return an independent copy (for time-series sampling)."""
        copy = MessageStats(
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            site_to_coordinator=self.site_to_coordinator,
            coordinator_to_site=self.coordinator_to_site,
        )
        copy.by_kind = Counter(self.by_kind)
        return copy


class Network:
    """Routes messages between registered nodes and counts them.

    Args:
        record_kinds: If True (default), per-kind counters are maintained.
            Disable only in micro-benchmarks where Counter updates dominate.
    """

    __slots__ = ("stats", "_nodes", "_depth", "_record_kinds")

    #: Whether ``send`` delivers before returning.  Delay-tolerant
    #: subclasses override this to False; the vectorized ingestion fast
    #: paths consult it, because their same-slot dedup proofs rely on
    #: coordinator replies landing synchronously.
    synchronous = True

    def __init__(self, record_kinds: bool = True) -> None:
        self.stats = MessageStats()
        self._nodes: dict[int, Node] = {}
        self._depth = 0
        self._record_kinds = record_kinds

    # -- topology -----------------------------------------------------------

    def register(self, address: int, node: Node) -> None:
        """Attach ``node`` at ``address`` (site index or COORDINATOR).

        Raises:
            ProtocolError: If the address is already taken.
        """
        if address in self._nodes:
            raise ProtocolError(f"address {address} already registered")
        self._nodes[address] = node

    def node_at(self, address: int) -> Node:
        """Return the node registered at ``address``.

        Raises:
            ProtocolError: If no node is registered there.
        """
        try:
            return self._nodes[address]
        except KeyError:
            raise ProtocolError(f"no node registered at address {address}") from None

    @property
    def addresses(self) -> list[int]:
        """All registered addresses."""
        return list(self._nodes)

    # -- messaging ------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size_bytes: int = 16,
    ) -> None:
        """Send and synchronously deliver one message.

        A message is counted only once ``dst`` validates: a rejected send
        never happened on the wire, so it must not skew the paper's
        message-cost metric.

        Raises:
            ProtocolError: If ``dst`` is unregistered or dispatch nests
                deeper than the protocol bound (a ping-pong loop).
        """
        node = self._nodes.get(dst)
        if node is None:
            raise ProtocolError(f"no node registered at address {dst}")
        stats = self.stats
        stats.total_messages += 1
        stats.total_bytes += size_bytes
        if dst == COORDINATOR:
            stats.site_to_coordinator += 1
        elif src == COORDINATOR:
            stats.coordinator_to_site += 1
        if self._record_kinds:
            stats.by_kind[kind] += 1

        if self._depth >= _MAX_DISPATCH_DEPTH:
            raise ProtocolError(
                "message dispatch nested deeper than the protocol allows; "
                "likely an unbounded reply loop"
            )
        self._depth += 1
        try:
            node.handle_message(Message(src, dst, kind, payload, size_bytes), self)
        finally:
            self._depth -= 1

    def broadcast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: MessageKind,
        payload: Any,
        size_bytes: int = 16,
    ) -> int:
        """Send the same payload to every address in ``dsts``.

        Each destination counts as one message, matching the paper's model
        for Algorithm Broadcast.  Returns the number of messages sent.
        """
        count = 0
        for dst in dsts:
            self.send(src, dst, kind, payload, size_bytes)
            count += 1
        return count

    # -- introspection -------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero all counters (topology is preserved)."""
        self.stats = MessageStats()

    def snapshot(self) -> MessageStats:
        """Copy of the current counters (for time-series sampling)."""
        return self.stats.snapshot()

    def kind_count(self, kind: MessageKind) -> int:
        """Messages sent with ``kind`` so far."""
        return self.stats.by_kind.get(kind, 0)
