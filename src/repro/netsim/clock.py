"""Slot clock for time-based sliding windows.

Time is divided into integer slots, synchronized across all sites (paper
Ch. 4).  The clock only moves forward; systems consult it to decide element
expiry and to run slot-boundary maintenance.
"""

from __future__ import annotations

from ..errors import ProtocolError

__all__ = ["SlotClock"]


class SlotClock:
    """Monotonically advancing integer slot counter."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current slot number."""
        return self._now

    def advance_to(self, slot: int) -> None:
        """Move the clock to ``slot``.

        Raises:
            ProtocolError: If ``slot`` is in the past (time never rewinds).
        """
        if slot < self._now:
            raise ProtocolError(
                f"clock cannot move backwards: now={self._now}, requested={slot}"
            )
        self._now = slot

    def tick(self) -> int:
        """Advance one slot; returns the new slot number."""
        self._now += 1
        return self._now
