"""Time-series recording of network cost counters.

Figures 5.1 and 5.4 plot cumulative message counts against the number of
elements processed.  :class:`MessageTrace` samples the network counters at
caller-chosen checkpoints (e.g. every 1000 elements) without adding any
per-message overhead.
"""

from __future__ import annotations

from .network import Network

__all__ = ["MessageTrace"]


class MessageTrace:
    """Cumulative message-count series sampled at explicit checkpoints.

    Args:
        network: The network whose counters are sampled.
    """

    __slots__ = ("_network", "xs", "messages", "bytes")

    def __init__(self, network: Network) -> None:
        self._network = network
        self.xs: list[int] = []
        self.messages: list[int] = []
        self.bytes: list[int] = []

    def sample(self, x: int) -> None:
        """Record the current totals against position ``x``.

        Args:
            x: The x-axis value (typically: elements processed so far).
        """
        stats = self._network.stats
        self.xs.append(x)
        self.messages.append(stats.total_messages)
        self.bytes.append(stats.total_bytes)

    def series(self) -> list[tuple[int, int]]:
        """Return ``[(x, cumulative_messages), ...]``."""
        return list(zip(self.xs, self.messages))

    def __len__(self) -> int:
        return len(self.xs)
