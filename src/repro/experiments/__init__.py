"""Experimental harness reproducing the paper's Chapter 5."""

from .config import ExperimentConfig
from .registry import EXPERIMENTS, Experiment, get_experiment, run_experiment
from .report import FigureResult, Series
from .runner import (
    InfiniteRunResult,
    SlidingRunResult,
    checkpoints_for,
    prepare_stream,
    run_infinite_once,
    run_sliding_once,
)

__all__ = [
    "ExperimentConfig",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "run_experiment",
    "FigureResult",
    "Series",
    "InfiniteRunResult",
    "SlidingRunResult",
    "prepare_stream",
    "run_infinite_once",
    "run_sliding_once",
    "checkpoints_for",
]
