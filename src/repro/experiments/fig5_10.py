"""Figure 5.10 — sliding windows: communication vs number of sites.

Paper setup: window fixed at 100.  Expected shape: total messages grow
with the number of sites (more local samples change and expire across the
system), sub-linearly — the per-site report rate falls as each site's
share of the stream shrinks.
"""

from __future__ import annotations

from ._sliding import sliding_sweep
from .config import ExperimentConfig
from .report import FigureResult, Series

__all__ = ["run", "WINDOW", "SITE_COUNTS"]

WINDOW = 100
SITE_COUNTS = (2, 5, 10, 20, 50)


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.10 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        grid = sliding_sweep(config, family, SITE_COUNTS, [WINDOW])
        messages = [grid[(k, WINDOW)]["messages"] for k in SITE_COUNTS]
        results.append(
            FigureResult(
                figure_id="fig5_10",
                title=f"SW messages vs number of sites ({family})",
                x_label="k",
                y_label="total messages",
                series=[Series("messages", list(SITE_COUNTS), messages)],
                notes=(
                    f"w={WINDOW}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
