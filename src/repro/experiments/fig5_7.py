"""Figure 5.7 — sliding windows: per-site memory vs window size.

Paper setup: 10 sites.  Expected shape: memory grows *logarithmically* in
the window size (Lemma 10: expected candidate-set size ``H_{M_i}`` with
``M_i`` the live local distinct count, itself capped by the window).
"""

from __future__ import annotations

from ._sliding import sliding_sweep
from .config import ExperimentConfig
from .report import FigureResult, Series

__all__ = ["run", "NUM_SITES", "WINDOWS"]

NUM_SITES = 10
WINDOWS = (50, 100, 200, 400, 800, 1600)


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.7 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        grid = sliding_sweep(config, family, [NUM_SITES], WINDOWS)
        mem_mean = [grid[(NUM_SITES, w)]["mem_mean"] for w in WINDOWS]
        mem_max = [grid[(NUM_SITES, w)]["mem_max"] for w in WINDOWS]
        results.append(
            FigureResult(
                figure_id="fig5_7",
                title=f"SW per-site memory vs window size ({family})",
                x_label="w",
                y_label="candidate-set size |T_i|",
                series=[
                    Series("mean", list(WINDOWS), mem_mean),
                    Series("max", list(WINDOWS), mem_max),
                ],
                notes=(
                    f"k={NUM_SITES}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
