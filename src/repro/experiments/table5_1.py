"""Table 5.1 — dataset summary: elements and distinct elements.

Paper values: OC48 42,268,510 / 4,337,768; Enron 1,557,491 / 374,330.
Our calibrated generators reproduce the distinct *ratio* exactly at every
scale and the absolute counts at ``scale="paper"``; this experiment
materializes a stream at the configured scale and verifies the realized
distinct count equals the spec (the generator guarantees it exactly).
"""

from __future__ import annotations

import numpy as np

from ..streams.datasets import get_dataset
from .config import ExperimentConfig
from .report import FigureResult, Series

__all__ = ["run"]

#: Paper's Table 5.1, for reference columns.
PAPER_COUNTS = {
    "oc48": (42_268_510, 4_337_768),
    "enron": (1_557_491, 374_330),
}


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Regenerate Table 5.1 at ``config.scale``.

    Returns:
        A single :class:`FigureResult` whose rows are the datasets and
        whose columns are elements / distinct / realized ratio / paper
        ratio.
    """
    rng_pairs = list(zip(config.datasets, config.run_seeds(len(config.datasets))))
    families: list[str] = []
    n_elements: list[int] = []
    n_distinct: list[int] = []
    ratio: list[float] = []
    paper_ratio: list[float] = []
    for family, seq in rng_pairs:
        spec = get_dataset(family, config.scale)
        stream = spec.generate(np.random.default_rng(seq))
        realized = int(np.unique(stream).size)
        families.append(family)
        n_elements.append(int(stream.size))
        n_distinct.append(realized)
        ratio.append(realized / stream.size)
        pn, pd = PAPER_COUNTS[family]
        paper_ratio.append(pd / pn)
    result = FigureResult(
        figure_id="table5_1",
        title="Elements and distinct elements per dataset",
        x_label="dataset",
        y_label="counts",
        series=[
            Series("elements", families, n_elements),
            Series("distinct", families, n_distinct),
            Series("ratio", families, ratio),
            Series("paper_ratio", families, paper_ratio),
        ],
        notes=f"scale={config.scale} (paper-scale counts: "
        + ", ".join(f"{f}={PAPER_COUNTS[f]}" for f in families)
        + ")",
    )
    return [result]
