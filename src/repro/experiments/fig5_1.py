"""Figure 5.1 — messages vs. elements processed, per distribution method.

Paper setup: 5 sites, sample size 10; "flooding", "random", "round-robin".
Expected shape: curves are concave (message rate decays as the sample
stabilizes); flooding sends dramatically more messages than random/round-
robin (Observation 1: flooding makes every ``d_i = d``); random and
round-robin are nearly indistinguishable.
"""

from __future__ import annotations

from ..streams.partition import make_distributor
from ._common import averaged, run_rngs
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import checkpoints_for, prepare_stream, run_infinite_once

__all__ = ["run", "NUM_SITES", "SAMPLE_SIZE", "METHODS"]

NUM_SITES = 5
SAMPLE_SIZE = 10
METHODS = ("flooding", "random", "round_robin")


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.1 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        series: list[Series] = []
        xs_ref: list[int] = []
        for method in METHODS:
            per_run: list[list[float]] = []
            for rng, hash_seed in run_rngs(config):
                elements, hashes, _d = prepare_stream(
                    family, config.scale, rng, hash_seed
                )
                cps = checkpoints_for(len(elements))
                out = run_infinite_once(
                    elements,
                    hashes,
                    NUM_SITES,
                    SAMPLE_SIZE,
                    make_distributor(method, NUM_SITES),
                    rng,
                    hash_seed,
                    checkpoints=cps,
                )
                xs_ref = [x for x, _ in out.trace]
                per_run.append([float(m) for _, m in out.trace])
            series.append(Series(method, xs_ref, averaged(per_run)))
        results.append(
            FigureResult(
                figure_id="fig5_1",
                title=f"Messages by distribution method ({family})",
                x_label="elements",
                y_label="cumulative messages",
                series=series,
                notes=(
                    f"k={NUM_SITES}, s={SAMPLE_SIZE}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
