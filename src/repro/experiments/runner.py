"""Shared experiment drivers.

These functions contain the only performance-critical Python loops in the
package: they pre-hash entire streams with the vectorized ``mix64`` family
(DESIGN.md §6), convert NumPy arrays to plain lists (attribute lookups and
NumPy scalar boxing dominate otherwise), and then drive the systems through
their ``observe_hashed`` fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.api import make_sampler
from ..errors import ConfigurationError
from ..hashing.unit import unit_hash_array
from ..streams.datasets import get_dataset
from ..streams.partition import Distributor
from ..streams.slotted import SlottedArrivals

__all__ = [
    "InfiniteRunResult",
    "SlidingRunResult",
    "prepare_stream",
    "run_infinite_once",
    "run_sliding_once",
    "checkpoints_for",
]

#: Registry variant selectable by the historical system name in
#: :func:`run_infinite_once` (all construction goes through
#: :func:`repro.core.api.make_sampler`; no class branching here).
_INFINITE_VARIANTS = {
    "ours": "infinite",
    "broadcast": "broadcast",
}


@dataclass(slots=True)
class InfiniteRunResult:
    """Outcome of one infinite-window run.

    Attributes:
        messages: Final total message count.
        trace: ``(elements_processed, cumulative_messages)`` checkpoints.
        distinct_total: Distinct elements in the stream (d).
        distinct_per_site: Distinct elements observed per site (d_i).
        sample: Final sample at the coordinator.
    """

    messages: int
    trace: list[tuple[int, int]]
    distinct_total: int
    distinct_per_site: list[int]
    sample: list


@dataclass(slots=True)
class SlidingRunResult:
    """Outcome of one sliding-window run.

    Attributes:
        messages: Final total message count.
        mem_mean: Mean per-site candidate-set size over (site, slot) pairs.
        mem_max: Maximum per-site candidate-set size observed.
        num_slots: Timesteps simulated.
        mem_series: Optional per-slot mean memory (for time-series plots).
    """

    messages: int
    mem_mean: float
    mem_max: int
    num_slots: int
    mem_series: list[float] = field(default_factory=list)


def prepare_stream(
    family: str, scale: str, rng: np.random.Generator, hash_seed: int
) -> tuple[list[int], list[float], int]:
    """Generate and pre-hash a calibrated dataset stream.

    Args:
        family: Dataset family (``"oc48"``/``"enron"``).
        scale: Dataset scale.
        rng: Randomness for stream generation.
        hash_seed: Seed of the (mix64) hash family used by the systems.

    Returns:
        ``(elements, hashes, n_distinct)`` as plain Python lists plus the
        exact distinct count.
    """
    spec = get_dataset(family, scale)
    ids = spec.generate(rng)
    hashes = unit_hash_array(ids, hash_seed)
    return ids.tolist(), hashes.tolist(), spec.n_distinct


def checkpoints_for(n: int, count: int = 20) -> list[int]:
    """Evenly spaced message-trace checkpoints over an ``n``-element stream."""
    if n < 1:
        return []
    step = max(n // count, 1)
    points = list(range(step, n + 1, step))
    if points[-1] != n:
        points.append(n)
    return points


def run_infinite_once(
    elements: Sequence[int],
    hashes: Sequence[float],
    num_sites: int,
    sample_size: int,
    distributor: Distributor,
    rng: np.random.Generator,
    hash_seed: int,
    system: str = "ours",
    checkpoints: Optional[Sequence[int]] = None,
) -> InfiniteRunResult:
    """Drive one infinite-window system over a pre-hashed stream.

    Args:
        elements: Integer element ids.
        hashes: Matching unit hashes (``unit_hash_array(ids, hash_seed)``).
        num_sites: Number of sites k.
        sample_size: Sample size s.
        distributor: Element-to-site distribution strategy.
        rng: Randomness for the distributor.
        hash_seed: Hash-family seed (must match ``hashes``).
        system: ``"ours"`` (Algorithms 1-2) or ``"broadcast"``.
        checkpoints: Optional element counts at which to record cumulative
            messages (for Figures 5.1/5.4).

    Returns:
        An :class:`InfiniteRunResult`.
    """
    try:
        variant = _INFINITE_VARIANTS[system]
    except KeyError:
        raise ConfigurationError(
            f"unknown system {system!r}; expected one of {sorted(_INFINITE_VARIANTS)}"
        ) from None
    sys_ = make_sampler(
        variant,
        num_sites=num_sites,
        sample_size=sample_size,
        seed=hash_seed,
        algorithm="mix64",
    )
    n = len(elements)
    trace: list[tuple[int, int]] = []
    cps = list(checkpoints) if checkpoints else []
    cp_idx = 0

    if distributor.floods:
        sites = None
        d_per_site: list[int]
    else:
        assignments = distributor.assignments(n, rng)
        sites = assignments.tolist()

    stats = sys_.network.stats
    if sites is None:
        flood = sys_.flood_hashed
        for i in range(n):
            flood(elements[i], hashes[i])
            if cp_idx < len(cps) and (i + 1) == cps[cp_idx]:
                trace.append((i + 1, stats.total_messages))
                cp_idx += 1
    else:
        site_objs = sys_.sites
        network = sys_.network
        for i in range(n):
            site_objs[sites[i]].observe_hashed(elements[i], hashes[i], network)
            if cp_idx < len(cps) and (i + 1) == cps[cp_idx]:
                trace.append((i + 1, stats.total_messages))
                cp_idx += 1

    # Per-site distinct counts (for Observation 1 comparisons).
    if sites is None:
        d = len(set(elements))
        d_per_site = [d] * num_sites
    else:
        seen: list[set] = [set() for _ in range(num_sites)]
        for i in range(n):
            seen[sites[i]].add(elements[i])
        d_per_site = [len(s) for s in seen]
        d = len(set(elements))

    return InfiniteRunResult(
        messages=stats.total_messages,
        trace=trace,
        distinct_total=d,
        distinct_per_site=d_per_site,
        sample=list(sys_.sample().items),
    )


def run_sliding_once(
    elements: Sequence[int],
    num_sites: int,
    window: int,
    rng: np.random.Generator,
    hash_seed: int,
    per_slot: int = 5,
    sample_size: int = 1,
    coordinator_mode: str = "exact",
    structure: str = "treap",
    record_series: bool = False,
    variant: str = "auto",
) -> SlidingRunResult:
    """Drive one sliding-window system over a slotted arrival schedule.

    Args:
        elements: Integer element ids.
        num_sites: Number of sites k.
        window: Window size w in slots.
        rng: Randomness for the slotted site assignment.
        hash_seed: Hash-family seed.
        per_slot: Arrivals per timestep (paper uses 5).
        sample_size: Sample size s.
        coordinator_mode: ``"exact"``/``"paper"`` (s = 1 only).
        structure: Site candidate-set backing store (s = 1 only).
        record_series: Also record the per-slot mean memory series.
        variant: Registry variant to drive; ``"auto"`` preserves the
            figures' historical choice — Algorithms 3-4 for s = 1
            (``"sliding"``), the local-push bottom-s system otherwise
            (``"sliding-local-push"``).

    Returns:
        A :class:`SlidingRunResult` with message and memory metrics
        (Figures 5.7-5.10).
    """
    if variant == "auto":
        variant = "sliding" if sample_size == 1 else "sliding-local-push"
    sys_ = make_sampler(
        variant,
        num_sites=num_sites,
        window=window,
        sample_size=sample_size,
        seed=hash_seed,
        algorithm="mix64",
        structure=structure,
        coordinator_mode=coordinator_mode,
    )
    schedule = SlottedArrivals(elements, num_sites, per_slot, rng)
    sites = sys_.sites
    mem_sum = 0
    mem_count = 0
    mem_max = 0
    series: list[float] = []
    for slot, arrivals in schedule.slots():
        sys_.advance(slot)
        sys_.observe_batch(arrivals)
        slot_total = 0
        for site in sites:
            size = site.memory_size
            slot_total += size
            if size > mem_max:
                mem_max = size
        mem_sum += slot_total
        mem_count += len(sites)
        if record_series:
            series.append(slot_total / len(sites))
    return SlidingRunResult(
        messages=sys_.total_messages,
        mem_mean=mem_sum / max(mem_count, 1),
        mem_max=mem_max,
        num_slots=schedule.num_slots,
        mem_series=series,
    )
