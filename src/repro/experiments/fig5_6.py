"""Figure 5.6 — ours vs Algorithm Broadcast across dominate rates.

Paper setup: one site receives each element with probability ``alpha``
times that of any other site (Section 5.2).  As the dominate rate grows
the input approaches centralized monitoring and total messages fall; our
algorithm stays below Broadcast throughout.
"""

from __future__ import annotations

from ..streams.partition import make_distributor
from ._common import mean, run_rngs
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import prepare_stream, run_infinite_once

__all__ = ["run", "NUM_SITES", "SAMPLE_SIZE", "DOMINATE_RATES", "SYSTEMS"]

NUM_SITES = 100
SAMPLE_SIZE = 20
DOMINATE_RATES = (1, 10, 50, 100, 200, 500)
SYSTEMS = ("ours", "broadcast")


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.6 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        series: list[Series] = []
        for system in SYSTEMS:
            ys: list[float] = []
            for alpha in DOMINATE_RATES:
                finals: list[float] = []
                for rng, hash_seed in run_rngs(config):
                    elements, hashes, _d = prepare_stream(
                        family, config.scale, rng, hash_seed
                    )
                    out = run_infinite_once(
                        elements,
                        hashes,
                        NUM_SITES,
                        SAMPLE_SIZE,
                        make_distributor("dominate", NUM_SITES, alpha=alpha),
                        rng,
                        hash_seed,
                        system=system,
                    )
                    finals.append(float(out.messages))
                ys.append(mean(finals))
            series.append(Series(system, list(DOMINATE_RATES), ys))
        results.append(
            FigureResult(
                figure_id="fig5_6",
                title=f"Ours vs Broadcast across dominate rates ({family})",
                x_label="dominate rate",
                y_label="total messages",
                series=series,
                notes=(
                    f"k={NUM_SITES}, s={SAMPLE_SIZE}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
