"""Figure 5.8 — sliding windows: number of messages vs window size.

Paper setup: 10 sites.  Expected shape: messages *decrease* as the window
grows — a larger window holds more live distinct elements, so both sample
changes (new arrival beats the minimum) and sample expiries become rarer
(Lemma 11: per-slot report probability ~ b/M).
"""

from __future__ import annotations

from ._sliding import sliding_sweep
from .config import ExperimentConfig
from .report import FigureResult, Series

__all__ = ["run", "NUM_SITES", "WINDOWS"]

NUM_SITES = 10
WINDOWS = (50, 100, 200, 400, 800, 1600)


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.8 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        grid = sliding_sweep(config, family, [NUM_SITES], WINDOWS)
        messages = [grid[(NUM_SITES, w)]["messages"] for w in WINDOWS]
        results.append(
            FigureResult(
                figure_id="fig5_8",
                title=f"SW messages vs window size ({family})",
                x_label="w",
                y_label="total messages",
                series=[Series("messages", list(WINDOWS), messages)],
                notes=(
                    f"k={NUM_SITES}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
