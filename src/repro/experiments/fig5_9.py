"""Figure 5.9 — sliding windows: per-site memory vs number of sites.

Paper setup: window fixed at 100.  Expected shape: per-site memory falls
as sites are added — each site sees fewer elements per window, so its live
local distinct count ``M_i`` (and hence ``H_{M_i}``) shrinks.
"""

from __future__ import annotations

from ._sliding import sliding_sweep
from .config import ExperimentConfig
from .report import FigureResult, Series

__all__ = ["run", "WINDOW", "SITE_COUNTS"]

WINDOW = 100
SITE_COUNTS = (2, 5, 10, 20, 50)


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.9 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        grid = sliding_sweep(config, family, SITE_COUNTS, [WINDOW])
        mem_mean = [grid[(k, WINDOW)]["mem_mean"] for k in SITE_COUNTS]
        mem_max = [grid[(k, WINDOW)]["mem_max"] for k in SITE_COUNTS]
        results.append(
            FigureResult(
                figure_id="fig5_9",
                title=f"SW per-site memory vs number of sites ({family})",
                x_label="k",
                y_label="candidate-set size |T_i|",
                series=[
                    Series("mean", list(SITE_COUNTS), mem_mean),
                    Series("max", list(SITE_COUNTS), mem_max),
                ],
                notes=(
                    f"w={WINDOW}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
