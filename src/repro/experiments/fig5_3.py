"""Figure 5.3 — messages as a function of the number of sites k.

Paper setup: sample size 10.  Expected shape: flooding grows linearly in
``k`` (every site sees every distinct element: cost ``≈ 2ks ln(d/s)``);
random distribution is almost *independent* of ``k`` (Observation 1: the
per-site harmonic sums telescope — ``Σ_i ln(d_i/s)`` with ``d_i ≈ d/k``
barely moves as k grows).
"""

from __future__ import annotations

from ..streams.partition import make_distributor
from ._common import mean, run_rngs
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import prepare_stream, run_infinite_once

__all__ = ["run", "SITE_COUNTS", "SAMPLE_SIZE", "METHODS"]

SITE_COUNTS = (2, 5, 10, 20, 50)
SAMPLE_SIZE = 10
METHODS = ("flooding", "random")


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.3 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        series: list[Series] = []
        for method in METHODS:
            ys: list[float] = []
            for k in SITE_COUNTS:
                finals: list[float] = []
                for rng, hash_seed in run_rngs(config):
                    elements, hashes, _d = prepare_stream(
                        family, config.scale, rng, hash_seed
                    )
                    out = run_infinite_once(
                        elements,
                        hashes,
                        k,
                        SAMPLE_SIZE,
                        make_distributor(method, k),
                        rng,
                        hash_seed,
                    )
                    finals.append(float(out.messages))
                ys.append(mean(finals))
            series.append(Series(method, list(SITE_COUNTS), ys))
        results.append(
            FigureResult(
                figure_id="fig5_3",
                title=f"Messages vs number of sites ({family})",
                x_label="k",
                y_label="total messages",
                series=series,
                notes=(
                    f"s={SAMPLE_SIZE}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
