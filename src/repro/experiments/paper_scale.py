"""Chunked driver for paper-scale runs.

Table 5.1's OC48 trace is 42.3M elements; materializing Python lists of
that size costs gigabytes.  This driver keeps everything NumPy until the
last moment: the id stream is generated once (int64, ~340 MB at paper
scale), then hashed, assigned, and fed to the system in bounded chunks
through :meth:`~repro.core.infinite.DistinctSamplerSystem.process_batch`,
whose threshold pre-filter makes the steady-state per-element cost a few
vectorized operations.

Example::

    from repro.experiments.paper_scale import run_paper_scale
    result = run_paper_scale("enron", scale="paper", num_sites=5,
                             sample_size=10, seed=1)
    print(result.messages, result.elements_per_second)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.api import make_sampler
from ..hashing.unit import unit_hash_array
from ..streams.datasets import get_dataset

__all__ = ["PaperScaleResult", "run_paper_scale"]


@dataclass(frozen=True, slots=True)
class PaperScaleResult:
    """Outcome of a chunked large-scale run.

    Attributes:
        family: Dataset family.
        scale: Dataset scale actually used.
        n_elements: Stream length processed.
        n_distinct: Exact distinct count of the stream.
        messages: Total messages exchanged.
        sample: Final distinct sample at the coordinator.
        seconds: Wall-clock processing time (excluding generation).
        elements_per_second: Throughput.
        slow_path_elements: Elements that survived the threshold pre-filter.
    """

    family: str
    scale: str
    n_elements: int
    n_distinct: int
    messages: int
    sample: list
    seconds: float
    elements_per_second: float
    slow_path_elements: int


def run_paper_scale(
    family: str,
    scale: str = "paper",
    num_sites: int = 5,
    sample_size: int = 10,
    seed: int = 0,
    chunk_size: int = 1_000_000,
    progress: Optional[Callable[[str], None]] = None,
) -> PaperScaleResult:
    """Run the infinite-window system over a full-scale calibrated stream.

    Args:
        family: Dataset family (``"oc48"``/``"enron"``).
        scale: Dataset scale (defaults to the paper's exact sizes).
        num_sites: Number of sites k.
        sample_size: Sample size s.
        seed: Master seed (stream, assignment, and hash family).
        chunk_size: Elements per processing chunk (bounds peak Python
            object count).
        progress: Optional callback receiving one line per chunk.

    Returns:
        A :class:`PaperScaleResult`.
    """
    spec = get_dataset(family, scale)
    seq = np.random.SeedSequence(seed)
    stream_seq, assign_seq, hash_seq = seq.spawn(3)
    rng = np.random.default_rng(stream_seq)
    assign_rng = np.random.default_rng(assign_seq)
    hash_seed = int(hash_seq.generate_state(1)[0])

    if progress:
        progress(
            f"generating {spec.n_elements:,} elements "
            f"({spec.n_distinct:,} distinct) ..."
        )
    ids = spec.generate(rng)

    system = make_sampler(
        "infinite",
        num_sites=num_sites,
        sample_size=sample_size,
        seed=hash_seed,
        algorithm="mix64",
    )
    slow_total = 0
    started = time.perf_counter()
    for lo in range(0, ids.size, chunk_size):
        hi = min(lo + chunk_size, ids.size)
        chunk = ids[lo:hi]
        hashes = unit_hash_array(chunk, hash_seed)
        sites = assign_rng.integers(0, num_sites, chunk.size)
        slow_total += system.process_batch(sites, chunk.tolist(), hashes)
        if progress:
            elapsed = time.perf_counter() - started
            progress(
                f"  {hi:,}/{ids.size:,} elements, "
                f"{system.total_messages:,} messages, "
                f"{hi / max(elapsed, 1e-9) / 1e6:.1f}M el/s"
            )
    seconds = time.perf_counter() - started
    return PaperScaleResult(
        family=family,
        scale=scale,
        n_elements=int(ids.size),
        n_distinct=spec.n_distinct,
        messages=system.total_messages,
        sample=list(system.sample().items),
        seconds=seconds,
        elements_per_second=ids.size / max(seconds, 1e-9),
        slow_path_elements=slow_total,
    )
