"""Experiment configuration.

Every experiment takes an :class:`ExperimentConfig`; the CLI builds one
from flags.  ``scale`` selects the dataset profile (see
:mod:`repro.streams.datasets`); the paper's full sizes are available as
``scale="paper"`` but expect minutes-to-hours runtimes in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ConfigurationError
from ..streams.datasets import SCALES

__all__ = ["ExperimentConfig", "default_runs"]


def default_runs(scale: str) -> int:
    """Default repetition count per data point at a given scale.

    The paper averages 50 runs (infinite window) / 10 runs (sliding
    windows); we default lower at small scales to keep offline runtimes
    in seconds, and the CLI can raise it.
    """
    return {"tiny": 3, "small": 5, "medium": 3, "paper": 1}.get(scale, 3)


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Shared knobs for all experiments.

    Attributes:
        scale: Dataset scale name (see ``repro.streams.SCALES``).
        runs: Independent repetitions averaged per data point (0 = use
            :func:`default_runs` for the scale).
        seed: Master seed; per-run seeds derive from it via
            ``numpy.random.SeedSequence`` spawning.
        datasets: Dataset families to evaluate (paper uses both).
    """

    scale: str = "small"
    runs: int = 0
    seed: int = 20150525  # IPDPS 2015 start date, as good a default as any
    datasets: tuple[str, ...] = ("oc48", "enron")

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ConfigurationError(
                f"unknown scale {self.scale!r}; expected one of {SCALES}"
            )
        if self.runs < 0:
            raise ConfigurationError(f"runs must be >= 0, got {self.runs}")

    @property
    def effective_runs(self) -> int:
        """The repetition count actually used."""
        return self.runs if self.runs > 0 else default_runs(self.scale)

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with fields replaced."""
        return replace(self, **kwargs)

    def run_seeds(self, count: int | None = None) -> list[np.random.SeedSequence]:
        """Independent per-run seed sequences derived from the master seed."""
        n = count if count is not None else self.effective_runs
        return np.random.SeedSequence(self.seed).spawn(n)
