"""Figure 5.5 — ours vs Algorithm Broadcast across sample sizes.

Paper setup: as Figure 5.4 (k=100, random distribution) but sweeping the
sample size.  Both algorithms scale linearly in ``s``; Broadcast's slope
is considerably higher (each sample change broadcasts to all k sites).
"""

from __future__ import annotations

from ..streams.partition import make_distributor
from ._common import mean, run_rngs
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import prepare_stream, run_infinite_once

__all__ = ["run", "NUM_SITES", "SAMPLE_SIZES", "SYSTEMS"]

NUM_SITES = 100
SAMPLE_SIZES = (1, 2, 5, 10, 20, 50)
SYSTEMS = ("ours", "broadcast")


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.5 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        series: list[Series] = []
        for system in SYSTEMS:
            ys: list[float] = []
            for s in SAMPLE_SIZES:
                finals: list[float] = []
                for rng, hash_seed in run_rngs(config):
                    elements, hashes, _d = prepare_stream(
                        family, config.scale, rng, hash_seed
                    )
                    out = run_infinite_once(
                        elements,
                        hashes,
                        NUM_SITES,
                        s,
                        make_distributor("random", NUM_SITES),
                        rng,
                        hash_seed,
                        system=system,
                    )
                    finals.append(float(out.messages))
                ys.append(mean(finals))
            series.append(Series(system, list(SAMPLE_SIZES), ys))
        results.append(
            FigureResult(
                figure_id="fig5_5",
                title=f"Ours vs Broadcast across sample sizes ({family})",
                x_label="s",
                y_label="total messages",
                series=series,
                notes=(
                    f"k={NUM_SITES}, random distribution, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
