"""Figure 5.2 — messages as a function of the sample size s.

Paper setup: 5 sites; message complexity grows almost linearly in ``s``
(the bound is ``2ks(1 + ln(d/s))``), with distribution-dependent slopes —
flooding's slope is roughly ``k``× the random slope.
"""

from __future__ import annotations

from ..streams.partition import make_distributor
from ._common import mean, run_rngs
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import prepare_stream, run_infinite_once

__all__ = ["run", "NUM_SITES", "SAMPLE_SIZES", "METHODS"]

NUM_SITES = 5
SAMPLE_SIZES = (1, 2, 5, 10, 20, 50)
METHODS = ("flooding", "random")


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.2 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        series: list[Series] = []
        for method in METHODS:
            ys: list[float] = []
            for s in SAMPLE_SIZES:
                finals: list[float] = []
                for rng, hash_seed in run_rngs(config):
                    elements, hashes, _d = prepare_stream(
                        family, config.scale, rng, hash_seed
                    )
                    out = run_infinite_once(
                        elements,
                        hashes,
                        NUM_SITES,
                        s,
                        make_distributor(method, NUM_SITES),
                        rng,
                        hash_seed,
                    )
                    finals.append(float(out.messages))
                ys.append(mean(finals))
            series.append(Series(method, list(SAMPLE_SIZES), ys))
        results.append(
            FigureResult(
                figure_id="fig5_2",
                title=f"Messages vs sample size ({family})",
                x_label="s",
                y_label="total messages",
                series=series,
                notes=(
                    f"k={NUM_SITES}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
