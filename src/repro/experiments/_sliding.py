"""Shared sweep driver for the sliding-window figures (5.7-5.10)."""

from __future__ import annotations

from typing import Sequence

from ..streams.datasets import get_dataset
from ._common import mean, run_rngs
from .config import ExperimentConfig
from .runner import run_sliding_once

__all__ = ["sliding_sweep", "PER_SLOT"]

#: Paper: "in each timestep, we assign 5 elements to 5 sites chosen randomly".
PER_SLOT = 5


def sliding_sweep(
    config: ExperimentConfig,
    family: str,
    num_sites_values: Sequence[int],
    window_values: Sequence[int],
    variant: str = "auto",
) -> dict[tuple[int, int], dict[str, float]]:
    """Run a sliding-window sampler variant over a (k, w) grid.

    Args:
        config: Experiment configuration.
        family: Dataset family.
        num_sites_values: k values to sweep.
        window_values: w values to sweep.
        variant: Registry variant passed to
            :func:`~repro.experiments.runner.run_sliding_once`
            (``"auto"`` keeps the figures' historical system choice).

    Returns:
        ``{(k, w): {"messages": ..., "mem_mean": ..., "mem_max": ...}}``
        with each metric averaged over ``config.effective_runs`` runs.
    """
    spec = get_dataset(family, config.scale)
    grid: dict[tuple[int, int], dict[str, float]] = {}
    for k in num_sites_values:
        for w in window_values:
            messages: list[float] = []
            mem_means: list[float] = []
            mem_maxes: list[float] = []
            for rng, hash_seed in run_rngs(config):
                elements = spec.generate(rng).tolist()
                out = run_sliding_once(
                    elements,
                    num_sites=k,
                    window=w,
                    rng=rng,
                    hash_seed=hash_seed,
                    per_slot=PER_SLOT,
                    variant=variant,
                )
                messages.append(float(out.messages))
                mem_means.append(out.mem_mean)
                mem_maxes.append(float(out.mem_max))
            grid[(k, w)] = {
                "messages": mean(messages),
                "mem_mean": mean(mem_means),
                "mem_max": mean(mem_maxes),
            }
    return grid
