"""Result containers and paper-style reporting.

Each experiment produces a :class:`FigureResult` holding one or more named
:class:`Series` — the exact rows/curves the corresponding paper figure
plots.  Rendering is plain ASCII (the environment is headless); ``to_csv``
emits the same data for external plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "FigureResult"]


@dataclass(slots=True)
class Series:
    """One curve of a figure.

    Attributes:
        name: Legend label (e.g. ``"flooding"``).
        xs: X coordinates.
        ys: Y values (means over runs).
        errs: Optional per-point spread (std over runs).
    """

    name: str
    xs: list
    ys: list
    errs: list | None = None

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if self.errs is not None and len(self.errs) != len(self.xs):
            raise ValueError(f"series {self.name!r}: errs length mismatch")


@dataclass(slots=True)
class FigureResult:
    """All series reproducing one paper table/figure.

    Attributes:
        figure_id: e.g. ``"fig5_4"`` or ``"table5_1"``.
        title: The paper's caption, abbreviated.
        x_label: X-axis meaning.
        y_label: Y-axis meaning.
        series: The curves.
        notes: Free-form provenance (scale, runs, parameters).
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def series_by_name(self, name: str) -> Series:
        """Look up a series by its legend label.

        Raises:
            KeyError: If absent.
        """
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"{self.figure_id}: no series named {name!r}")

    def render(self) -> str:
        """ASCII table: one row per x, one column per series."""
        out = io.StringIO()
        out.write(f"== {self.figure_id}: {self.title} ==\n")
        if self.notes:
            out.write(f"   {self.notes}\n")
        if not self.series:
            out.write("   (no data)\n")
            return out.getvalue()
        names = [s.name for s in self.series]
        xs = self.series[0].xs
        header = [self.x_label] + names
        rows: list[list[str]] = []
        for i, x in enumerate(xs):
            row = [_fmt(x)]
            for s in self.series:
                row.append(_fmt(s.ys[i]) if i < len(s.ys) else "-")
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
        ]
        out.write(
            "   " + "  ".join(h.rjust(w) for h, w in zip(header, widths)) + "\n"
        )
        out.write("   " + "  ".join("-" * w for w in widths) + "\n")
        for row in rows:
            out.write(
                "   " + "  ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n"
            )
        out.write(f"   (y = {self.y_label})\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV with columns ``x, <series...>``."""
        out = io.StringIO()
        names = [s.name for s in self.series]
        out.write(",".join([self.x_label.replace(",", " ")] + names) + "\n")
        if self.series:
            for i, x in enumerate(self.series[0].xs):
                row = [str(x)] + [
                    str(s.ys[i]) if i < len(s.ys) else "" for s in self.series
                ]
                out.write(",".join(row) + "\n")
        return out.getvalue()


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    if isinstance(v, int) and abs(v) >= 1000:
        return f"{v:,d}"
    return str(v)
