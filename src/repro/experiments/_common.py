"""Internal helpers shared by the figure modules."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .config import ExperimentConfig

__all__ = ["mean", "averaged", "run_rngs", "hash_seed_from", "drive_slotted"]


def drive_slotted(sampler, schedule) -> None:
    """Drive any :class:`~repro.core.protocol.Sampler` through a
    :class:`~repro.streams.slotted.SlottedArrivals` schedule using the
    unified lifecycle (``advance`` + ``observe_batch``)."""
    for slot, arrivals in schedule.slots():
        sampler.advance(slot)
        sampler.observe_batch(arrivals)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (plain, no numpy boxing)."""
    return sum(values) / len(values)


def averaged(per_run: Sequence[Sequence[float]]) -> list[float]:
    """Element-wise mean across runs: ``per_run[run][point] -> [point]``."""
    n_points = len(per_run[0])
    for series in per_run:
        if len(series) != n_points:
            raise ValueError("runs produced different numbers of points")
    return [mean([series[i] for series in per_run]) for i in range(n_points)]


def run_rngs(
    config: ExperimentConfig,
) -> list[tuple[np.random.Generator, int]]:
    """One ``(rng, hash_seed)`` pair per run.

    Each run gets an independent stream/assignment RNG *and* an independent
    hash function, mirroring the paper's fully independent repetitions.
    """
    pairs = []
    for seq in config.run_seeds():
        children = seq.spawn(2)
        rng = np.random.default_rng(children[0])
        hash_seed = int(children[1].generate_state(1)[0])
        pairs.append((rng, hash_seed))
    return pairs


def hash_seed_from(seq: np.random.SeedSequence) -> int:
    """Derive a 32-bit hash seed from a seed sequence."""
    return int(seq.generate_state(1)[0])
