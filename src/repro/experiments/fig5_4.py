"""Figure 5.4 — our algorithm vs Algorithm Broadcast over the stream.

Paper setup: 100 sites, sample size 20, random distribution.  Expected
shape: Broadcast requires dramatically more messages — every change of the
global threshold costs ``k`` broadcast messages, and the sample changes
``Θ(s ln d)`` times, so Broadcast pays ``Θ(ks ln d)`` on the coordinator
side alone while saving only the per-report reply.
"""

from __future__ import annotations

from ..streams.partition import make_distributor
from ._common import averaged, run_rngs
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import checkpoints_for, prepare_stream, run_infinite_once

__all__ = ["run", "NUM_SITES", "SAMPLE_SIZE", "SYSTEMS"]

NUM_SITES = 100
SAMPLE_SIZE = 20
SYSTEMS = ("ours", "broadcast")


def run(config: ExperimentConfig) -> list[FigureResult]:
    """Reproduce Figure 5.4 (one result per dataset family)."""
    results = []
    for family in config.datasets:
        series: list[Series] = []
        xs_ref: list[int] = []
        for system in SYSTEMS:
            per_run: list[list[float]] = []
            for rng, hash_seed in run_rngs(config):
                elements, hashes, _d = prepare_stream(
                    family, config.scale, rng, hash_seed
                )
                cps = checkpoints_for(len(elements))
                out = run_infinite_once(
                    elements,
                    hashes,
                    NUM_SITES,
                    SAMPLE_SIZE,
                    make_distributor("random", NUM_SITES),
                    rng,
                    hash_seed,
                    system=system,
                    checkpoints=cps,
                )
                xs_ref = [x for x, _ in out.trace]
                per_run.append([float(m) for _, m in out.trace])
            series.append(Series(system, xs_ref, averaged(per_run)))
        results.append(
            FigureResult(
                figure_id="fig5_4",
                title=f"Ours vs Algorithm Broadcast ({family})",
                x_label="elements",
                y_label="cumulative messages",
                series=series,
                notes=(
                    f"k={NUM_SITES}, s={SAMPLE_SIZE}, random distribution, "
                    f"scale={config.scale}, runs={config.effective_runs}"
                ),
            )
        )
    return results
