"""Experiment registry: ids → runners.

Every paper table/figure plus the ablations is registered here; the CLI
and the benchmark suite resolve experiments by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError
from . import (
    ablations,
    fig5_1,
    fig5_2,
    fig5_3,
    fig5_4,
    fig5_5,
    fig5_6,
    fig5_7,
    fig5_8,
    fig5_9,
    fig5_10,
    table5_1,
)
from .config import ExperimentConfig
from .report import FigureResult

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True, slots=True)
class Experiment:
    """A registered experiment.

    Attributes:
        experiment_id: Registry key (e.g. ``"fig5_4"``).
        description: One-line summary of what it reproduces.
        runner: Callable producing the figure results.
    """

    experiment_id: str
    description: str
    runner: Callable[[ExperimentConfig], list[FigureResult]]


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e
    for e in [
        Experiment(
            "table5_1",
            "Dataset summary: elements and distinct elements",
            table5_1.run,
        ),
        Experiment(
            "fig5_1",
            "Messages vs elements: flooding / random / round-robin (k=5, s=10)",
            fig5_1.run,
        ),
        Experiment(
            "fig5_2", "Messages vs sample size s (k=5)", fig5_2.run
        ),
        Experiment(
            "fig5_3", "Messages vs number of sites k (s=10)", fig5_3.run
        ),
        Experiment(
            "fig5_4",
            "Ours vs Algorithm Broadcast over the stream (k=100, s=20)",
            fig5_4.run,
        ),
        Experiment(
            "fig5_5", "Ours vs Broadcast across sample sizes (k=100)", fig5_5.run
        ),
        Experiment(
            "fig5_6",
            "Ours vs Broadcast across dominate rates (k=100, s=20)",
            fig5_6.run,
        ),
        Experiment(
            "fig5_7", "Sliding windows: per-site memory vs window size (k=10)",
            fig5_7.run,
        ),
        Experiment(
            "fig5_8", "Sliding windows: messages vs window size (k=10)", fig5_8.run
        ),
        Experiment(
            "fig5_9", "Sliding windows: per-site memory vs sites (w=100)",
            fig5_9.run,
        ),
        Experiment(
            "fig5_10", "Sliding windows: messages vs sites (w=100)", fig5_10.run
        ),
        Experiment(
            "ablation_theory",
            "Measured messages vs Lemma 4 upper / Lemma 9 lower bounds",
            ablations.run_theory,
        ),
        Experiment(
            "ablation_sync",
            "Sliding windows: lazy feedback vs local push",
            ablations.run_sync,
        ),
        Experiment(
            "ablation_structure",
            "Treap vs sorted-list candidate sets (equivalence)",
            ablations.run_structure,
        ),
        Experiment(
            "ablation_hash",
            "Hash algorithm comparison (murmur2/murmur3/mix64)",
            ablations.run_hash,
        ),
        Experiment(
            "ablation_cache",
            "Duplicate-suppression caches: messages vs cache size",
            ablations.run_cache,
        ),
        Experiment(
            "ablation_obs1",
            "Observation 1 vs Lemma 4 vs measured messages",
            ablations.run_obs1,
        ),
    ]
}


def get_experiment(experiment_id: str) -> Experiment:
    """Resolve an experiment by id.

    Raises:
        ConfigurationError: For unknown ids.
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(
    experiment_id: str, config: ExperimentConfig
) -> list[FigureResult]:
    """Run a registered experiment."""
    return get_experiment(experiment_id).runner(config)
