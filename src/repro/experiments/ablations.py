"""Ablation experiments beyond the paper's figures.

Four studies probing the design decisions DESIGN.md calls out:

* ``ablation_theory`` — measured messages vs the Lemma 4 upper bound,
  Observation 1 per-site bound, and Lemma 9 lower bound, on the
  adversarial all-distinct flooded input where the bounds are exact.
  Validates the "optimal within a factor of four" claim empirically.
* ``ablation_sync`` — value of lazy feedback in sliding windows: the
  paper's lazy protocol (exact and literal-paper coordinator modes)
  versus the no-feedback local-push variant.
* ``ablation_structure`` — treap vs sorted-list candidate sets: message
  counts must agree *exactly* (the structures are behaviourally
  equivalent); wall-clock differences are reported by the benchmark
  suite instead.
* ``ablation_hash`` — murmur2 vs murmur3 vs mix64: message counts are
  statistically indistinguishable (any good hash family looks uniform).
"""

from __future__ import annotations

import numpy as np

from ..analysis.bounds import (
    lower_bound_total,
    upper_bound_observation1,
    upper_bound_total,
)

# upper_bound_observation1/upper_bound_total also feed run_obs1 below.
from ..core.api import make_sampler
from ..hashing.unit import UnitHasher
from ..streams.adversarial import adversarial_input
from ..streams.datasets import get_dataset
from ..streams.partition import make_distributor
from ._common import mean, run_rngs
from ._sliding import PER_SLOT
from .config import ExperimentConfig
from .report import FigureResult, Series
from .runner import prepare_stream, run_infinite_once, run_sliding_once

__all__ = [
    "run_theory",
    "run_sync",
    "run_structure",
    "run_hash",
    "run_cache",
    "run_obs1",
]

_THEORY_SITES = 5
_THEORY_SAMPLE = 10
_THEORY_DS = (200, 500, 1000, 2000, 5000, 10000)


def run_theory(config: ExperimentConfig) -> list[FigureResult]:
    """Measured messages vs theoretical bounds on the adversarial input."""
    k, s = _THEORY_SITES, _THEORY_SAMPLE
    measured: list[float] = []
    upper: list[float] = []
    lower: list[float] = []
    for d in _THEORY_DS:
        elements, distributor = adversarial_input(d, k)
        finals: list[float] = []
        for rng, hash_seed in run_rngs(config):
            from ..hashing.unit import unit_hash_array

            hashes = unit_hash_array(elements, hash_seed)
            out = run_infinite_once(
                elements.tolist(),
                hashes.tolist(),
                k,
                s,
                distributor,
                rng,
                hash_seed,
            )
            finals.append(float(out.messages))
        measured.append(mean(finals))
        upper.append(upper_bound_total(k, s, d))
        lower.append(lower_bound_total(k, s, d))
    return [
        FigureResult(
            figure_id="ablation_theory",
            title="Measured messages vs Lemma 4 / Lemma 9 bounds",
            x_label="d",
            y_label="messages",
            series=[
                Series("measured", list(_THEORY_DS), measured),
                Series("upper_lemma4", list(_THEORY_DS), upper),
                Series("lower_lemma9", list(_THEORY_DS), lower),
                Series(
                    "measured/lower",
                    list(_THEORY_DS),
                    [m / lo for m, lo in zip(measured, lower)],
                ),
            ],
            notes=(
                f"k={k}, s={s}, adversarial all-distinct flooded input, "
                f"runs={config.effective_runs}; on this input the algorithm "
                "achieves its upper bound, so measured/lower ≈ 4 ± run noise "
                "(the paper's factor-4 optimality gap)"
            ),
        )
    ]


_SYNC_WINDOWS = (50, 100, 200, 400)
_SYNC_SITES = 10


def run_sync(config: ExperimentConfig) -> list[FigureResult]:
    """Lazy feedback (exact/paper) vs no-feedback local push (messages)."""
    results = []
    for family in config.datasets:
        spec = get_dataset(family, config.scale)
        lazy_exact: list[float] = []
        lazy_paper: list[float] = []
        push: list[float] = []
        for w in _SYNC_WINDOWS:
            per_mode: dict[str, list[float]] = {"exact": [], "paper": [], "push": []}
            for rng_state, hash_seed in run_rngs(config):
                elements = spec.generate(rng_state).tolist()
                # Identical schedules per mode: re-seed the assignment rng.
                seed_bits = int(rng_state.integers(0, 2**31))
                for mode in ("exact", "paper"):
                    rng = np.random.default_rng(seed_bits)
                    out = run_sliding_once(
                        elements,
                        _SYNC_SITES,
                        w,
                        rng,
                        hash_seed,
                        per_slot=PER_SLOT,
                        coordinator_mode=mode,
                    )
                    per_mode[mode].append(float(out.messages))
                rng = np.random.default_rng(seed_bits)
                out = run_sliding_once(
                    elements,
                    _SYNC_SITES,
                    w,
                    rng,
                    hash_seed,
                    per_slot=PER_SLOT,
                    variant="sliding-local-push",
                )
                per_mode["push"].append(float(out.messages))
            lazy_exact.append(mean(per_mode["exact"]))
            lazy_paper.append(mean(per_mode["paper"]))
            push.append(mean(per_mode["push"]))
        results.append(
            FigureResult(
                figure_id="ablation_sync",
                title=f"Sliding-window sync strategies ({family})",
                x_label="w",
                y_label="total messages",
                series=[
                    Series("lazy_exact", list(_SYNC_WINDOWS), lazy_exact),
                    Series("lazy_paper", list(_SYNC_WINDOWS), lazy_paper),
                    Series("local_push", list(_SYNC_WINDOWS), push),
                ],
                notes=(
                    f"k={_SYNC_SITES}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results


_STRUCT_WINDOWS = (100, 400)
_STRUCT_SITES = 10


def run_structure(config: ExperimentConfig) -> list[FigureResult]:
    """Treap vs sorted-list candidate sets: behavioural equivalence."""
    results = []
    for family in config.datasets:
        spec = get_dataset(family, config.scale)
        treap_msgs: list[float] = []
        sorted_msgs: list[float] = []
        for w in _STRUCT_WINDOWS:
            per_structure: dict[str, list[float]] = {"treap": [], "sorted": []}
            for rng_state, hash_seed in run_rngs(config):
                elements = spec.generate(rng_state).tolist()
                seed_bits = rng_state.integers(0, 2**31)
                for structure in ("treap", "sorted"):
                    rng = np.random.default_rng(seed_bits)
                    out = run_sliding_once(
                        elements,
                        _STRUCT_SITES,
                        w,
                        rng,
                        hash_seed,
                        per_slot=PER_SLOT,
                        structure=structure,
                    )
                    per_structure[structure].append(float(out.messages))
            treap_msgs.append(mean(per_structure["treap"]))
            sorted_msgs.append(mean(per_structure["sorted"]))
        results.append(
            FigureResult(
                figure_id="ablation_structure",
                title=f"Treap vs sorted-list candidate sets ({family})",
                x_label="w",
                y_label="total messages (must be identical)",
                series=[
                    Series("treap", list(_STRUCT_WINDOWS), treap_msgs),
                    Series("sorted", list(_STRUCT_WINDOWS), sorted_msgs),
                ],
                notes=(
                    f"k={_STRUCT_SITES}, scale={config.scale}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results


_CACHE_SIZES = (0, 4, 16, 64, 256)
_CACHE_SITES = 5
_CACHE_SAMPLE = 20


def run_cache(config: ExperimentConfig) -> list[FigureResult]:
    """Duplicate-suppression caches: messages (and suppressed reports) vs
    cache size.

    Quantifies the repeat-report cost inherent to Algorithms 1-2 at
    ``s > 1`` (cache 0 = the paper's algorithm) and how little site
    memory removes it.  The sample itself is identical at every cache
    size — exactness is untouched.
    """
    from ..hashing.unit import unit_hash_array

    results = []
    for family in config.datasets:
        spec = get_dataset(family, config.scale)
        messages: list[float] = []
        suppressed: list[float] = []
        for cache_size in _CACHE_SIZES:
            per_run_m: list[float] = []
            per_run_s: list[float] = []
            for rng, hash_seed in run_rngs(config):
                ids = spec.generate(rng)
                hashes = unit_hash_array(ids, hash_seed).tolist()
                elements = ids.tolist()
                sites = rng.integers(0, _CACHE_SITES, len(elements)).tolist()
                system = make_sampler(
                    "caching",
                    num_sites=_CACHE_SITES,
                    sample_size=_CACHE_SAMPLE,
                    cache_size=cache_size,
                    seed=hash_seed,
                    algorithm="mix64",
                )
                site_objs = system.sites
                network = system.network
                for element, h, site in zip(elements, hashes, sites):
                    site_objs[site].observe_hashed(element, h, network)
                per_run_m.append(float(system.total_messages))
                per_run_s.append(float(system.total_suppressed))
            messages.append(mean(per_run_m))
            suppressed.append(mean(per_run_s))
        results.append(
            FigureResult(
                figure_id="ablation_cache",
                title=f"Duplicate-suppression cache sweep ({family})",
                x_label="cache size",
                y_label="total messages",
                series=[
                    Series("messages", list(_CACHE_SIZES), messages),
                    Series("suppressed_reports", list(_CACHE_SIZES), suppressed),
                ],
                notes=(
                    f"k={_CACHE_SITES}, s={_CACHE_SAMPLE}, random "
                    f"distribution, scale={config.scale}, "
                    f"runs={config.effective_runs}; cache 0 = paper algorithm"
                ),
            )
        )
    return results


_OBS1_SITES = 5
_OBS1_SAMPLE = 10


def run_obs1(config: ExperimentConfig) -> list[FigureResult]:
    """Observation 1 in action: measured messages vs the Lemma 4 and
    Observation 1 bounds under flooding and random distribution.

    Flooding makes every ``d_i = d`` (Lemma 4 tight); random distribution
    splits the distinct mass so the per-site-aware Observation 1 bound is
    far below Lemma 4 — explaining Figure 5.1's gap quantitatively.
    """
    results = []
    for family in config.datasets:
        methods = ("flooding", "random")
        measured: dict[str, float] = {}
        obs1: dict[str, float] = {}
        lemma4: dict[str, float] = {}
        for method in methods:
            per_run_m: list[float] = []
            per_run_b: list[float] = []
            lemma4_vals: list[float] = []
            for rng, hash_seed in run_rngs(config):
                elements, hashes, _d = prepare_stream(
                    family, config.scale, rng, hash_seed
                )
                out = run_infinite_once(
                    elements,
                    hashes,
                    _OBS1_SITES,
                    _OBS1_SAMPLE,
                    make_distributor(method, _OBS1_SITES),
                    rng,
                    hash_seed,
                )
                per_run_m.append(float(out.messages))
                per_run_b.append(
                    upper_bound_observation1(
                        _OBS1_SITES, _OBS1_SAMPLE, out.distinct_per_site
                    )
                )
                lemma4_vals.append(
                    upper_bound_total(_OBS1_SITES, _OBS1_SAMPLE, out.distinct_total)
                )
            measured[method] = mean(per_run_m)
            obs1[method] = mean(per_run_b)
            lemma4[method] = mean(lemma4_vals)
        results.append(
            FigureResult(
                figure_id="ablation_obs1",
                title=f"Observation 1 vs Lemma 4 vs measured ({family})",
                x_label="distribution",
                y_label="messages",
                series=[
                    Series("measured", list(methods), [measured[m] for m in methods]),
                    Series("obs1_bound", list(methods), [obs1[m] for m in methods]),
                    Series("lemma4_bound", list(methods), [lemma4[m] for m in methods]),
                ],
                notes=(
                    f"k={_OBS1_SITES}, s={_OBS1_SAMPLE}, scale={config.scale}, "
                    f"runs={config.effective_runs}; bounds cover first "
                    "occurrences — duplicate-heavy streams add repeat-report "
                    "cost at s > 1 (see EXPERIMENTS.md)"
                ),
            )
        )
    return results


_HASH_ALGORITHMS = ("murmur2", "murmur3", "mix64")
_HASH_SITES = 5
_HASH_SAMPLE = 10


def run_hash(config: ExperimentConfig) -> list[FigureResult]:
    """Hash family comparison: message counts across algorithms.

    Uses an all-distinct stream sized like each dataset's distinct count:
    on duplicate-heavy streams the s > 1 repeat-report cost has
    heavy-tailed run-to-run variance (whether a high-frequency element's
    hash lands under the threshold swings totals by thousands of
    messages), which would drown the hash-family signal this ablation is
    after.  On first occurrences the expected cost is hash-family
    independent — that is what we verify.
    """
    from ..streams.synthetic import all_distinct_stream

    results = []
    for family in config.datasets:
        spec = get_dataset(family, config.scale)
        elements = all_distinct_stream(spec.n_distinct).tolist()
        series = []
        for algorithm in _HASH_ALGORITHMS:
            finals: list[float] = []
            for rng, hash_seed in run_rngs(config):
                sys_ = make_sampler(
                    "infinite",
                    num_sites=_HASH_SITES,
                    sample_size=_HASH_SAMPLE,
                    seed=hash_seed,
                    algorithm=algorithm,
                )
                hasher: UnitHasher = sys_.hasher
                assignments = make_distributor("random", _HASH_SITES).assignments(
                    len(elements), rng
                )
                sites = sys_.sites
                network = sys_.network
                for element, site in zip(elements, assignments.tolist()):
                    sites[site].observe_hashed(
                        element, hasher.unit(element), network
                    )
                finals.append(float(sys_.total_messages))
            series.append(Series(algorithm, ["messages"], [mean(finals)]))
        results.append(
            FigureResult(
                figure_id="ablation_hash",
                title=f"Hash algorithm comparison ({family})",
                x_label="metric",
                y_label="total messages",
                series=series,
                notes=(
                    f"k={_HASH_SITES}, s={_HASH_SAMPLE}, random distribution, "
                    f"all-distinct stream of d={spec.n_distinct}, "
                    f"runs={config.effective_runs}"
                ),
            )
        )
    return results
