"""Distributed random sampling (DRS) — the frequency-sensitive contrast.

The paper's introduction compares distinct sampling (DDS) against sampling
from the multiset of *all occurrences* (DRS, Cormode–Muthukrishnan–Yi–Zhang
2012 / Tirthapura–Woodruff 2011): DDS costs ``Θ(ks·ln(de/s))`` messages
while DRS costs roughly ``max{k, s}·log(n/s)`` — coordination for distinct
sampling is inherently more expensive.

This module implements the natural *threshold* DRS protocol with the same
skeleton as Algorithms 1–2, but where each **occurrence** draws a fresh
random weight instead of a per-element hash:

* site i keeps a lazily synchronized threshold ``u_i`` over weights;
* an arriving occurrence draws ``weight ~ U[0,1)`` and is reported iff
  ``weight < u_i``;
* the coordinator keeps the s occurrences with the smallest weights
  (a uniform-without-replacement sample of occurrences) and replies with
  the fresh threshold.

Its expected cost is ``O(ks·ln(ne/s))`` — the per-site harmonic sum now
runs over *occurrence* counts rather than distinct counts.  (The optimal
round-based DRS algorithms from the literature shave the leading ``k·s``
to ``max{k, s}``; implementing those is out of scope — this baseline
exists to exhibit the *qualitative* DDS-vs-DRS gap discussed in the
introduction: the probability that a new occurrence matters decays as
``s/n`` for DRS versus ``s/d`` for DDS.)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ConfigurationError, ProtocolError
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology

__all__ = ["DRSSite", "DRSCoordinator", "DistributedRandomSampler"]


class DRSSite:
    """Threshold-DRS site: fresh weight per occurrence."""

    __slots__ = ("site_id", "rng", "u_local")

    def __init__(self, site_id: int, rng: np.random.Generator) -> None:
        self.site_id = site_id
        self.rng = rng
        self.u_local = 1.0

    def observe(self, element: Any, network: Network) -> None:
        """Process one occurrence (draws a fresh random weight)."""
        weight = float(self.rng.random())
        if weight < self.u_local:
            network.send(
                self.site_id,
                COORDINATOR,
                MessageKind.DRS_REPORT,
                (element, weight, self.site_id),
            )

    def handle_message(self, message: Message, network: Network) -> None:
        if message.kind is not MessageKind.DRS_THRESHOLD:
            raise ProtocolError(
                f"DRS site {self.site_id} cannot handle {message.kind!r}"
            )
        self.u_local = message.payload


class DRSCoordinator:
    """Keeps the s smallest-weight occurrences (uniform over occurrences)."""

    __slots__ = ("sample_size", "_pairs", "reports_received")

    def __init__(self, sample_size: int) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_size = sample_size
        self._pairs: list[tuple[float, Any]] = []
        self.reports_received = 0

    def threshold(self) -> float:
        """Current weight threshold u."""
        if len(self._pairs) < self.sample_size:
            return 1.0
        return self._pairs[-1][0]

    def handle_message(self, message: Message, network: Network) -> None:
        if message.kind is not MessageKind.DRS_REPORT:
            raise ProtocolError(f"coordinator cannot handle {message.kind!r}")
        element, weight, site_id = message.payload
        self.reports_received += 1
        if weight < self.threshold():
            # Occurrences are not deduplicated: frequency matters in DRS.
            self._pairs.append((weight, element))
            self._pairs.sort()
            if len(self._pairs) > self.sample_size:
                self._pairs.pop()
        network.send(
            COORDINATOR, site_id, MessageKind.DRS_THRESHOLD, self.threshold()
        )

    def sample(self) -> list[Any]:
        """The current occurrence sample, ascending by weight."""
        return [element for _, element in self._pairs]


class DistributedRandomSampler:
    """Facade for threshold-DRS, mirroring
    :class:`~repro.core.infinite.DistinctSamplerSystem`.

    Args:
        num_sites: Number of sites k.
        sample_size: Sample size s.
        seed: Seed for the per-site weight RNGs.
    """

    def __init__(self, num_sites: int, sample_size: int, seed: int = 0) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        children = np.random.SeedSequence(seed).spawn(num_sites)
        self.topology = Topology.build(
            coordinator=DRSCoordinator(sample_size),
            site_factory=lambda i: DRSSite(
                i, np.random.default_rng(children[i])
            ),
            num_sites=num_sites,
        )

    @property
    def network(self) -> Network:
        """The topology's transport."""
        return self.topology.network

    @property
    def coordinator(self) -> DRSCoordinator:
        """The topology's coordinator node."""
        return self.topology.coordinator

    @property
    def sites(self) -> list:
        """The topology's site roster."""
        return self.topology.sites

    def observe(self, site_id: int, element: Any) -> None:
        """Deliver one occurrence to site ``site_id``."""
        self.sites[site_id].observe(element, self.network)

    def sample(self) -> list[Any]:
        """The coordinator's current occurrence sample."""
        return self.coordinator.sample()

    @property
    def total_messages(self) -> int:
        """Total messages exchanged so far."""
        return self.topology.total_messages
