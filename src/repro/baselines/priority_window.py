"""Single-stream sliding-window priority sampling (Babcock–Datar–Motwani).

The building block the paper adapts for its per-site candidate sets: over a
single stream, assign each element a random priority (here: its hash) and
maintain the set of elements that could still become the window minimum.
The expected candidate-set size is ``H_M = O(log M)``.

This standalone sampler is used to test the dominance-set machinery in
isolation and as the "what a single site would do" reference in examples.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..hashing.unit import UnitHasher
from ..structures.dominance import DominanceEntry, SortedDominanceSet

__all__ = ["PriorityWindowSampler"]


class PriorityWindowSampler:
    """Bottom-s distinct sample over a single stream's sliding window.

    Args:
        window: Window size w in slots.
        sample_size: Sample size s (>= 1).
        hasher: Hash function supplying the random priorities.
    """

    __slots__ = ("window", "sample_size", "hasher", "candidates", "_now")

    def __init__(self, window: int, sample_size: int, hasher: UnitHasher) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.sample_size = sample_size
        self.hasher = hasher
        self.candidates = SortedDominanceSet(sample_size)
        self._now = 0

    def observe(self, element: Any, now: int) -> None:
        """Process an arrival at slot ``now``."""
        self._now = max(self._now, now)
        self.candidates.expire(self._now)
        self.candidates.observe(element, now + self.window, self.hasher.unit(element))

    def advance(self, now: int) -> None:
        """Advance time without arrivals."""
        self._now = max(self._now, now)
        self.candidates.expire(self._now)

    def sample(self) -> list[Any]:
        """Bottom-s distinct sample of the live window, ascending by hash."""
        self.candidates.expire(self._now)
        return [e.element for e in self.candidates.bottom(self.sample_size)]

    def min_entry(self) -> Optional[DominanceEntry]:
        """The live minimum-hash entry, or None."""
        self.candidates.expire(self._now)
        return self.candidates.min_entry()

    @property
    def memory_size(self) -> int:
        """Current candidate-set size."""
        return len(self.candidates)
