"""Classic single-stream reservoir samplers.

These are *frequency-sensitive* samplers (an element's inclusion
probability grows with its frequency) — the contrast class the paper's
introduction draws against distinct sampling:

* :class:`ReservoirSampler` — Vitter's Algorithm R (1985): uniform sample
  of size s over stream *occurrences*.
* :class:`WeightedReservoirSampler` — Efraimidis & Spirakis (2006): each
  occurrence carries a weight; inclusion probability proportional to
  weight, via the key ``rand()^(1/w)`` trick (equivalently
  ``-log(rand())/w`` as an exponential race, which we use for numerical
  robustness).

They serve the examples (showing *why* distinct sampling answers different
queries) and the statistical test harness (a known-correct uniform sampler
to calibrate the uniformity tests against).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ReservoirSampler", "WeightedReservoirSampler"]


class ReservoirSampler:
    """Vitter's Algorithm R: uniform sample of s stream occurrences.

    Args:
        sample_size: Reservoir capacity s.
        rng: Source of randomness.
    """

    __slots__ = ("sample_size", "rng", "reservoir", "count")

    def __init__(self, sample_size: int, rng: np.random.Generator) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_size = sample_size
        self.rng = rng
        self.reservoir: list[Any] = []
        self.count = 0

    def observe(self, element: Any) -> None:
        """Process one stream element."""
        self.count += 1
        if len(self.reservoir) < self.sample_size:
            self.reservoir.append(element)
            return
        # Replace a random slot with probability s / count.
        j = int(self.rng.integers(0, self.count))
        if j < self.sample_size:
            self.reservoir[j] = element

    def extend(self, elements: Sequence[Any]) -> None:
        """Process a batch of elements."""
        for element in elements:
            self.observe(element)

    def sample(self) -> list[Any]:
        """The current reservoir (uniform over occurrences seen)."""
        return list(self.reservoir)


class WeightedReservoirSampler:
    """Efraimidis–Spirakis weighted reservoir sampling (A-Res).

    Keeps the s occurrences with the smallest exponential keys
    ``Exp(weight)``; inclusion probability is proportional to weight.

    Args:
        sample_size: Reservoir capacity s.
        rng: Source of randomness.
    """

    __slots__ = ("sample_size", "rng", "_keyed", "count")

    def __init__(self, sample_size: int, rng: np.random.Generator) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_size = sample_size
        self.rng = rng
        self._keyed: list[tuple[float, int, Any]] = []  # sorted by key
        self.count = 0

    def observe(self, element: Any, weight: float = 1.0) -> None:
        """Process one element with the given positive weight.

        Raises:
            ConfigurationError: If ``weight <= 0``.
        """
        if weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        self.count += 1
        key = -math.log(1.0 - float(self.rng.random())) / weight
        if len(self._keyed) < self.sample_size:
            self._keyed.append((key, self.count, element))
            self._keyed.sort()
            return
        if key < self._keyed[-1][0]:
            self._keyed[-1] = (key, self.count, element)
            self._keyed.sort()

    def sample(self) -> list[Any]:
        """The current weighted sample, ascending by key."""
        return [element for _, _, element in self._keyed]
