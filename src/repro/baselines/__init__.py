"""Baseline algorithms: frequency-sensitive sampling and classic samplers."""

from .drs import DistributedRandomSampler, DRSCoordinator, DRSSite
from .priority_window import PriorityWindowSampler
from .reservoir import ReservoirSampler, WeightedReservoirSampler

__all__ = [
    "DistributedRandomSampler",
    "DRSCoordinator",
    "DRSSite",
    "PriorityWindowSampler",
    "ReservoirSampler",
    "WeightedReservoirSampler",
]
