"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An algorithm or experiment was configured with invalid parameters.

    Examples: non-positive sample size, window size of zero, a site id that
    is out of range for the simulated network.
    """


class ProtocolError(ReproError):
    """A distributed-protocol invariant was violated at runtime.

    This signals a bug (ours or a user extension's), never bad user input:
    e.g. a coordinator receiving a message kind it does not understand, or a
    reply routed to a node that never sent a request.
    """


class DatasetError(ReproError):
    """A dataset specification could not be resolved or generated."""


class ExecutorError(ReproError):
    """An execution backend's worker pool failed mid-operation.

    Raised by the shared-memory backend when a persistent worker dies or
    reports a replay failure.  The executor tears its workers down and
    falls back to the parent's last-synchronized group state, so the
    sampler remains usable — state ingested since the last
    synchronization point (``sample()``/``stats()``/``state_dict()``) is
    lost, exactly like a distributed node crash losing work since its
    last checkpoint.
    """


class PerfError(ReproError):
    """A benchmark report could not be produced, parsed, or compared.

    Examples: an unknown scenario name, a report JSON with a missing or
    unsupported schema version, a baseline that does not cover the
    scenario/variant grid of the report it is compared against.
    """


class AccuracyError(ReproError):
    """An accuracy report could not be produced, parsed, or compared.

    The accuracy-harness twin of :class:`PerfError`: an unknown estimator
    name, a report JSON with a missing or unsupported schema version, or
    a baseline whose workload parameters do not match the report it is
    compared against.
    """


class EstimationError(ReproError):
    """An estimator was queried in a state where no estimate is defined.

    For example, asking the KMV distinct-count estimator for an estimate
    before the sample has filled to its configured size.
    """
