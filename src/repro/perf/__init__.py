"""Performance subsystem: scenario-driven benchmarks with a CI gate.

Three layers, mirroring the sampler front door:

* :mod:`repro.perf.scenarios` — a registry of named, parameterized
  workloads (uniform / bursty / adversarial / sliding churn / netsim
  round-trips).
* :mod:`repro.perf.suite` — crosses the scenario registry with the
  sampler-variant registry and times every applicable cell.
* :mod:`repro.perf.report` / :mod:`repro.perf.regress` — the
  schema-versioned JSON artifact and the tolerance-based diff that CI
  runs against ``benchmarks/baseline.json``.

CLI: ``repro perf run | compare | baseline`` (see README
"Benchmarking & performance tracking").
"""

from .regress import (
    Comparison,
    MetricDelta,
    Tolerances,
    compare_reports,
    render_markdown,
)
from .report import (
    SCHEMA_VERSION,
    PerfRecord,
    PerfReport,
    load_report,
    report_from_dict,
    save_report,
)
from .scenarios import (
    Scenario,
    ScenarioParams,
    get_scenario,
    perf_scenarios,
    register_scenario,
)
from .suite import SuiteConfig, build_sampler_for, run_suite

__all__ = [
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioParams",
    "register_scenario",
    "perf_scenarios",
    "get_scenario",
    "SuiteConfig",
    "run_suite",
    "build_sampler_for",
    "PerfRecord",
    "PerfReport",
    "report_from_dict",
    "load_report",
    "save_report",
    "Tolerances",
    "MetricDelta",
    "Comparison",
    "compare_reports",
    "render_markdown",
]
