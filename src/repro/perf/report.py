"""Schema-versioned, machine-readable benchmark reports.

One :class:`PerfReport` is the JSON artifact of a suite run — the
``BENCH_*.json`` trajectory the repo tracks over time and the unit the CI
regression gate diffs against the committed ``benchmarks/baseline.json``.
The schema is versioned so readers can reject files they do not
understand instead of mis-parsing them; bump :data:`SCHEMA_VERSION` on
any incompatible change and teach :func:`report_from_dict` the migration.

Record identity is ``(scenario, variant)``; within one schema version a
record always carries the same metric keys, so diffs are plain per-key
comparisons (see :mod:`repro.perf.regress`).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..errors import PerfError

__all__ = [
    "SCHEMA_VERSION",
    "PerfRecord",
    "PerfReport",
    "report_from_dict",
    "load_report",
    "save_report",
]

#: Current report schema version.  Readers must reject other majors.
#: v2 added ``executor`` plus the per-event serialization counters
#: (``pickle_bytes_per_event``, ``ipc_bytes_per_event``).  v3 added the
#: query-side metrics (``query_seconds_cold``, ``query_seconds_cached``,
#: ``syncs_per_query``).
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class PerfRecord:
    """One (scenario, variant) measurement.

    Timing metrics (``elapsed_s``, ``throughput_eps``) are the best of
    ``repeats`` runs — the standard noise-floor estimator.  Protocol
    metrics (``messages_total``, ``bytes_total``, ``memory_total``,
    ``sample_len``) are exactly reproducible given the workload seed, so
    the regression gate can hold them to a much tighter tolerance than
    wall-clock numbers.

    Serialization metrics come from the execution backend of the *last*
    repeat (every repeat drives a fresh sampler over the same events, so
    one repeat's counters are the per-drive cost):
    ``pickle_bytes_per_event`` is the pickled event-payload bytes that
    crossed a process boundary per ingested event — the "pickle tax" the
    shared-memory backend eliminates (exactly 0.0 on columnar workloads)
    — and ``ipc_bytes_per_event`` is all request/reply framing bytes per
    event (plans, timings, state exchanges).  Both are identically 0.0
    for the in-process backends (serial, thread).

    Query metrics (also from the last repeat, measured *after* the
    driver finishes): ``query_seconds_cold`` is the best-of-several time
    of one ``sample()`` with the merge cache dropped first (the full
    columnar bottom-s merge), ``query_seconds_cached`` the best time of
    a repeated ``sample()`` on the quiescent sampler (the cache hit),
    and ``syncs_per_query`` the executor syncs the driver's own queries
    actually triggered per query (0.0 when the driver never queried or
    the sampler has no query counters).  The regression gate pins
    cached ≥ 10x cold on ``sharded-query-heavy`` and
    ``syncs_per_query`` < 1 on ``sharded-mixed-rw``.
    """

    scenario: str
    variant: str
    n_events: int
    repeats: int
    elapsed_s: float
    throughput_eps: float
    messages_total: int
    bytes_total: int
    memory_total: int
    sample_len: int
    slots_processed: int
    executor: str
    pickle_bytes_per_event: float
    ipc_bytes_per_event: float
    query_seconds_cold: float
    query_seconds_cached: float
    syncs_per_query: float

    @property
    def key(self) -> tuple[str, str]:
        """Identity within a report: ``(scenario, variant)``."""
        return (self.scenario, self.variant)


@dataclass(frozen=True)
class PerfReport:
    """A full suite run: environment + parameters + records."""

    records: tuple[PerfRecord, ...]
    params: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    generated_at: str = ""
    python: str = ""
    platform: str = ""
    numpy: str = ""

    @classmethod
    def build(
        cls, records: list[PerfRecord], params: dict[str, Any]
    ) -> "PerfReport":
        """Assemble a report, stamping the current environment."""
        import numpy

        return cls(
            records=tuple(records),
            params=dict(params),
            generated_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            python=sys.version.split()[0],
            platform=platform.platform(),
            numpy=numpy.__version__,
        )

    def record_for(self, scenario: str, variant: str) -> Optional[PerfRecord]:
        """The record with the given identity, or None."""
        for record in self.records:
            if record.key == (scenario, variant):
                return record
        return None

    def by_key(self) -> dict[tuple[str, str], PerfRecord]:
        """Records indexed by ``(scenario, variant)``."""
        return {record.key: record for record in self.records}

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-serializable) form."""
        return {
            "schema_version": self.schema_version,
            "generated_at": self.generated_at,
            "environment": {
                "python": self.python,
                "platform": self.platform,
                "numpy": self.numpy,
            },
            "params": dict(self.params),
            "records": [asdict(record) for record in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON text (sorted keys; trailing newline)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"


_RECORD_FIELDS = {
    "scenario": str,
    "variant": str,
    "n_events": int,
    "repeats": int,
    "elapsed_s": float,
    "throughput_eps": float,
    "messages_total": int,
    "bytes_total": int,
    "memory_total": int,
    "sample_len": int,
    "slots_processed": int,
    "executor": str,
    "pickle_bytes_per_event": float,
    "ipc_bytes_per_event": float,
    "query_seconds_cold": float,
    "query_seconds_cached": float,
    "syncs_per_query": float,
}


def report_from_dict(data: Any) -> PerfReport:
    """Parse and validate a report dict (inverse of ``to_dict``).

    Raises:
        PerfError: On a non-dict payload, missing/unsupported schema
            version, or malformed records.
    """
    if not isinstance(data, dict):
        raise PerfError(
            f"perf report must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise PerfError(
            f"unsupported perf report schema_version {version!r} "
            f"(this reader understands {SCHEMA_VERSION})"
        )
    environment = data.get("environment") or {}
    raw_records = data.get("records")
    if not isinstance(raw_records, list):
        raise PerfError("perf report is missing its 'records' list")
    records = []
    for i, raw in enumerate(raw_records):
        if not isinstance(raw, dict):
            raise PerfError(f"record #{i} is not an object")
        try:
            records.append(
                PerfRecord(
                    **{
                        name: kind(raw[name])
                        for name, kind in _RECORD_FIELDS.items()
                    }
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfError(f"record #{i} is malformed: {exc!r}") from exc
    return PerfReport(
        records=tuple(records),
        params=dict(data.get("params") or {}),
        schema_version=SCHEMA_VERSION,
        generated_at=str(data.get("generated_at", "")),
        python=str(environment.get("python", "")),
        platform=str(environment.get("platform", "")),
        numpy=str(environment.get("numpy", "")),
    )


def load_report(path) -> PerfReport:
    """Read and validate a report JSON file.

    Raises:
        PerfError: If the file is unreadable, not JSON, or fails
            validation.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise PerfError(f"cannot read perf report {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PerfError(f"perf report {path} is not valid JSON: {exc}") from exc
    return report_from_dict(data)


def save_report(report: PerfReport, path) -> Path:
    """Write a report as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json())
    return path
