"""The benchmark scenario registry: parameterized, named workloads.

A *scenario* is a deterministic recipe for an ingestion workload — a list
of protocol events plus an (optional) custom driver — parameterized by
size, site count, and seed.  The perf suite (:mod:`repro.perf.suite`)
crosses the registry against the sampler-variant registry so every
registered variant is exercised by every applicable workload shape, and
the ``bench_*`` scripts and CLI reuse the exact same recipes instead of
hand-rolling their own stream generators.

Built-in scenarios:

* ``uniform`` — uniformly random repeats over a moderate universe; the
  steady-state ingestion shape (duplicates dominate once the sample
  stabilizes).
* ``bursty`` — temporally correlated repeats (geometric bursts), the
  repeat-report stress shape of real packet traces.
* ``adversarial`` — the Lemma 9 lower-bound input: a fresh distinct
  element flooded to every site each round; maximal message pressure.
* ``sliding-churn`` — a slotted schedule driving window expiry and
  fallback churn (events carry slot stamps; infinite-window variants
  treat them as bookkeeping).
* ``netsim-roundtrip`` — the uniform workload driven through a
  :class:`~repro.netsim.delayed.DelayedNetwork` with periodic pumps,
  measuring ingestion with queued (rather than synchronous) coordinator
  round-trips.
* ``uniform-columnar`` / ``sharded-uniform-columnar`` — the *same*
  workloads as their tuple twins (same seeds, same columns), emitted as
  :class:`~repro.core.events.EventBatch` so the whole pipeline stays
  columnar; the gap between twin cells is the tuple-churn tax the
  columnar ingest path removes.
* ``sharded-uniform-parallel`` / ``sharded-uniform-shm`` /
  ``sharded-uniform-thread`` — the columnar sharded workload again, but
  ingested through the :class:`~repro.runtime.executor.ProcessExecutor`,
  :class:`~repro.runtime.executor.SharedMemoryExecutor`, or
  :class:`~repro.runtime.executor.ThreadExecutor`
  (``SuiteConfig.workers`` workers): deterministic counters identical to
  the serial twins by construction, wall-clock measuring real multi-core
  ingest.  The shm cell additionally pins ``pickle_bytes_per_event`` to
  exactly 0 — the zero-copy contract the regression gate enforces.
* ``sharded-query-heavy`` — the columnar sharded ingest followed by a
  burst of ``sample()``/``threshold``/``stats()`` queries on the
  quiescent sampler; the cell where the incremental merge cache shows
  up (``query_seconds_cached`` ≥ 10x faster than ``query_seconds_cold``
  is gated).
* ``sharded-mixed-rw`` — chunked ingest interleaved with query bursts
  at ``ScenarioParams.read_ratio`` reads per chunk; the shared
  per-quiescent-period sync keeps ``syncs_per_query`` near
  ``1/read_ratio`` (gated < 1).

Scenarios are registered via :func:`register_scenario`, mirroring
:func:`repro.core.api.register_variant`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..core.events import EventBatch
from ..core.protocol import Sampler
from ..errors import PerfError
from ..streams.bursty import bursty_stream
from ..streams.slotted import SlottedArrivals
from ..streams.synthetic import all_distinct_stream, calibrated_stream

__all__ = [
    "ScenarioParams",
    "Scenario",
    "register_scenario",
    "perf_scenarios",
    "get_scenario",
    "drive_observe_batch",
]


@dataclass(frozen=True)
class ScenarioParams:
    """Workload knobs shared by every scenario.

    Attributes:
        n_events: Approximate number of ingestion events to generate
            (scenarios may round, e.g. to whole flooding rounds).
        num_sites: Number of sites k the events are dealt to.
        seed: Master seed; equal params must yield equal workloads.
        window: Window size in slots used by slotted scenarios to shape
            churn (and by the suite to configure windowed variants).
        read_ratio: Queries issued per ingest chunk by the mixed
            read/write scenario (``sharded-mixed-rw``); a workload
            parameter like the others — reports generated at different
            ratios are not comparable.
    """

    n_events: int = 20_000
    num_sites: int = 8
    seed: int = 20150525
    window: int = 64
    read_ratio: float = 4.0

    def validate(self) -> "ScenarioParams":
        """Check ranges; returns self."""
        if self.n_events < 1:
            raise PerfError(f"n_events must be >= 1, got {self.n_events}")
        if self.num_sites < 1:
            raise PerfError(f"num_sites must be >= 1, got {self.num_sites}")
        if self.window < 1:
            raise PerfError(f"window must be >= 1, got {self.window}")
        if self.read_ratio < 0:
            raise PerfError(
                f"read_ratio must be >= 0, got {self.read_ratio}"
            )
        return self


#: A workload builder: params -> protocol events (a tuple-event list or
#: a columnar :class:`~repro.core.events.EventBatch`).
EventBuilder = Callable[[ScenarioParams], list]
#: A driver: (sampler, events, params) -> None; ingests the workload.
Driver = Callable[[Sampler, list, ScenarioParams], None]


def drive_observe_batch(
    sampler: Sampler, events: list, params: ScenarioParams
) -> None:
    """The default driver: one ``observe_batch`` call over the events."""
    sampler.observe_batch(events)


def _drive_netsim(sampler: Sampler, events: list, params: ScenarioParams) -> None:
    """Queue sends on a delayed network, pumping between chunks.

    Rewires the sampler onto a :class:`~repro.netsim.delayed.DelayedNetwork`
    and ingests in chunks, draining the queues after each one — a
    monitoring loop that batches coordinator round-trips instead of
    blocking per message.
    """
    from ..netsim.delayed import DelayedNetwork

    network = DelayedNetwork.rewire(sampler)
    chunk = max(1, len(events) // 16)
    for start in range(0, len(events), chunk):
        sampler.observe_batch(events[start : start + chunk])
        network.pump()
    network.pump()


@dataclass(frozen=True)
class Scenario:
    """A registered benchmark scenario.

    Attributes:
        name: Registry key.
        summary: One-line description (CLI listing, README).
        build: Deterministic workload builder.
        driver: Ingestion driver (defaults to a single
            ``observe_batch`` call).
        slotted: Whether events carry slot stamps.
        needs_network: Scenario requires a facade-level ``network``
            attribute (excludes the with-replacement and sharded facades,
            whose copies/groups own their networks).
        variant_filter: Optional predicate over the
            :class:`~repro.core.api.SamplerVariant`; when given, only
            variants it accepts run this scenario.
        executor: Execution backend this scenario forces on its samplers
            (``None`` = the default serial backend).  The
            ``sharded-uniform-parallel`` scenario sets ``"process"`` so
            the suite times real multi-core ingest; the suite sizes the
            pool from ``SuiteConfig.workers``.
    """

    name: str
    summary: str
    build: EventBuilder
    driver: Driver = field(default=drive_observe_batch)
    slotted: bool = False
    needs_network: bool = False
    variant_filter: Optional[Callable] = None
    executor: Optional[str] = None

    def applies_to(self, variant_name: str, sampler: Sampler) -> bool:
        """Whether this scenario can drive ``sampler`` meaningfully.

        Windowed variants only run on slotted scenarios: without slot
        advances nothing ever expires, same-expiry entries never dominate
        each other, and the candidate sets degenerate into an unbounded
        mirror of the whole stream — a shape the protocol is explicitly
        not designed for.
        """
        from ..core.api import get_variant

        variant = get_variant(variant_name)
        if self.variant_filter is not None and not self.variant_filter(variant):
            return False
        if self.needs_network and not all(
            hasattr(sampler, attr)
            for attr in ("network", "coordinator", "sites")
        ):
            return False
        if not self.slotted and variant.windowed:
            return False
        return True


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (last registration wins)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def perf_scenarios() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario.

    Raises:
        PerfError: For an unknown name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PerfError(
            f"unknown perf scenario {name!r}; expected one of {perf_scenarios()}"
        ) from None


# ---------------------------------------------------------------------------
# Built-in workload builders
# ---------------------------------------------------------------------------


def _deal_columns(
    elements: np.ndarray, params: ScenarioParams
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each element a uniformly random site; ``(sites, elements)``."""
    rng = np.random.default_rng(params.seed + 1)
    sites = rng.integers(0, params.num_sites, elements.size)
    return sites, elements


def _deal(elements: np.ndarray, params: ScenarioParams) -> list:
    """The dealt workload as plain 2-tuple events."""
    sites, elements = _deal_columns(elements, params)
    return list(zip(sites.tolist(), elements.tolist()))


def _uniform_elements(params: ScenarioParams) -> np.ndarray:
    params.validate()
    rng = np.random.default_rng(params.seed)
    n = params.n_events
    universe = max(1, n // 4)
    return rng.integers(0, universe, n)


def _build_uniform(params: ScenarioParams) -> list:
    return _deal(_uniform_elements(params), params)


def _build_uniform_columnar(params: ScenarioParams) -> EventBatch:
    """The uniform workload, column-for-column identical, zero tuples."""
    sites, elements = _deal_columns(_uniform_elements(params), params)
    return EventBatch(elements, sites=sites)


def _build_bursty(params: ScenarioParams) -> list:
    params.validate()
    rng = np.random.default_rng(params.seed)
    n = params.n_events
    distinct = max(1, n // 8)
    elements = bursty_stream(n, distinct, skew=1.1, burst_mean=8.0, rng=rng)
    return _deal(elements, params)


def _build_adversarial(params: ScenarioParams) -> list:
    params.validate()
    rounds = max(1, params.n_events // params.num_sites)
    elements = all_distinct_stream(rounds)
    sites = range(params.num_sites)
    return [(site, int(e)) for e in elements for site in sites]


def _build_sliding_churn(params: ScenarioParams) -> list:
    params.validate()
    rng = np.random.default_rng(params.seed)
    n = params.n_events
    distinct = max(1, n // 6)
    elements = calibrated_stream(n, distinct, skew=1.1, rng=rng)
    per_slot = max(1, n // max(1, 4 * params.window))
    schedule = SlottedArrivals(elements.tolist(), params.num_sites, per_slot, rng)
    return [
        (site, element, slot)
        for slot, arrivals in schedule.slots()
        for site, element in arrivals
    ]


register_scenario(
    Scenario(
        name="uniform",
        summary="uniform random repeats over a n/4-id universe",
        build=_build_uniform,
    )
)
register_scenario(
    Scenario(
        name="bursty",
        summary="geometric bursts of Zipf-weighted repeats (trace locality)",
        build=_build_bursty,
    )
)
register_scenario(
    Scenario(
        name="adversarial",
        summary="Lemma 9 lower-bound input: fresh element flooded to all sites",
        build=_build_adversarial,
    )
)
register_scenario(
    Scenario(
        name="sliding-churn",
        summary="slotted arrivals driving window expiry/fallback churn",
        build=_build_sliding_churn,
        slotted=True,
    )
)
register_scenario(
    Scenario(
        name="netsim-roundtrip",
        summary="uniform workload over a delayed network, pumped in chunks",
        build=_build_uniform,
        driver=_drive_netsim,
        needs_network=True,
    )
)


def _build_sharded_uniform(params: ScenarioParams) -> list:
    """The uniform workload as *raw items* — routing is the scenario."""
    return _uniform_elements(params).tolist()


def _build_sharded_uniform_columnar(params: ScenarioParams) -> EventBatch:
    """The same raw keys as a site-less columnar batch (Engine routes)."""
    return EventBatch(_uniform_elements(params))


def _drive_engine_hash(
    sampler: Sampler, events: list, params: ScenarioParams
) -> None:
    """Route raw items through the Engine's hash-partition policy.

    This is the scale-out ingestion shape: no explicit site ids — the
    :class:`~repro.runtime.engine.Engine` assigns each key a sticky site,
    and the sharded facade underneath assigns it a sticky coordinator
    group.
    """
    from ..runtime.engine import Engine

    Engine(sampler, policy="hash", seed=params.seed).observe_batch(events)


register_scenario(
    Scenario(
        name="sharded-uniform",
        summary="uniform raw-item workload, Engine hash-routing onto "
        "sharded coordinator groups",
        build=_build_sharded_uniform,
        driver=_drive_engine_hash,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
    )
)
register_scenario(
    Scenario(
        name="uniform-columnar",
        summary="the uniform workload as a columnar EventBatch "
        "(zero-tuple ingest)",
        build=_build_uniform_columnar,
    )
)
register_scenario(
    Scenario(
        name="sharded-uniform-columnar",
        summary="sharded-uniform's raw keys as a site-less EventBatch, "
        "Engine hash-routed end to end in columns",
        build=_build_sharded_uniform_columnar,
        driver=_drive_engine_hash,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
    )
)
register_scenario(
    Scenario(
        name="sharded-uniform-parallel",
        summary="sharded-uniform-columnar's workload through the "
        "multiprocessing ProcessExecutor (real multi-core ingest, "
        "measured critical path)",
        build=_build_sharded_uniform_columnar,
        driver=_drive_engine_hash,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
        executor="process",
    )
)
register_scenario(
    Scenario(
        name="sharded-uniform-shm",
        summary="sharded-uniform-columnar's workload through the "
        "SharedMemoryExecutor (persistent workers, zero-copy /dev/shm "
        "columns, pickle_bytes_per_event == 0)",
        build=_build_sharded_uniform_columnar,
        driver=_drive_engine_hash,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
        executor="shm",
    )
)
#: Queries issued by the query-heavy scenario after ingest.  Large
#: enough that the timed window is query-dominated: pre-cache, each
#: query was a full sync + Python-sort merge; post-cache all but the
#: first are O(1) hits.
_QUERY_HEAVY_QUERIES = 256

#: Ingest chunks for the mixed read/write scenario; with R queries per
#: chunk the scenario issues ``32 * R`` queries but at most 32 syncs,
#: so ``syncs_per_query <= 1/R``.
_MIXED_RW_CHUNKS = 32


def _drive_query_heavy(
    sampler: Sampler, events: list, params: ScenarioParams
) -> None:
    """Ingest once, then hammer the query surface.

    The read-dominated serving shape from the ROADMAP's north star: one
    hash-routed columnar ingest followed by a burst of
    ``sample()``/``threshold``/``stats()`` round-trips over the
    quiescent sampler.  Before the merge cache every iteration forced an
    executor sync plus a full Python-sort merge; with it, only the first
    query after ingest does any work.
    """
    from ..runtime.engine import Engine

    Engine(sampler, policy="hash", seed=params.seed).observe_batch(events)
    for _ in range(_QUERY_HEAVY_QUERIES):
        sampler.sample()
        _ = sampler.threshold
        sampler.stats()


def _drive_mixed_rw(
    sampler: Sampler, events: list, params: ScenarioParams
) -> None:
    """Interleave chunked ingest with query bursts at ``read_ratio``.

    Each of the 32 ingest chunks is followed by ``round(read_ratio)``
    queries; only the first query per chunk can trigger an executor
    sync or a re-merge, so ``syncs_per_query`` lands near
    ``1 / read_ratio`` (gated < 1 by ``perf compare``).
    """
    from ..runtime.engine import Engine

    engine = Engine(sampler, policy="hash", seed=params.seed)
    reads = max(1, int(round(params.read_ratio)))
    n = len(events)
    chunk = max(1, -(-n // _MIXED_RW_CHUNKS))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        if isinstance(events, EventBatch):
            run = events.select(np.arange(start, stop))
        else:
            run = events[start:stop]
        engine.observe_batch(run)
        for _ in range(reads):
            sampler.sample()
            _ = sampler.threshold


register_scenario(
    Scenario(
        name="sharded-query-heavy",
        summary="sharded-uniform-columnar's ingest, then a burst of "
        "sample/threshold/stats queries over the quiescent sampler "
        "(cached >= 10x cold gated by perf compare)",
        build=_build_sharded_uniform_columnar,
        driver=_drive_query_heavy,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
    )
)
register_scenario(
    Scenario(
        name="sharded-mixed-rw",
        summary="chunked columnar ingest interleaved with query bursts "
        "at a configurable read:write ratio (syncs_per_query < 1 gated "
        "by perf compare)",
        build=_build_sharded_uniform_columnar,
        driver=_drive_mixed_rw,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
    )
)
#: Reshard steps driven by the elastic-resharding scenario, as factors
#: of the configured shard count (min-clamped to 1): grow 2x, shrink
#: back below, return home.  Every step is a full live re-partition of
#: the retained group state.
_RESHARD_FACTORS = (2.0, 0.5, 1.0)


def _drive_reshard(
    sampler: Sampler, events: list, params: ScenarioParams
) -> None:
    """Chunked hash-routed ingest with live reshard steps in between.

    The elastic-resharding shape: ingest a chunk, re-partition the live
    groups (S -> 2S -> S/2 -> S), query to force the post-reshard merge,
    repeat.  Times the full repartition cost — state capture, hash
    re-routing, group rebuild, merge-cache rebuild — under a workload
    that keeps ingesting afterwards.
    """
    from ..runtime.engine import Engine

    engine = Engine(sampler, policy="hash", seed=params.seed)
    base_shards = sampler.shards
    steps = [
        max(1, int(round(base_shards * factor)))
        for factor in _RESHARD_FACTORS
    ]
    n = len(events)
    chunk = max(1, -(-n // (len(steps) + 1)))
    for i, start in enumerate(range(0, n, chunk)):
        stop = min(start + chunk, n)
        if isinstance(events, EventBatch):
            run = events.select(np.arange(start, stop))
        else:
            run = events[start:stop]
        engine.observe_batch(run)
        if i < len(steps):
            sampler.reshard(steps[i])
            sampler.sample()
    sampler.sample()


register_scenario(
    Scenario(
        name="sharded-reshard",
        summary="chunked columnar ingest with live elastic reshard "
        "steps (S -> 2S -> S/2 -> S), querying after every "
        "re-partition",
        build=_build_sharded_uniform_columnar,
        driver=_drive_reshard,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
    )
)
register_scenario(
    Scenario(
        name="sharded-uniform-thread",
        summary="sharded-uniform-columnar's workload through the "
        "ThreadExecutor (in-process thread pool over the GIL-dropping "
        "NumPy kernels)",
        build=_build_sharded_uniform_columnar,
        driver=_drive_engine_hash,
        variant_filter=lambda variant: variant.sharded and not variant.windowed,
        executor="thread",
    )
)
