"""The perf suite: scenarios x registered variants -> a PerfReport.

Runs every applicable (scenario, variant) pair through the unified
:class:`~repro.core.protocol.Sampler` lifecycle, timing the ingestion
driver with ``time.perf_counter`` (best of ``repeats`` runs on a fresh
sampler each time) and recording the protocol cost counters, which are
exactly reproducible given the seed.  The result is assembled into a
schema-versioned :class:`~repro.perf.report.PerfReport` for the JSON
trajectory and the CI regression gate.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from ..core.api import get_variant, make_sampler, sampler_variants
from ..core.protocol import Sampler, SamplerConfig
from ..errors import PerfError
from .report import PerfRecord, PerfReport
from .scenarios import ScenarioParams, get_scenario, perf_scenarios

__all__ = [
    "SuiteConfig",
    "run_suite",
    "build_sampler_for",
    "close_sampler",
    "warmup_sampler",
    "measure_query_metrics",
]

#: Best-of repeats for the query-side measurements.  The cold merge is
#: microseconds and the cached hit sub-microsecond, so these are cheap;
#: min-of-N is the same noise-floor estimator the ingest timing uses.
_QUERY_COLD_REPEATS = 5
_QUERY_CACHED_REPEATS = 32


def measure_query_metrics(sampler: Sampler) -> tuple[float, float, float]:
    """Measure ``(cold_seconds, cached_seconds, syncs_per_query)``.

    Called after a scenario's driver finishes, on the quiescent sampler.
    ``syncs_per_query`` is read from the sampler's own
    ``query_count``/``sync_count`` counters *before* the timed queries
    below touch them, so it reflects the driver's query traffic (0.0 for
    samplers without counters or drivers that never query).  The cold
    timing drops the merge cache first via ``invalidate_merge_cache``
    when the sampler has one — the executor sync stays shared, so this
    isolates the merge recompute; samplers without a cache simply time
    ``sample()`` twice and the two numbers converge.
    """
    queries = getattr(sampler, "query_count", 0)
    syncs = getattr(sampler, "sync_count", 0)
    syncs_per_query = (syncs / queries) if queries else 0.0
    invalidate = getattr(sampler, "invalidate_merge_cache", None)
    cold = float("inf")
    for _ in range(_QUERY_COLD_REPEATS):
        if invalidate is not None:
            invalidate()
        started = time.perf_counter()
        sampler.sample()
        cold = min(cold, time.perf_counter() - started)
    cached = float("inf")
    for _ in range(_QUERY_CACHED_REPEATS):
        started = time.perf_counter()
        sampler.sample()
        cached = min(cached, time.perf_counter() - started)
    return cold, cached, syncs_per_query


def close_sampler(sampler: Sampler) -> None:
    """Release a cell sampler's backend resources (process pools)."""
    close = getattr(sampler, "close", None)
    if close is not None:
        close()


def warmup_sampler(sampler: Sampler) -> None:
    """Force a process-backend sampler's worker pool into existence.

    Timed and profiled windows must measure ingest, not pool start-up —
    the pool is created lazily, so without this the first batch of every
    fresh sampler pays the fork cost inside the measurement.
    """
    warmup = getattr(getattr(sampler, "executor", None), "warmup", None)
    if warmup is not None:
        warmup()


@dataclass(frozen=True)
class SuiteConfig:
    """Parameters of one suite run.

    Attributes:
        n_events: Workload size per (scenario, variant) cell.
        num_sites: Sites k.
        sample_size: Sample size s for every variant.
        window: Window (slots) for windowed variants and slotted
            scenarios.
        seed: Master workload + hash seed.
        repeats: Timed repetitions per cell (best-of wins).
        scenarios: Scenario names to run; empty = all registered.
        variants: Variant names to run; empty = all registered.
        algorithm: Hash algorithm (``mix64`` exercises the vectorized
            ingestion fast paths over the integer workloads).
        shards: Coordinator groups S for the ``sharded:*`` variants
            (single-coordinator variants always run with 1).
        workers: Worker count W for scenarios that force a non-serial
            execution backend (``sharded-uniform-parallel``,
            ``sharded-uniform-shm``, ``sharded-uniform-thread``); serial
            cells ignore it.
        read_ratio: Queries per ingest chunk for the mixed
            read/write scenario (``sharded-mixed-rw``); other scenarios
            ignore it.
    """

    n_events: int = 20_000
    num_sites: int = 8
    sample_size: int = 16
    window: int = 64
    seed: int = 20150525
    repeats: int = 1
    scenarios: tuple = ()
    variants: tuple = ()
    algorithm: str = "mix64"
    shards: int = 4
    workers: int = 4
    read_ratio: float = 4.0

    def scenario_names(self) -> tuple:
        """Scenario names this run covers (validated)."""
        if not self.scenarios:
            return perf_scenarios()
        for name in self.scenarios:
            get_scenario(name)
        return tuple(self.scenarios)

    def variant_names(self) -> tuple:
        """Variant names this run covers (validated)."""
        if not self.variants:
            return sampler_variants()
        for name in self.variants:
            get_variant(name)
        return tuple(self.variants)

    def scenario_params(self) -> ScenarioParams:
        """The workload knobs shared by every scenario in this run."""
        return ScenarioParams(
            n_events=self.n_events,
            num_sites=self.num_sites,
            seed=self.seed,
            window=self.window,
            read_ratio=self.read_ratio,
        ).validate()


def build_sampler_for(
    config: SuiteConfig,
    variant_name: str,
    slotted: bool = False,
    executor: Optional[str] = None,
) -> Sampler:
    """Construct one variant instance for a suite cell.

    Windowed variants get ``config.window``; infinite-window variants get
    ``window=0``.  The with-replacement family keys its flavour off the
    window, so it runs its sliding flavour on slotted scenarios and its
    infinite flavour everywhere else.  A scenario-forced ``executor``
    applies only to sharded variants (the only ones that accept one);
    pool size comes from ``config.workers``.
    """
    variant = get_variant(variant_name)
    windowed = variant.windowed or (variant.with_replacement and slotted)
    window = config.window if windowed else 0
    executor = executor if (executor and variant.sharded) else "serial"
    return make_sampler(
        SamplerConfig(
            variant=variant_name,
            num_sites=config.num_sites,
            sample_size=config.sample_size,
            window=window,
            seed=config.seed,
            algorithm=config.algorithm,
            shards=config.shards if variant.sharded else 1,
            executor=executor,
            workers=config.workers if executor != "serial" else 0,
        )
    )


def run_suite(
    config: SuiteConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> PerfReport:
    """Run the suite and return the assembled report.

    Args:
        config: What to run and at what scale.
        progress: Optional callback receiving one line per finished cell
            (the CLI prints these).

    Raises:
        PerfError: Unknown scenario/variant names, or an empty grid.
    """
    if config.repeats < 1:
        raise PerfError(f"repeats must be >= 1, got {config.repeats}")
    params = config.scenario_params()
    records = []
    for scenario_name in config.scenario_names():
        scenario = get_scenario(scenario_name)
        events = scenario.build(params)
        for variant_name in config.variant_names():
            probe = build_sampler_for(
                config, variant_name, scenario.slotted, scenario.executor
            )
            if not scenario.applies_to(variant_name, probe):
                close_sampler(probe)
                continue
            best = float("inf")
            sampler = probe
            for repeat in range(config.repeats):
                if repeat:
                    close_sampler(sampler)
                    sampler = build_sampler_for(
                        config, variant_name, scenario.slotted,
                        scenario.executor,
                    )
                warmup_sampler(sampler)
                started = time.perf_counter()
                scenario.driver(sampler, events, params)
                elapsed = time.perf_counter() - started
                best = min(best, elapsed)
            query_cold, query_cached, syncs_per_query = (
                measure_query_metrics(sampler)
            )
            stats = sampler.stats()
            result = sampler.sample()
            backend = getattr(sampler, "executor", None)
            executor_name = backend.name if backend is not None else "serial"
            per_event = 1.0 / max(len(events), 1)
            pickle_bytes = backend.pickle_bytes if backend is not None else 0
            ipc_bytes = backend.ipc_bytes if backend is not None else 0
            close_sampler(sampler)
            record = PerfRecord(
                scenario=scenario_name,
                variant=variant_name,
                n_events=len(events),
                repeats=config.repeats,
                elapsed_s=best,
                throughput_eps=len(events) / max(best, 1e-12),
                messages_total=stats.messages_total,
                bytes_total=stats.bytes_total,
                memory_total=stats.memory_total,
                sample_len=len(result.items),
                slots_processed=stats.slots_processed,
                executor=executor_name,
                pickle_bytes_per_event=pickle_bytes * per_event,
                ipc_bytes_per_event=ipc_bytes * per_event,
                query_seconds_cold=query_cold,
                query_seconds_cached=query_cached,
                syncs_per_query=syncs_per_query,
            )
            records.append(record)
            if progress is not None:
                progress(
                    f"{scenario_name:<18} {variant_name:<18} "
                    f"{record.elapsed_s * 1e3:8.1f} ms  "
                    f"{record.throughput_eps / 1e6:6.2f} M ev/s  "
                    f"{record.messages_total:>9,} msgs"
                )
    if not records:
        raise PerfError("perf suite produced no records (empty grid?)")
    return PerfReport.build(records, params={**asdict(config)})
