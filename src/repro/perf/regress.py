"""Regression gate: diff a perf report against a committed baseline.

Per-metric tolerances, because the metrics have very different noise
characteristics:

* ``elapsed_s`` is wall-clock — machine- and load-dependent, so the gate
  uses a generous multiplicative factor (CI runs with 2.5x).
* ``messages_total`` / ``bytes_total`` / ``memory_total`` are protocol
  counters, exactly reproducible given the seed; they get a tight factor
  that only absorbs cross-version RNG/platform drift.

A comparison *fails* (``ok`` is False) when any shared record exceeds a
tolerance, when the current report lost coverage (a baseline record
with no counterpart — a silently skipped variant is itself a
regression), or when a record violates an *absolute invariant* (not a
baseline diff): a zero-copy backend (see :data:`ZERO_PICKLE_EXECUTORS`)
reporting nonzero ``pickle_bytes_per_event``, a
:data:`QUERY_CACHE_SCENARIOS` record whose cached query is not at least
:data:`QUERY_CACHE_FLOOR` times faster than its cold query, or a
:data:`MIXED_RW_SCENARIOS` record syncing as often as it queries
(``syncs_per_query`` >= :data:`MAX_SYNCS_PER_QUERY`).  Records new in
the current report are reported but never fail the gate, so adding
scenarios/variants does not require touching the baseline in the same
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PerfError
from .report import PerfRecord, PerfReport

__all__ = [
    "Tolerances",
    "MetricDelta",
    "Comparison",
    "compare_reports",
    "render_markdown",
    "ZERO_PICKLE_EXECUTORS",
    "QUERY_CACHE_SCENARIOS",
    "QUERY_CACHE_FLOOR",
    "MIXED_RW_SCENARIOS",
    "MAX_SYNCS_PER_QUERY",
]

#: Suite parameters that shape the workload itself.  Two reports are only
#: comparable when these agree — otherwise every counter ratio just
#: measures the workload-size mismatch, not a regression.
WORKLOAD_PARAMS = (
    "n_events",
    "num_sites",
    "sample_size",
    "window",
    "seed",
    "algorithm",
    "shards",
    # Read/write mix drives the mixed-rw query scenarios; reports taken
    # at different ratios measure different workloads.
    "read_ratio",
    # Pool size does not change the deterministic counters, but the
    # parallel cells' wall-clock is only comparable at equal W.
    "workers",
)


def _check_comparable(current: PerfReport, baseline: PerfReport) -> None:
    """Reject report pairs whose workloads differ.

    Raises:
        PerfError: Naming every mismatched workload parameter.  Skipped
            when either report carries no params (hand-built fixtures).
    """
    if not current.params or not baseline.params:
        return
    mismatches = [
        f"{name}: current={current.params.get(name)!r} "
        f"baseline={baseline.params.get(name)!r}"
        for name in WORKLOAD_PARAMS
        if current.params.get(name) != baseline.params.get(name)
    ]
    if mismatches:
        raise PerfError(
            "reports are not comparable — workload parameters differ "
            "(regenerate the baseline with matching flags): "
            + "; ".join(mismatches)
        )


@dataclass(frozen=True)
class Tolerances:
    """Per-metric multiplicative ceilings (current <= baseline * factor).

    Attributes:
        time_factor: Ceiling for wall-clock ``elapsed_s``.
        count_factor: Ceiling for the deterministic protocol counters.
    """

    time_factor: float = 2.5
    count_factor: float = 1.25

    def factor_for(self, metric: str) -> float:
        """The ceiling factor that applies to ``metric``."""
        return self.time_factor if metric == "elapsed_s" else self.count_factor


#: Metrics the gate checks, in report order.  Higher-is-worse for all of
#: them (throughput is implied by elapsed and not double-checked).
GATED_METRICS = ("elapsed_s", "messages_total", "bytes_total", "memory_total")

#: Execution backends whose columnar ingest must move zero pickled event
#: payload bytes across process boundaries.  ``serial``/``thread`` run
#: in-process; ``shm`` ships columns through shared memory — that is its
#: whole contract, so any pickled event payload is a regression
#: regardless of what the baseline recorded.
ZERO_PICKLE_EXECUTORS = ("serial", "thread", "shm")

#: Scenarios whose records must show the incremental merge cache working:
#: a cached query at least :data:`QUERY_CACHE_FLOOR` times faster than a
#: cold one.  Absolute invariants like the zero-pickle gate — the
#: committed baseline's wall-clock numbers never excuse a violation.
QUERY_CACHE_SCENARIOS = ("sharded-query-heavy",)
QUERY_CACHE_FLOOR = 10.0

#: Scenarios whose records must show queries sharing syncs: strictly
#: fewer executor syncs than queries over the driver's mixed traffic.
MIXED_RW_SCENARIOS = ("sharded-mixed-rw",)
MAX_SYNCS_PER_QUERY = 1.0


@dataclass(frozen=True)
class MetricDelta:
    """One metric comparison inside one record pair."""

    scenario: str
    variant: str
    metric: str
    baseline: float
    current: float
    factor: float  # tolerance ceiling that applied

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    @property
    def regressed(self) -> bool:
        """Whether this metric exceeded its tolerance."""
        return self.ratio > self.factor


@dataclass(frozen=True)
class Comparison:
    """The result of diffing a report against a baseline."""

    deltas: tuple
    missing: tuple  # (scenario, variant) in baseline but not in current
    added: tuple  # (scenario, variant) new in current (informational)

    @property
    def regressions(self) -> tuple:
        """The deltas that exceeded their tolerance."""
        return tuple(delta for delta in self.deltas if delta.regressed)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no coverage was lost."""
        return not self.regressions and not self.missing

    def render(self) -> str:
        """Human-readable summary (the CLI prints this)."""
        lines = []
        for delta in self.deltas:
            if not delta.regressed:
                continue
            lines.append(
                f"REGRESSION {delta.scenario}/{delta.variant} "
                f"{delta.metric}: {delta.current:g} vs baseline "
                f"{delta.baseline:g} ({delta.ratio:.2f}x > "
                f"{delta.factor:g}x allowed)"
            )
        for key in self.missing:
            lines.append(
                f"MISSING {key[0]}/{key[1]}: present in baseline, "
                "absent from the current report"
            )
        for key in self.added:
            lines.append(f"new (uncompared): {key[0]}/{key[1]}")
        checked = len(self.deltas)
        if self.ok:
            lines.append(
                f"OK: {checked} metric comparisons within tolerance"
            )
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} regression(s), "
                f"{len(self.missing)} missing record(s) "
                f"out of {checked} comparisons"
            )
        return "\n".join(lines)


def _metric(record: PerfRecord, name: str) -> float:
    return float(getattr(record, name))


def compare_reports(
    current: PerfReport,
    baseline: PerfReport,
    tolerances: Optional[Tolerances] = None,
) -> Comparison:
    """Diff ``current`` against ``baseline`` with per-metric tolerance.

    Args:
        current: The freshly produced report.
        baseline: The committed reference report.
        tolerances: Ceiling factors (defaults: 2.5x time, 1.25x counts).

    Returns:
        A :class:`Comparison`; check ``.ok`` for the gate verdict.

    Raises:
        PerfError: When the reports' workload parameters differ (the
            counters would measure the mismatch, not a regression).
    """
    _check_comparable(current, baseline)
    tolerances = tolerances or Tolerances()
    current_by_key = current.by_key()
    baseline_by_key = baseline.by_key()
    deltas = []
    missing = []
    for key, base_record in baseline_by_key.items():
        record = current_by_key.get(key)
        if record is None:
            missing.append(key)
            continue
        for metric in GATED_METRICS:
            deltas.append(
                MetricDelta(
                    scenario=key[0],
                    variant=key[1],
                    metric=metric,
                    baseline=_metric(base_record, metric),
                    current=_metric(record, metric),
                    factor=tolerances.factor_for(metric),
                )
            )
    for key, record in current_by_key.items():
        # Absolute invariant, not a baseline diff: zero-copy backends
        # must report zero pickled event-payload bytes.  baseline=0 with
        # a nonzero current makes the ratio inf, so any violation
        # regresses no matter the tolerance factor.
        if (
            record.executor in ZERO_PICKLE_EXECUTORS
            and record.pickle_bytes_per_event > 0
        ):
            deltas.append(
                MetricDelta(
                    scenario=key[0],
                    variant=key[1],
                    metric="pickle_bytes_per_event",
                    baseline=0.0,
                    current=record.pickle_bytes_per_event,
                    factor=1.0,
                )
            )
        # Absolute invariant: on the query-heavy scenario a cached query
        # must be at least QUERY_CACHE_FLOOR times faster than a cold
        # one.  Encoded as "cached must not exceed cold/FLOOR" so the
        # standard ratio > factor machinery reports it; appended only on
        # violation, like the zero-pickle gate.
        if record.scenario in QUERY_CACHE_SCENARIOS:
            ceiling = _metric(record, "query_seconds_cold") / QUERY_CACHE_FLOOR
            if record.query_seconds_cached > ceiling:
                deltas.append(
                    MetricDelta(
                        scenario=key[0],
                        variant=key[1],
                        metric="query_seconds_cached",
                        baseline=ceiling,
                        current=record.query_seconds_cached,
                        factor=1.0,
                    )
                )
        # Absolute invariant: the mixed read/write scenario must share
        # syncs across queries — strictly fewer syncs than queries
        # (< MAX_SYNCS_PER_QUERY).  Appended only on violation with a
        # zero baseline, so the ratio is inf and the delta regresses
        # regardless of tolerance, exactly like the zero-pickle gate.
        if (
            record.scenario in MIXED_RW_SCENARIOS
            and record.syncs_per_query >= MAX_SYNCS_PER_QUERY
        ):
            deltas.append(
                MetricDelta(
                    scenario=key[0],
                    variant=key[1],
                    metric="syncs_per_query",
                    baseline=0.0,
                    current=record.syncs_per_query,
                    factor=1.0,
                )
            )
    added = [key for key in current_by_key if key not in baseline_by_key]
    return Comparison(
        deltas=tuple(deltas),
        missing=tuple(sorted(missing)),
        added=tuple(sorted(added)),
    )


def render_markdown(comparison: Comparison, current: PerfReport) -> str:
    """GitHub-flavored markdown summary (CI writes it to the step
    summary page).

    Leads with the gate verdict, lists every regression, then renders
    the query-side metrics table for the query-path scenarios
    (:data:`QUERY_CACHE_SCENARIOS` + :data:`MIXED_RW_SCENARIOS`) so the
    cache-speedup and sync-sharing numbers are visible per run without
    downloading the report artifact.
    """
    lines = ["### Perf regression gate", ""]
    if comparison.ok:
        lines.append(
            f"**OK** — {len(comparison.deltas)} metric comparisons "
            "within tolerance"
        )
    else:
        lines.append(
            f"**FAIL** — {len(comparison.regressions)} regression(s), "
            f"{len(comparison.missing)} missing record(s)"
        )
        lines.append("")
        lines.append("| scenario | variant | metric | current | baseline | ratio |")
        lines.append("|---|---|---|---|---|---|")
        for delta in comparison.regressions:
            lines.append(
                f"| {delta.scenario} | {delta.variant} | {delta.metric} "
                f"| {delta.current:g} | {delta.baseline:g} "
                f"| {delta.ratio:.2f}x > {delta.factor:g}x |"
            )
        for key in comparison.missing:
            lines.append(f"| {key[0]} | {key[1]} | *missing* | — | — | — |")
    query_scenarios = QUERY_CACHE_SCENARIOS + MIXED_RW_SCENARIOS
    query_records = [
        record
        for record in current.records
        if record.scenario in query_scenarios
    ]
    if query_records:
        lines.append("")
        lines.append("### Query-path metrics")
        lines.append("")
        lines.append(
            "| scenario | variant | cold (µs) | cached (µs) "
            "| cache speedup | syncs/query |"
        )
        lines.append("|---|---|---|---|---|---|")
        for record in query_records:
            cold = record.query_seconds_cold
            cached = record.query_seconds_cached
            speedup = cold / cached if cached > 0 else float("inf")
            lines.append(
                f"| {record.scenario} | {record.variant} "
                f"| {cold * 1e6:.1f} | {cached * 1e6:.2f} "
                f"| {speedup:.1f}x | {record.syncs_per_query:.3f} |"
            )
    if comparison.added:
        lines.append("")
        lines.append(
            "New (uncompared) records: "
            + ", ".join(f"{key[0]}/{key[1]}" for key in comparison.added)
        )
    return "\n".join(lines)
