"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Commands:

* ``repro list`` — show all registered experiments.
* ``repro run <id> [...]`` — run one (or ``all``) experiments and print
  paper-style tables; ``--csv DIR`` also writes CSV files.
* ``repro bounds --k K --s S --d D`` — print the theoretical bounds.
* ``repro variants`` — list the registered sampler variants.
* ``repro demo`` — drive any registered sampler over a calibrated
  dataset through the unified ``make_sampler`` front door.
* ``repro perf run|compare|baseline`` — the benchmark suite: run the
  scenario x variant grid to a schema-versioned JSON report, diff a
  report against a baseline with per-metric tolerances (nonzero exit on
  regression), or (re)generate ``benchmarks/baseline.json``.
* ``repro perf profile <scenario>`` — cProfile one (scenario, variant)
  cell and print the top cumulative hot spots, so perf work starts from
  data instead of guesses.
* ``repro accuracy run|compare|baseline`` — the statistical twin of the
  perf suite: replay the scenario workloads through the sampler
  variants, score every registered estimator against exact ground
  truth, and gate the error trajectory against
  ``benchmarks/accuracy_baseline.json`` (``compare --format markdown``
  emits the CI job-summary table).
* ``repro lint [paths ...]`` — the project-invariant static analyzer
  (AST rules RPR001-RPR008 over ``src/`` by default); ``--format json``
  emits the schema-versioned report CI archives, ``--list-rules`` prints
  the rule catalog.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .analysis.bounds import (
    lower_bound_total,
    optimality_gap,
    upper_bound_total,
)
from .core.api import get_variant, make_sampler, sampler_variants
from .errors import ReproError
from .experiments.config import ExperimentConfig
from .experiments.registry import EXPERIMENTS, run_experiment
from .streams.datasets import SCALES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distinct random sampling from a distributed stream — "
        "reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run experiments")
    run_p.add_argument(
        "experiment",
        help="experiment id (see 'repro list') or 'all'",
    )
    run_p.add_argument(
        "--scale", default="small", choices=SCALES, help="dataset scale"
    )
    run_p.add_argument(
        "--runs", type=int, default=0, help="repetitions per point (0 = default)"
    )
    run_p.add_argument("--seed", type=int, default=20150525, help="master seed")
    run_p.add_argument(
        "--datasets",
        default="oc48,enron",
        help="comma-separated dataset families",
    )
    run_p.add_argument(
        "--csv", default=None, metavar="DIR", help="also write CSVs here"
    )

    bounds_p = sub.add_parser("bounds", help="print theoretical bounds")
    bounds_p.add_argument("--k", type=int, required=True, help="number of sites")
    bounds_p.add_argument("--s", type=int, required=True, help="sample size")
    bounds_p.add_argument("--d", type=int, required=True, help="distinct elements")

    sub.add_parser("datasets", help="list calibrated dataset profiles")

    sub.add_parser("variants", help="list registered sampler variants")

    demo_p = sub.add_parser(
        "demo",
        help="run a distributed sampler over a calibrated dataset and "
        "print the sample, the distinct-count estimate, and the costs",
    )
    demo_p.add_argument("--dataset", default="oc48", help="dataset family")
    demo_p.add_argument("--scale", default="tiny", choices=SCALES)
    demo_p.add_argument("--sites", type=int, default=5, help="number of sites")
    demo_p.add_argument("--sample-size", type=int, default=16)
    demo_p.add_argument("--seed", type=int, default=0)
    demo_p.add_argument(
        "--variant",
        default="infinite",
        help="sampler variant (see 'repro variants')",
    )
    demo_p.add_argument(
        "--window",
        type=int,
        default=0,
        help="window size in slots (sliding variants; 0 = infinite)",
    )
    demo_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="coordinator groups S; > 1 runs the hash-partitioned "
        "'sharded:<variant>' wrapper",
    )
    demo_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker count W for the non-serial executors; > 0 with no "
        "--executor selects the multiprocessing ProcessExecutor "
        "(0 = auto for an explicit --executor, else in-process serial)",
    )
    demo_p.add_argument(
        "--executor",
        default=None,
        choices=("serial", "thread", "process", "shm"),
        help="execution backend for the shard groups (default: process "
        "when --workers > 0, serial otherwise)",
    )
    demo_p.add_argument(
        "--reshard",
        type=int,
        default=0,
        metavar="S2",
        help="elastically re-partition to this many coordinator groups "
        "halfway through the stream (implies the sharded wrapper; the "
        "final sample is bit-identical to a fresh S2-sharded run)",
    )
    demo_p.add_argument(
        "--chaos-drop",
        type=float,
        default=0.0,
        metavar="P",
        help="chaos mode: per-message drop probability (rewires the "
        "group networks onto the seeded ChaosNetwork; forces the "
        "serial executor)",
    )
    demo_p.add_argument(
        "--chaos-duplicate",
        type=float,
        default=0.0,
        metavar="P",
        help="chaos mode: per-message duplication probability",
    )
    demo_p.add_argument(
        "--chaos-reorder",
        type=float,
        default=0.0,
        metavar="P",
        help="chaos mode: per-delivery reorder probability",
    )
    demo_p.add_argument(
        "--chaos-kill",
        type=int,
        action="append",
        metavar="SITE",
        help="chaos mode: blackhole this site for the first half of the "
        "stream, then revive it (repeatable)",
    )
    demo_p.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault schedule (reproducible faults)",
    )

    perf_p = sub.add_parser(
        "perf", help="benchmark suite: run / compare / baseline"
    )
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)

    def _add_suite_args(
        p: argparse.ArgumentParser, n: int = 20_000, repeats: int = 1
    ) -> None:
        p.add_argument(
            "--n", type=int, default=n, help="events per scenario"
        )
        p.add_argument("--sites", type=int, default=8, help="number of sites")
        p.add_argument("--sample-size", type=int, default=16)
        p.add_argument(
            "--window", type=int, default=64, help="window for slotted cells"
        )
        p.add_argument(
            "--shards",
            type=int,
            default=4,
            help="coordinator groups for the sharded:* variants",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=4,
            help="worker processes for the parallel-executor scenarios",
        )
        p.add_argument("--seed", type=int, default=20150525)
        p.add_argument(
            "--repeats",
            type=int,
            default=repeats,
            help="timed runs per cell (best-of)",
        )
        p.add_argument(
            "--scenario",
            action="append",
            default=None,
            metavar="NAME",
            help="restrict to a scenario (repeatable; default all)",
        )
        p.add_argument(
            "--variant",
            action="append",
            default=None,
            metavar="NAME",
            help="restrict to a variant (repeatable; default all)",
        )
        p.add_argument(
            "--read-ratio",
            type=float,
            default=4.0,
            help="queries per ingest chunk for the sharded-mixed-rw "
            "scenario (default 4.0; a workload parameter — compare "
            "against a baseline generated at the same ratio)",
        )

    perf_run = perf_sub.add_parser(
        "run", help="run the suite and write a JSON report"
    )
    _add_suite_args(perf_run)
    perf_run.add_argument(
        "--out", default=None, metavar="FILE", help="write the report here"
    )

    perf_cmp = perf_sub.add_parser(
        "compare",
        help="diff a report against a baseline; exit 1 on regression",
    )
    perf_cmp.add_argument("current", help="report JSON produced by 'perf run'")
    perf_cmp.add_argument("baseline", help="baseline JSON to diff against")
    perf_cmp.add_argument(
        "--time-tolerance",
        type=float,
        default=2.5,
        help="max elapsed_s slowdown factor (default 2.5)",
    )
    perf_cmp.add_argument(
        "--count-tolerance",
        type=float,
        default=1.25,
        help="max factor for the deterministic counters (default 1.25)",
    )
    perf_cmp.add_argument(
        "--format",
        choices=("human", "markdown"),
        default="human",
        help="output format (markdown renders the gate verdict plus the "
        "query-path metrics table for CI step summaries)",
    )

    perf_prof = perf_sub.add_parser(
        "profile",
        help="cProfile one (scenario, variant) cell and print hot spots",
    )
    perf_prof.add_argument("scenario", help="perf scenario to profile")
    perf_prof.add_argument(
        "--variant",
        default=None,
        metavar="NAME",
        help="variant to drive (default: first registered variant the "
        "scenario applies to)",
    )
    perf_prof.add_argument("--n", type=int, default=20_000)
    perf_prof.add_argument("--sites", type=int, default=8)
    perf_prof.add_argument("--sample-size", type=int, default=16)
    perf_prof.add_argument("--window", type=int, default=64)
    perf_prof.add_argument("--shards", type=int, default=4)
    perf_prof.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count W for the non-serial executors",
    )
    perf_prof.add_argument(
        "--executor",
        default=None,
        choices=("serial", "thread", "process", "shm"),
        help="execution backend override (default: what the scenario "
        "forces, else serial)",
    )
    perf_prof.add_argument("--seed", type=int, default=20150525)
    perf_prof.add_argument(
        "--read-ratio",
        type=float,
        default=4.0,
        help="queries per ingest chunk for sharded-mixed-rw",
    )
    perf_prof.add_argument(
        "--top",
        type=int,
        default=25,
        help="hot spots to print, by cumulative time (default 25)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="project-invariant static analysis (AST rules RPR001-RPR008)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to scan (default: src)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="CODE",
        help="restrict to a rule code (repeatable; default all)",
    )
    lint_p.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default human)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )

    perf_base = perf_sub.add_parser(
        "baseline", help="run the suite and (re)write the committed baseline"
    )
    # Defaults must mirror the CI perf-smoke run's workload (--n 8000) or
    # a bare `repro perf baseline` would commit counters CI can never
    # match; compare_reports rejects mismatched workloads outright.
    _add_suite_args(perf_base, n=8_000, repeats=2)
    perf_base.add_argument(
        "--out",
        default="benchmarks/baseline.json",
        metavar="FILE",
        help="baseline path (default benchmarks/baseline.json)",
    )
    perf_base.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing committed baseline",
    )

    acc_p = sub.add_parser(
        "accuracy",
        help="estimator accuracy suite: run / compare / baseline",
    )
    acc_sub = acc_p.add_subparsers(dest="accuracy_command", required=True)

    def _add_accuracy_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=8_000, help="events per scenario")
        p.add_argument("--sites", type=int, default=8, help="number of sites")
        p.add_argument("--sample-size", type=int, default=64)
        p.add_argument(
            "--window", type=int, default=64, help="window for slotted cells"
        )
        p.add_argument(
            "--shards",
            type=int,
            default=4,
            help="coordinator groups for the sharded:* variants",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=2,
            help="worker processes for the parallel-executor scenarios",
        )
        p.add_argument("--seed", type=int, default=20150525)
        p.add_argument(
            "--scenario",
            action="append",
            default=None,
            metavar="NAME",
            help="restrict to a scenario (repeatable; default: the "
            "acceptance grid)",
        )
        p.add_argument(
            "--variant",
            action="append",
            default=None,
            metavar="NAME",
            help="restrict to a variant (repeatable; default: the "
            "acceptance grid)",
        )
        p.add_argument(
            "--estimator",
            action="append",
            default=None,
            metavar="NAME",
            help="restrict to an estimator (repeatable; default all)",
        )

    acc_run = acc_sub.add_parser(
        "run", help="run the suite and write a JSON report"
    )
    _add_accuracy_args(acc_run)
    acc_run.add_argument(
        "--out", default=None, metavar="FILE", help="write the report here"
    )

    acc_cmp = acc_sub.add_parser(
        "compare",
        help="diff a report against a baseline; exit 1 on regression",
    )
    acc_cmp.add_argument(
        "current", help="report JSON produced by 'accuracy run'"
    )
    acc_cmp.add_argument("baseline", help="baseline JSON to diff against")
    acc_cmp.add_argument(
        "--drift-factor",
        type=float,
        default=1.5,
        help="max error growth factor over the baseline (default 1.5)",
    )
    acc_cmp.add_argument(
        "--slack",
        type=float,
        default=0.02,
        help="additive drift slack over the scaled baseline (default 0.02)",
    )
    acc_cmp.add_argument(
        "--format",
        choices=("human", "markdown"),
        default="human",
        help="output format (markdown renders the CI job-summary table)",
    )

    acc_base = acc_sub.add_parser(
        "baseline", help="run the suite and (re)write the committed baseline"
    )
    _add_accuracy_args(acc_base)
    acc_base.add_argument(
        "--out",
        default="benchmarks/accuracy_baseline.json",
        metavar="FILE",
        help="baseline path (default benchmarks/accuracy_baseline.json)",
    )
    acc_base.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing committed baseline",
    )
    return parser


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for experiment_id in sorted(EXPERIMENTS):
        exp = EXPERIMENTS[experiment_id]
        print(f"{experiment_id.ljust(width)}  {exp.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        scale=args.scale,
        runs=args.runs,
        seed=args.seed,
        datasets=tuple(d for d in args.datasets.split(",") if d),
    )
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id in ids:
        started = time.perf_counter()
        results = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - started
        for i, result in enumerate(results):
            print(result.render())
            if csv_dir:
                suffix = f"_{i}" if len(results) > 1 else ""
                path = csv_dir / f"{experiment_id}{suffix}.csv"
                path.write_text(result.to_csv())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    upper = upper_bound_total(args.k, args.s, args.d)
    lower = lower_bound_total(args.k, args.s, args.d)
    print(f"k={args.k} s={args.s} d={args.d}")
    print(f"  Lemma 4 upper bound : {upper:,.1f} messages")
    print(f"  Lemma 9 lower bound : {lower:,.1f} messages")
    print(f"  upper/lower gap     : {optimality_gap(args.k, args.s, args.d):.3f}")
    return 0


def _cmd_datasets() -> int:
    from .streams.datasets import DATASETS

    print(f"{'name':<14} {'elements':>12} {'distinct':>10} {'ratio':>7} {'skew':>5}")
    for name in sorted(DATASETS):
        spec = DATASETS[name]
        print(
            f"{name:<14} {spec.n_elements:>12,} {spec.n_distinct:>10,} "
            f"{spec.distinct_ratio:>7.3f} {spec.skew:>5.2f}"
        )
    return 0


def _cmd_variants() -> int:
    width = max(len(name) for name in sampler_variants())
    print(f"{'variant'.ljust(width)}  {'kind':<10} {'routing':<15} description")
    for name in sampler_variants():
        variant = get_variant(name)
        kind = "baseline" if variant.baseline else (
            "windowed" if variant.windowed else "infinite"
        )
        if variant.with_replacement:
            kind = "w/replace"
        print(
            f"{name.ljust(width)}  {kind:<10} {variant.routing:<15} "
            f"{variant.summary}"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .errors import EstimationError
    from .estimators.distinct_count import estimate_from_sampler
    from .streams.datasets import get_dataset
    from .streams.slotted import SlottedArrivals

    spec = get_dataset(args.dataset, args.scale)
    rng = np.random.default_rng(args.seed)
    ids = spec.generate(rng)
    variant = args.variant
    executor = args.executor or (
        "process" if args.workers > 0 else "serial"
    )
    chaos_kill = args.chaos_kill or []
    chaos = bool(
        args.chaos_drop
        or args.chaos_duplicate
        or args.chaos_reorder
        or chaos_kill
    )
    if chaos and executor != "serial":
        print(
            "error: chaos mode rewires the parent's group networks; "
            "parallel workers rebuild on the default transport — use "
            "the serial executor (drop --workers/--executor)",
            file=sys.stderr,
        )
        return 2
    if any(site not in range(args.sites) for site in chaos_kill):
        print(
            f"error: --chaos-kill sites must be in [0, {args.sites})",
            file=sys.stderr,
        )
        return 2
    if args.reshard < 0:
        print("error: --reshard must be >= 1", file=sys.stderr)
        return 2
    if (
        args.shards > 1
        or args.workers > 0
        or args.reshard
        or executor != "serial"
    ) and not variant.startswith("sharded:"):
        variant = f"sharded:{variant}"
    system = make_sampler(
        variant,
        num_sites=args.sites,
        sample_size=args.sample_size,
        window=args.window,
        seed=args.seed,
        algorithm="mix64",
        shards=args.shards,
        executor=executor,
        workers=args.workers,
    )
    initial_shards = args.shards
    chaos_nets: list = []

    def rewire_chaos() -> None:
        from .netsim import ChaosNetwork

        chaos_nets.clear()
        groups = (
            system.groups if variant.startswith("sharded:") else [system]
        )
        for group in groups:
            net = ChaosNetwork.rewire(
                group,
                drop=args.chaos_drop,
                duplicate=args.chaos_duplicate,
                reorder=args.chaos_reorder,
                seed=args.chaos_seed,
            )
            for site in chaos_kill:
                net.kill_site(site)
            chaos_nets.append(net)

    def pump_chaos() -> None:
        for net in chaos_nets:
            net.pump()

    def midpoint() -> None:
        """Halfway through the stream: revive killed sites, reshard live."""
        pump_chaos()
        for net in chaos_nets:
            for site in list(net.dead_sites):
                net.revive_site(site)
        if args.reshard:
            system.reshard(args.reshard)
            if chaos:
                # reshard builds fresh groups (on the default transport);
                # put the chaos faults back for the second half.
                rewire_chaos()

    if chaos:
        rewire_chaos()
    started = time.perf_counter()
    truth = spec.n_distinct
    if args.window:
        schedule = SlottedArrivals(ids.tolist(), args.sites, 5, rng)
        live: set = set()
        final_slot = schedule.num_slots
        for slot, arrivals in schedule.slots():
            if (args.reshard or chaos_kill) and slot == final_slot // 2:
                midpoint()
            system.advance(slot)
            system.observe_batch(arrivals)
            pump_chaos()
            if slot > final_slot - args.window:
                live.update(element for _, element in arrivals)
        # The windowed estimate targets the *window's* distinct count.
        truth = len(live)
    else:
        sites = rng.integers(0, args.sites, ids.size).tolist()
        events = list(zip(sites, ids.tolist()))
        if args.reshard or chaos:
            half = len(events) // 2
            system.observe_batch(events[:half])
            midpoint()
            system.observe_batch(events[half:])
            pump_chaos()
        else:
            system.observe_batch(events)
    elapsed = time.perf_counter() - started
    result = system.sample()
    stats = system.stats()
    print(
        f"dataset {spec.name}: {spec.n_elements:,} elements, "
        f"{spec.n_distinct:,} distinct"
    )
    print(
        f"variant={variant} k={args.sites}, s={args.sample_size}: "
        f"processed in {elapsed:.2f}s "
        f"({spec.n_elements / max(elapsed, 1e-9) / 1e6:.1f}M el/s)"
    )
    if variant.startswith("sharded:"):
        critical = max(system.critical_path_seconds, 1e-9)
        if executor == "serial":
            path_kind = "simulated (serial in-process)"
        else:
            unit = "threads" if executor == "thread" else "worker processes"
            width = args.workers if args.workers > 0 else "auto"
            path_kind = f"measured over {width} {unit}"
        print(
            f"shards: {system.shards} coordinator groups "
            f"[{system.executor.name} executor], critical-path "
            f"{critical:.3f}s {path_kind} "
            f"({spec.n_elements / critical / 1e6:.1f}M el/s across groups)"
        )
        if args.reshard:
            print(
                f"resharded live mid-stream: {initial_shards} -> "
                f"{system.shards} groups (no resampling; the merged "
                "sample is bit-identical to a fresh "
                f"{system.shards}-sharded run)"
            )
        if system.executor.recoveries:
            print(f"crash-replay recoveries: {system.executor.recoveries}")
        system.close()
    if chaos:
        print(
            "chaos: injected "
            f"{sum(n.dropped_messages for n in chaos_nets):,} drops, "
            f"{sum(n.duplicated_messages for n in chaos_nets):,} "
            "duplicates, "
            f"{sum(n.reordered_messages for n in chaos_nets):,} reorders"
            + (
                f"; sites {sorted(set(chaos_kill))} were dead for the "
                "first half"
                if chaos_kill
                else ""
            )
        )
    print(f"sample (first 10 ids): {list(result.items[:10])}")
    try:
        estimate = estimate_from_sampler(system)
        print(
            f"distinct-count estimate: {estimate.estimate:,.0f} "
            f"[{estimate.low:,.0f}, {estimate.high:,.0f}] "
            f"(truth {truth:,})"
        )
    except EstimationError:
        pass  # variant has no bottom-s threshold (with-replacement)
    print(f"messages: {stats.messages_total:,}")
    return 0


def _perf_suite_config(args: argparse.Namespace):
    from .perf import SuiteConfig

    return SuiteConfig(
        n_events=args.n,
        num_sites=args.sites,
        sample_size=args.sample_size,
        window=args.window,
        seed=args.seed,
        repeats=args.repeats,
        scenarios=tuple(args.scenario or ()),
        variants=tuple(args.variant or ()),
        shards=args.shards,
        workers=args.workers,
        read_ratio=args.read_ratio,
    )


def _cmd_perf_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    from .errors import PerfError
    from .perf import SuiteConfig
    from .perf.scenarios import get_scenario
    from .perf.suite import build_sampler_for, close_sampler, warmup_sampler

    scenario = get_scenario(args.scenario)
    executor = args.executor or scenario.executor
    config = SuiteConfig(
        n_events=args.n,
        num_sites=args.sites,
        sample_size=args.sample_size,
        window=args.window,
        seed=args.seed,
        shards=args.shards,
        workers=args.workers,
        read_ratio=args.read_ratio,
    )
    variant_name = args.variant
    if variant_name is None:
        for name in sampler_variants():
            probe = build_sampler_for(
                config, name, scenario.slotted, executor
            )
            if scenario.applies_to(name, probe):
                variant_name = name
                break
        if variant_name is None:
            raise PerfError(
                f"no registered variant applies to scenario {args.scenario!r}"
            )
    else:
        probe = build_sampler_for(
            config, variant_name, scenario.slotted, executor
        )
        if not scenario.applies_to(variant_name, probe):
            raise PerfError(
                f"scenario {args.scenario!r} does not apply to variant "
                f"{variant_name!r}"
            )
    params = config.scenario_params()
    events = scenario.build(params)
    sampler = build_sampler_for(
        config, variant_name, scenario.slotted, executor
    )
    warmup_sampler(sampler)  # keep pool start-up out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    scenario.driver(sampler, events, params)
    profiler.disable()
    close_sampler(sampler)
    print(
        f"profiled scenario={args.scenario} variant={variant_name} "
        f"n={len(events)} sites={args.sites} shards={args.shards} "
        f"executor={executor or 'serial'}"
    )
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue(), end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.lint import all_rules, run_lint

    if args.list_rules:
        width = max(len(rule.code) for rule in all_rules())
        for rule in all_rules():
            print(
                f"{rule.code.ljust(width)}  [{rule.severity}] "
                f"{rule.name}: {rule.summary}"
            )
        return 0
    report = run_lint(args.paths, rules=args.rule)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _guard_baseline_overwrite(out, force: bool) -> None:
    """Refuse to clobber a committed baseline unless ``--force`` is given.

    Raises:
        ReproError: When the target exists and ``force`` is False —
            an accidental bare ``baseline`` run must not silently move
            the goalposts the CI gates measure against.
    """
    path = pathlib.Path(out)
    if path.exists() and not force:
        raise ReproError(
            f"refusing to overwrite existing baseline {path} "
            "(pass --force to regenerate it deliberately)"
        )


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf import (
        Tolerances,
        compare_reports,
        load_report,
        render_markdown,
        run_suite,
        save_report,
    )

    if args.perf_command == "profile":
        return _cmd_perf_profile(args)

    if args.perf_command == "compare":
        current = load_report(args.current)
        baseline = load_report(args.baseline)
        comparison = compare_reports(
            current,
            baseline,
            Tolerances(
                time_factor=args.time_tolerance,
                count_factor=args.count_tolerance,
            ),
        )
        if args.format == "markdown":
            print(render_markdown(comparison, current))
        else:
            print(comparison.render())
        return 0 if comparison.ok else 1

    if args.perf_command == "baseline":
        _guard_baseline_overwrite(args.out, args.force)
    report = run_suite(_perf_suite_config(args), progress=print)
    out = args.out
    if args.perf_command == "baseline" or out is not None:
        path = save_report(report, out)
        print(f"wrote {path} ({len(report.records)} records)")
    return 0


def _accuracy_config(args: argparse.Namespace):
    from .accuracy import AccuracyConfig
    from .accuracy.suite import DEFAULT_SCENARIOS, DEFAULT_VARIANTS

    return AccuracyConfig(
        n_events=args.n,
        num_sites=args.sites,
        sample_size=args.sample_size,
        window=args.window,
        seed=args.seed,
        scenarios=tuple(args.scenario or DEFAULT_SCENARIOS),
        variants=tuple(args.variant or DEFAULT_VARIANTS),
        estimators=tuple(args.estimator or ()),
        shards=args.shards,
        workers=args.workers,
    )


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from .accuracy import (
        AccuracyTolerances,
        compare_accuracy_reports,
        load_accuracy_report,
        run_accuracy_suite,
        save_accuracy_report,
    )

    if args.accuracy_command == "compare":
        current = load_accuracy_report(args.current)
        baseline = load_accuracy_report(args.baseline)
        comparison = compare_accuracy_reports(
            current,
            baseline,
            AccuracyTolerances(
                drift_factor=args.drift_factor, slack=args.slack
            ),
        )
        if args.format == "markdown":
            print(comparison.render_markdown(), end="")
        else:
            print(comparison.render())
        return 0 if comparison.ok else 1

    if args.accuracy_command == "baseline":
        _guard_baseline_overwrite(args.out, args.force)
    report = run_accuracy_suite(_accuracy_config(args), progress=print)
    out = args.out
    if args.accuracy_command == "baseline" or out is not None:
        path = save_accuracy_report(report, out)
        print(f"wrote {path} ({len(report.records)} records)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "bounds":
            return _cmd_bounds(args)
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "variants":
            return _cmd_variants()
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "perf":
            return _cmd_perf(args)
        if args.command == "accuracy":
            return _cmd_accuracy(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
