"""Harmonic numbers — the currency of the paper's message bounds.

Every bound in Chapter 3 is expressed through ``H_n = sum_{j=1..n} 1/j``.
Exact summation is used up to a cached cutoff; beyond it the Euler–
Maclaurin expansion ``H_n ≈ ln n + γ + 1/(2n) − 1/(12n²)`` is accurate to
well below 1e-12, far tighter than anything the experiments resolve.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["harmonic", "harmonic_diff", "EULER_GAMMA"]

#: The Euler–Mascheroni constant.
EULER_GAMMA = 0.5772156649015328606

_EXACT_LIMIT = 1_000_000
_cache: np.ndarray | None = None


def _exact_table() -> np.ndarray:
    global _cache
    if _cache is None:
        _cache = np.concatenate(
            [[0.0], np.cumsum(1.0 / np.arange(1, _EXACT_LIMIT + 1))]
        )
    return _cache


def harmonic(n: int | float) -> float:
    """The n-th harmonic number H_n (H_0 = 0).

    Args:
        n: Non-negative index; floats are truncated.

    Returns:
        H_n, exact for n <= 1e6, Euler–Maclaurin beyond.

    Raises:
        ValueError: If n < 0.
    """
    n = int(n)
    if n < 0:
        raise ValueError(f"harmonic number undefined for n={n}")
    if n <= _EXACT_LIMIT:
        return float(_exact_table()[n])
    inv = 1.0 / n
    return math.log(n) + EULER_GAMMA + 0.5 * inv - inv * inv / 12.0


def harmonic_diff(n: int, m: int) -> float:
    """``H_n - H_m`` computed stably (both large indices allowed).

    Args:
        n: Upper index.
        m: Lower index (0 <= m <= n).

    Returns:
        The difference, ~``ln(n/m)`` for large arguments.
    """
    if m > n:
        raise ValueError(f"harmonic_diff requires m <= n, got n={n}, m={m}")
    if n <= _EXACT_LIMIT:
        table = _exact_table()
        return float(table[n] - table[m])
    return harmonic(n) - harmonic(m)
