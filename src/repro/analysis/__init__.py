"""Theory: harmonic numbers, message/space bounds, reporting statistics."""

from .bounds import (
    drs_message_bound,
    lower_bound_total,
    optimality_gap,
    sliding_window_space,
    upper_bound_observation1,
    upper_bound_per_site,
    upper_bound_total,
)
from .fits import SHAPE_MODELS, ShapeFit, best_shape, fit_shape
from .harmonic import EULER_GAMMA, harmonic, harmonic_diff
from .stats import Summary, ratio_to_bound, summarize

__all__ = [
    "harmonic",
    "harmonic_diff",
    "EULER_GAMMA",
    "upper_bound_per_site",
    "upper_bound_total",
    "upper_bound_observation1",
    "lower_bound_total",
    "optimality_gap",
    "sliding_window_space",
    "drs_message_bound",
    "Summary",
    "summarize",
    "ratio_to_bound",
    "ShapeFit",
    "fit_shape",
    "best_shape",
    "SHAPE_MODELS",
]
