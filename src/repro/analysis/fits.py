"""Curve-shape fitting: turning "grows logarithmically" into a number.

The paper's evaluation narrates shapes — "memory grows logarithmically
with the window size", "messages increase almost linearly with s",
"flooding grows linearly in k".  This module fits the claimed functional
forms by least squares and reports the goodness of fit, so the benchmark
suite can assert *which shape fits best* rather than eyeballing.

Models: ``linear`` (a·x + b), ``log`` (a·ln x + b), ``powerlaw``
(a·x^c — fitted in log-log space), ``constant`` (b), and
``inverse`` (a/x + b).  All fits are closed-form least squares on (a, b)
with NumPy — no iterative optimizers, no scipy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ShapeFit", "fit_shape", "best_shape", "SHAPE_MODELS"]

#: Model names accepted by :func:`fit_shape`.
SHAPE_MODELS = ("linear", "log", "powerlaw", "constant", "inverse")


@dataclass(frozen=True, slots=True)
class ShapeFit:
    """One fitted model.

    Attributes:
        model: Model name from :data:`SHAPE_MODELS`.
        params: Fitted parameters ``(a, b)`` — for ``powerlaw`` these are
            ``(a, c)`` of ``a·x^c``; for ``constant`` ``(0, b)``.
        r_squared: Coefficient of determination in the original y-space.
        predictions: Fitted values at the input xs.
    """

    model: str
    params: tuple[float, float]
    r_squared: float
    predictions: tuple[float, ...]

    def predict(self, x: float) -> float:
        """Evaluate the fitted model at ``x``."""
        a, b = self.params
        if self.model == "linear":
            return a * x + b
        if self.model == "log":
            return a * math.log(x) + b
        if self.model == "powerlaw":
            return a * x**b
        if self.model == "constant":
            return b
        if self.model == "inverse":
            return a / x + b
        raise AssertionError(self.model)  # pragma: no cover


def _r_squared(ys: np.ndarray, preds: np.ndarray) -> float:
    ss_res = float(np.sum((ys - preds) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_shape(
    xs: Sequence[float], ys: Sequence[float], model: str
) -> ShapeFit:
    """Least-squares fit of one model.

    Args:
        xs: Positive x values (>= 2 points; > 0 for log/powerlaw/inverse).
        ys: Matching y values (> 0 required for powerlaw).
        model: One of :data:`SHAPE_MODELS`.

    Returns:
        A :class:`ShapeFit` with R² computed in the original y-space.

    Raises:
        ValueError: For unknown models or unusable inputs.
    """
    if model not in SHAPE_MODELS:
        raise ValueError(f"unknown model {model!r}; expected {SHAPE_MODELS}")
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")

    if model == "constant":
        b = float(y.mean())
        preds = np.full_like(y, b)
        return ShapeFit("constant", (0.0, b), _r_squared(y, preds), tuple(preds))

    if model == "powerlaw":
        if np.any(x <= 0) or np.any(y <= 0):
            raise ValueError("powerlaw fit requires positive xs and ys")
        coeffs = np.polyfit(np.log(x), np.log(y), 1)
        c, log_a = float(coeffs[0]), float(coeffs[1])
        a = math.exp(log_a)
        preds = a * x**c
        return ShapeFit("powerlaw", (a, c), _r_squared(y, preds), tuple(preds))

    if model == "linear":
        basis = x
    elif model == "log":
        if np.any(x <= 0):
            raise ValueError("log fit requires positive xs")
        basis = np.log(x)
    else:  # inverse
        if np.any(x == 0):
            raise ValueError("inverse fit requires non-zero xs")
        basis = 1.0 / x
    coeffs = np.polyfit(basis, y, 1)
    a, b = float(coeffs[0]), float(coeffs[1])
    preds = a * basis + b
    return ShapeFit(model, (a, b), _r_squared(y, preds), tuple(preds))


def best_shape(
    xs: Sequence[float],
    ys: Sequence[float],
    models: Sequence[str] = SHAPE_MODELS,
) -> ShapeFit:
    """Fit several models and return the best by R².

    Args:
        xs: X values.
        ys: Y values.
        models: Candidate models (defaults to all applicable ones; models
            whose preconditions fail are skipped).

    Returns:
        The :class:`ShapeFit` with the highest R².

    Raises:
        ValueError: If no candidate model is applicable.
    """
    fits = []
    for model in models:
        try:
            fits.append(fit_shape(xs, ys, model))
        except ValueError:
            continue
    if not fits:
        raise ValueError("no applicable model for the given data")
    return max(fits, key=lambda f: f.r_squared)
