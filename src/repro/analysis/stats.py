"""Small statistics helpers for experiment reporting.

The paper reports each data point as the average of 50 (infinite window)
or 10 (sliding window) independent runs.  These helpers compute the means
and normal-approximation confidence intervals the experiment runner prints,
plus the empirical-vs-theory ratio used in the theory-validation benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize", "ratio_to_bound"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Mean / spread summary of repeated measurements.

    Attributes:
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0 for a single run).
        low: ~95 % CI lower bound on the mean.
        high: ~95 % CI upper bound on the mean.
        n: Number of measurements.
    """

    mean: float
    std: float
    low: float
    high: float
    n: int


def summarize(values: Sequence[float]) -> Summary:
    """Summarize repeated measurements.

    Args:
        values: At least one measurement.

    Raises:
        ValueError: If ``values`` is empty.
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarize zero measurements")
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
        half = 1.96 * std / math.sqrt(n)
    else:
        std = 0.0
        half = 0.0
    return Summary(mean=mean, std=std, low=mean - half, high=mean + half, n=n)


def ratio_to_bound(measured: float, bound: float) -> float:
    """``measured / bound`` with a guard for degenerate bounds.

    Args:
        measured: Empirical value.
        bound: Theoretical value (> 0 expected).

    Returns:
        The ratio, or ``inf`` when the bound is non-positive.
    """
    if bound <= 0:
        return math.inf
    return measured / bound
