"""The paper's theoretical bounds, as executable formulas.

Implemented results (all message counts are expectations):

* **Lemma 3** — per-site upper bound ``E[Y_i] <= 2s + 2s(H_{d_i} − H_s)``.
* **Lemma 4** — total upper bound ``E[Y] <= 2ks + 2ks(H_d − H_s)``
  ``≈ 2ks(1 + ln(d/s))``.
* **Observation 1** — the tighter per-site-aware bound
  ``E[Y] <= 2ks + 2s · Σ_i (H_{d_i} − H_s)``.
* **Lemma 9** — lower bound ``E[Y] >= (ks/2)(H_d − H_s + 1)``
  ``≈ (ks/2) ln(de/s)``, giving the factor-4 optimality claim.
* **Lemma 10** — sliding-window expected per-site space ``H_{M_i}``.
* **DRS comparison** (intro) — the known optimal message complexity of
  frequency-sensitive distributed sampling, for the DDS-vs-DRS contrast.

The theory-validation benches ratio these against measured counts.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .harmonic import harmonic, harmonic_diff

__all__ = [
    "upper_bound_per_site",
    "upper_bound_total",
    "upper_bound_observation1",
    "lower_bound_total",
    "optimality_gap",
    "sliding_window_space",
    "drs_message_bound",
]


def _check(k: int | None, s: int, d: int) -> None:
    if k is not None and k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    if d < 0:
        raise ValueError(f"d must be >= 0, got {d}")


def upper_bound_per_site(s: int, d_i: int) -> float:
    """Lemma 3: expected messages (sent + received) at one site.

    Args:
        s: Sample size.
        d_i: Distinct elements observed at the site.

    Returns:
        ``2s + 2s(H_{d_i} − H_s)`` — when ``d_i <= s`` every new distinct
        element may be reported, giving ``2·d_i``.
    """
    _check(None, s, d_i)
    if d_i <= s:
        return 2.0 * d_i
    return 2.0 * s + 2.0 * s * harmonic_diff(d_i, s)


def upper_bound_total(k: int, s: int, d: int) -> float:
    """Lemma 4: expected total messages, ``2ks + 2ks(H_d − H_s)``.

    Args:
        k: Number of sites.
        s: Sample size.
        d: Total distinct elements (each site bounded by d).
    """
    _check(k, s, d)
    return k * upper_bound_per_site(s, d)


def upper_bound_observation1(k: int, s: int, d_per_site: Sequence[int]) -> float:
    """Observation 1: the per-site-aware upper bound.

    Args:
        k: Number of sites (must equal ``len(d_per_site)``).
        s: Sample size.
        d_per_site: Distinct elements observed at each site.

    Returns:
        ``Σ_i [2s + 2s(H_{d_i} − H_s)]`` — much tighter than Lemma 4 when
        the stream is partitioned (d_i ≪ d) rather than flooded (d_i = d).
    """
    if len(d_per_site) != k:
        raise ValueError(
            f"expected {k} per-site counts, got {len(d_per_site)}"
        )
    return sum(upper_bound_per_site(s, d_i) for d_i in d_per_site)


def lower_bound_total(k: int, s: int, d: int) -> float:
    """Lemma 9: expected messages any algorithm must send on the
    adversarial input, ``(ks/2)(H_d − H_s + 1)``.

    Args:
        k: Number of sites.
        s: Sample size.
        d: Number of adversary rounds (distinct elements).
    """
    _check(k, s, d)
    if d <= s:
        # Rounds 1..d each force >= k/4 messages (Lemma 6 regime).
        return k * d / 4.0
    return 0.5 * k * s * (harmonic_diff(d, s) + 1.0)


def optimality_gap(k: int, s: int, d: int) -> float:
    """Upper bound / lower bound — the paper claims this is <= 4.

    Args:
        k: Number of sites.
        s: Sample size.
        d: Distinct elements.

    Returns:
        ``upper_bound_total / lower_bound_total`` (→ 4 as d/s → ∞).
    """
    lo = lower_bound_total(k, s, d)
    if lo == 0.0:
        return math.inf
    return upper_bound_total(k, s, d) / lo


def sliding_window_space(m_i: int) -> float:
    """Lemma 10: expected per-site candidate-set size, ``H_{M_i}``.

    Args:
        m_i: Number of live distinct elements at the site.
    """
    if m_i < 0:
        raise ValueError(f"m_i must be >= 0, got {m_i}")
    return harmonic(m_i)


def drs_message_bound(k: int, s: int, n: int) -> float:
    """Optimal message complexity of frequency-sensitive DRS (intro).

    From Cormode et al. (2012) / Tirthapura & Woodruff (2011):
    ``Θ(k · log(n/s) / log(k/s))`` if ``s < k/8``, else ``Θ(s log(n/s))``.
    Constants are unspecified in the paper; we return the Θ-expression
    with constant 1, suitable only for *ratio/shape* comparisons.

    Args:
        k: Number of sites.
        s: Sample size.
        n: Total number of occurrences.
    """
    _check(k, s, n)
    if n <= s:
        return float(n)
    if s < k / 8.0:
        denom = math.log(k / s)
        return k * math.log(n / s) / max(denom, 1e-9)
    return s * math.log(n / s)
