"""Core data structures: treap, dominance sets, bottom-k."""

from .bottomk import BottomK
from .dominance import (
    DominanceEntry,
    DominanceSet,
    SortedDominanceSet,
    TreapDominanceSet,
    brute_force_survivors,
)
from .treap import Treap, TreapNode

__all__ = [
    "BottomK",
    "Treap",
    "TreapNode",
    "DominanceEntry",
    "DominanceSet",
    "SortedDominanceSet",
    "TreapDominanceSet",
    "brute_force_survivors",
]
