"""Dominance-pruned candidate sets for sliding-window sampling.

A sliding-window site must answer, at any slot, "which live local element
has the smallest hash?" without storing the whole window.  The paper (after
Babcock, Datar & Motwani 2002) keeps only elements that could *ever* become
the minimum: tuple ``(e, t)`` **dominates** ``(e', t')`` iff ``t > t'`` and
``h(e) < h(e')`` — a dominated element can never be the minimum while the
dominating one is live, so it is dropped.  Lemma 10 shows the surviving set
has expected size ``H_M = O(log M)`` for ``M`` live distinct elements.

We generalize to sample size ``s`` (*s-dominance*): an entry is dropped iff
**at least s** entries with strictly later expiry have strictly smaller
hash; the survivors always contain the ``s`` smallest-hash live elements.

Two interchangeable implementations (differentially tested):

* :class:`SortedDominanceSet` — a list sorted by ``(expiry, hash)`` plus an
  element index; pruning is an O(n log s) right-to-left sweep.  Supports any
  ``s >= 1``.
* :class:`TreapDominanceSet` — the paper's treap (s = 1 only): key
  ``(expiry, hash)``, priority ``hash``; min-hash is the root, expiry is an
  O(log n) split, and dominance pruning exploits the *staircase invariant*
  (surviving hashes increase with expiry), removing only a contiguous run
  of predecessors.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional, Protocol

from .treap import Treap

__all__ = [
    "DominanceEntry",
    "DominanceSet",
    "SortedDominanceSet",
    "TreapDominanceSet",
    "brute_force_survivors",
]


class DominanceEntry:
    """A candidate tuple ``(element, expiry, hash)`` held by a site."""

    __slots__ = ("element", "expiry", "hash")

    def __init__(self, element: Any, expiry: int, hash_value: float) -> None:
        self.element = element
        self.expiry = expiry
        self.hash = hash_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DominanceEntry({self.element!r}, expiry={self.expiry}, "
            f"hash={self.hash:.6f})"
        )

    def as_tuple(self) -> tuple[Any, int, float]:
        """Return ``(element, expiry, hash)``."""
        return (self.element, self.expiry, self.hash)


class DominanceSet(Protocol):
    """Protocol implemented by both dominance-set variants."""

    def observe(self, element: Any, expiry: int, hash_value: float) -> None:
        """Insert ``element`` or refresh its expiry to ``expiry``, then prune."""
        ...

    def expire(self, now: int) -> None:
        """Drop every entry with ``expiry <= now``."""
        ...

    def min_entry(self) -> Optional[DominanceEntry]:
        """Entry with the smallest hash, or None if empty."""
        ...

    def bottom(self, count: int) -> list[DominanceEntry]:
        """The ``count`` smallest-hash entries, ascending by hash."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, element: Any) -> bool: ...

    def entries(self) -> list[DominanceEntry]:
        """All entries, ordered by ``(expiry, hash)``."""
        ...


def brute_force_survivors(
    entries: list[tuple[Any, int, float]], s: int = 1
) -> list[tuple[Any, int, float]]:
    """Reference s-dominance filter used by the tests.

    Args:
        entries: ``(element, expiry, hash)`` tuples (unique elements).
        s: Dominance order.

    Returns:
        Surviving tuples sorted by ``(expiry, hash)``: an entry survives iff
        strictly fewer than ``s`` other entries have strictly later expiry
        and strictly smaller hash.
    """
    survivors = []
    for elem, exp, h in entries:
        dominators = sum(
            1 for _, exp2, h2 in entries if exp2 > exp and h2 < h
        )
        if dominators < s:
            survivors.append((elem, exp, h))
    survivors.sort(key=lambda t: (t[1], t[2]))
    return survivors


class SortedDominanceSet:
    """s-dominance set backed by a sorted list.

    Args:
        s: Dominance order (sample size the survivors must be able to
            serve).  ``s = 1`` reproduces the paper's structure.

    Raises:
        ValueError: If ``s < 1``.
    """

    __slots__ = ("_s", "_entries", "_index")

    def __init__(self, s: int = 1) -> None:
        if s < 1:
            raise ValueError(f"dominance order s must be >= 1, got {s}")
        self._s = s
        self._entries: list[DominanceEntry] = []  # sorted by (expiry, hash)
        self._index: dict[Any, DominanceEntry] = {}

    @property
    def s(self) -> int:
        """Dominance order."""
        return self._s

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, element: Any) -> bool:
        return element in self._index

    def entries(self) -> list[DominanceEntry]:
        return list(self._entries)

    def observe(self, element: Any, expiry: int, hash_value: float) -> None:
        old = self._index.get(element)
        if old is not None:
            if expiry <= old.expiry:
                return  # refresh can only extend life
            self._entries.remove(old)
        entry = DominanceEntry(element, expiry, hash_value)
        self._index[element] = entry
        self._insert_sorted(entry)
        self._prune()

    def _insert_sorted(self, entry: DominanceEntry) -> None:
        # Most arrivals carry the largest expiry so far; test the tail first
        # to keep the common case O(1) before falling back to binary search.
        entries = self._entries
        key = (entry.expiry, entry.hash)
        if not entries or (entries[-1].expiry, entries[-1].hash) <= key:
            entries.append(entry)
            return
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if (entries[mid].expiry, entries[mid].hash) < key:
                lo = mid + 1
            else:
                hi = mid
        entries.insert(lo, entry)

    def _prune(self) -> None:
        """Right-to-left sweep dropping s-dominated entries.

        Maintains a max-heap of the ``s`` smallest hashes among entries with
        *strictly later* expiry; entries in the same expiry slot are judged
        as a group before joining the heap (equal expiry never dominates).
        """
        entries = self._entries
        if len(entries) <= self._s:
            return
        s = self._s
        worst: list[float] = []  # negated hashes: max-heap of s smallest
        kept_rev: list[DominanceEntry] = []
        removed = False
        i = len(entries) - 1
        while i >= 0:
            # Identify the group of equal expiry ending at i.
            j = i
            expiry = entries[i].expiry
            while j >= 0 and entries[j].expiry == expiry:
                j -= 1
            group = entries[j + 1 : i + 1]
            threshold = -worst[0] if len(worst) == s else None
            for entry in reversed(group):
                if threshold is not None and entry.hash > threshold:
                    del self._index[entry.element]
                    removed = True
                else:
                    kept_rev.append(entry)
            # Survivors of this group now count as "later" for earlier slots.
            for entry in group:
                if self._index.get(entry.element) is entry:
                    if len(worst) < s:
                        heapq.heappush(worst, -entry.hash)
                    elif entry.hash < -worst[0]:
                        heapq.heapreplace(worst, -entry.hash)
            i = j
        if removed:
            kept_rev.reverse()
            self._entries = kept_rev

    def expire(self, now: int) -> None:
        entries = self._entries
        cut = 0
        while cut < len(entries) and entries[cut].expiry <= now:
            del self._index[entries[cut].element]
            cut += 1
        if cut:
            del entries[:cut]

    def min_entry(self) -> Optional[DominanceEntry]:
        if not self._entries:
            return None
        return min(self._entries, key=lambda e: e.hash)

    def bottom(self, count: int) -> list[DominanceEntry]:
        return sorted(self._entries, key=lambda e: e.hash)[:count]

    def check_invariants(self) -> None:
        """Assert sortedness, index consistency, and s-dominance minimality."""
        assert len(self._entries) == len(self._index)
        for a, b in zip(self._entries, self._entries[1:]):
            assert (a.expiry, a.hash) <= (b.expiry, b.hash), "sort order broken"
        raw = [(e.element, e.expiry, e.hash) for e in self._entries]
        expected = brute_force_survivors(raw, self._s)
        assert raw == expected, "set contains a dominated entry"


class TreapDominanceSet:
    """Paper-faithful treap-backed dominance set (s = 1).

    Key: ``(expiry, hash)`` (hash breaks same-slot ties); priority: hash,
    min-heap — so :meth:`min_entry` is the root.  The staircase invariant
    (hash strictly increases across strictly increasing expiry) makes the
    dominated region after an insert a contiguous run of predecessor keys.
    """

    __slots__ = ("_treap", "_index")

    def __init__(self, s: int = 1) -> None:
        if s != 1:
            raise ValueError(
                "TreapDominanceSet implements the paper's s=1 structure; "
                "use SortedDominanceSet for s > 1"
            )
        self._treap = Treap()
        self._index: dict[Any, tuple[int, float]] = {}  # element -> key

    @property
    def s(self) -> int:
        """Dominance order (always 1 for this implementation)."""
        return 1

    def __len__(self) -> int:
        return len(self._treap)

    def __contains__(self, element: Any) -> bool:
        return element in self._index

    def entries(self) -> list[DominanceEntry]:
        return [
            DominanceEntry(node.value, node.key[0], node.key[1])
            for node in self._treap
        ]

    def observe(self, element: Any, expiry: int, hash_value: float) -> None:
        old_key = self._index.get(element)
        if old_key is not None:
            if expiry <= old_key[0]:
                return
            self._treap.remove(old_key)
        key = (expiry, hash_value)

        # Is the newcomer itself dominated?  The minimum hash among strictly
        # later expiries is the first entry of the next expiry band.
        succ = self._treap.successor((expiry, float("inf")))
        if succ is not None and succ.key[1] < hash_value:
            if old_key is not None:
                del self._index[element]
            return

        # Drop now-dominated predecessors: strictly earlier expiry, larger
        # hash.  By the staircase invariant they are a contiguous run.
        while True:
            pred = self._treap.predecessor((expiry, -1.0))
            if pred is None or pred.key[1] < hash_value:
                break
            del self._index[pred.value]
            self._treap.remove(pred.key)

        self._treap.insert(key, hash_value, element)
        self._index[element] = key

    def expire(self, now: int) -> None:
        for node in self._treap.split_leq((now, float("inf"))):
            del self._index[node.value]

    def min_entry(self) -> Optional[DominanceEntry]:
        node = self._treap.min_priority()
        if node is None:
            return None
        return DominanceEntry(node.value, node.key[0], node.key[1])

    def bottom(self, count: int) -> list[DominanceEntry]:
        out = sorted(self.entries(), key=lambda e: e.hash)
        return out[:count]

    def check_invariants(self) -> None:
        """Assert treap invariants plus dominance minimality."""
        self._treap.check_invariants()
        assert len(self._treap) == len(self._index)
        raw = [(e.element, e.expiry, e.hash) for e in self.entries()]
        expected = brute_force_survivors(raw, 1)
        assert sorted(raw, key=lambda t: (t[1], t[2])) == expected
