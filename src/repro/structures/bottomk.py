"""Bottom-k set: the ``k`` smallest-hash distinct elements seen so far.

This is the coordinator's sample ``P`` in Algorithm 2 and the whole state of
the centralized reference sampler: a capacity-bounded set of
``(hash, element)`` pairs keeping the smallest hashes, with O(log k)
updates.  Because the capacity is the sample size ``s`` (tens to a few
hundred), a sorted list with binary search is both simple and fast.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Optional

import numpy as np
import numpy.typing as npt

__all__ = ["BottomK"]


class BottomK:
    """Maintains the ``capacity`` smallest-hash distinct elements.

    Args:
        capacity: Maximum number of retained elements (the sample size).

    Raises:
        ValueError: If ``capacity < 1``.
    """

    __slots__ = ("capacity", "_pairs", "_hashes", "_columns_cache")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"BottomK capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pairs: list[tuple[float, Any]] = []  # sorted ascending by hash
        self._hashes: dict[Any, float] = {}
        # Lazily-built columnar view of _pairs; dropped on any mutation.
        # Accepted offers become rare once the threshold tightens, so in
        # read-heavy phases repeated merges reuse the same arrays.
        self._columns_cache: Optional[
            tuple[npt.NDArray[np.float64], list[Any]]
        ] = None

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, element: Any) -> bool:
        return element in self._hashes

    @property
    def is_full(self) -> bool:
        """True once ``capacity`` elements are retained."""
        return len(self._pairs) >= self.capacity

    def threshold(self) -> float:
        """The current acceptance threshold ``u``.

        Equals 1.0 while the set is not yet full, afterwards the largest
        retained hash (the ``s``-th smallest hash seen so far) — exactly the
        coordinator's ``u`` in Algorithm 2.
        """
        if not self.is_full:
            return 1.0
        return self._pairs[-1][0]

    def offer(self, hash_value: float, element: Any) -> tuple[bool, Optional[Any]]:
        """Offer an element for inclusion.

        Args:
            hash_value: ``h(element)`` in ``[0, 1)``.
            element: The element itself.

        Returns:
            ``(accepted, evicted)``: ``accepted`` is True iff the set
            changed; ``evicted`` is the element pushed out (or None).
            Re-offering a retained element is a no-op (duplicates in the
            stream never change a distinct sample).
        """
        if element in self._hashes:
            return False, None
        if self.is_full and hash_value >= self._pairs[-1][0]:
            return False, None
        insort(self._pairs, (hash_value, element))
        self._hashes[element] = hash_value
        self._columns_cache = None
        evicted = None
        if len(self._pairs) > self.capacity:
            _, evicted = self._pairs.pop()
            del self._hashes[evicted]
        return True, evicted

    def discard(self, element: Any) -> bool:
        """Remove ``element`` if present; returns whether it was present."""
        h = self._hashes.pop(element, None)
        if h is None:
            return False
        idx = bisect_left(self._pairs, (h, element))
        # Hash collisions are possible in principle; scan the equal-hash run.
        while idx < len(self._pairs) and self._pairs[idx][0] == h:
            if self._pairs[idx][1] == element:
                del self._pairs[idx]
                self._columns_cache = None
                return True
            idx += 1
        raise AssertionError("BottomK index out of sync")  # pragma: no cover

    def elements(self) -> list[Any]:
        """Retained elements, ascending by hash."""
        return [element for _, element in self._pairs]

    def pairs(self) -> list[tuple[float, Any]]:
        """Retained ``(hash, element)`` pairs, ascending by hash."""
        return list(self._pairs)

    def columns(self) -> tuple[npt.NDArray[np.float64], list[Any]]:
        """Retained pairs as ``(hash column, element list)``, ascending.

        One C-level transpose of the sorted backing list, cached until
        the next mutation — the query-time merge consumes this instead
        of :meth:`pairs` so no per-pair tuple is materialized on the hot
        path and quiescent re-merges skip the transpose entirely.
        Callers must not mutate the returned arrays.
        """
        if self._columns_cache is None:
            if not self._pairs:
                self._columns_cache = (np.empty(0, dtype=np.float64), [])
            else:
                hashes, elements = zip(*self._pairs)
                self._columns_cache = (
                    np.asarray(hashes, dtype=np.float64),
                    list(elements),
                )
        return self._columns_cache

    def min_pair(self) -> Optional[tuple[float, Any]]:
        """The smallest ``(hash, element)`` pair, or None if empty."""
        return self._pairs[0] if self._pairs else None

    def clear(self) -> None:
        """Drop all retained elements."""
        self._pairs.clear()
        self._hashes.clear()
        self._columns_cache = None

    def check_invariants(self) -> None:
        """Assert sortedness, capacity, and index consistency (for tests)."""
        assert len(self._pairs) <= self.capacity
        assert len(self._pairs) == len(self._hashes)
        for a, b in zip(self._pairs, self._pairs[1:]):
            assert a <= b, "bottom-k order broken"
        for h, e in self._pairs:
            assert self._hashes[e] == h
