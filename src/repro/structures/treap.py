"""A treap (randomized binary search tree) — Seidel & Aragon (1996).

The paper stores each site's sliding-window candidate set ``T_i`` in "an
efficient data structure ... a treap".  Keys order the tree (we key by
``(expiry_time, hash)``), priorities obey a *min*-heap: the node with the
smallest priority sits at the root.  Using an element's hash value as its
priority makes "element with the smallest hash" an O(1) root lookup, while
expiry-ordered range deletions ("drop everything expired") are O(log n)
splits — exactly the two operations the sliding-window site needs.

The implementation is a classic split/merge treap:

* :meth:`Treap.insert` / :meth:`Treap.remove` — expected O(log n)
* :meth:`Treap.min_priority` — O(1) (the root)
* :meth:`Treap.split_leq` — detach all keys ``<= bound`` in O(log n)
* in-order iteration, length, membership

Split and merge are recursive; the expected recursion depth is O(log n) and
node counts in this package's workloads are small (expected O(log window)
per Lemma 10), so clarity wins over micro-optimization here.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, Optional

__all__ = ["Treap", "TreapNode"]


class TreapNode:
    """A single treap node. Internal; exposed for tests and debugging."""

    __slots__ = ("key", "priority", "value", "left", "right")

    def __init__(self, key: Any, priority: float, value: Any) -> None:
        self.key = key
        self.priority = priority
        self.value = value
        self.left: Optional[TreapNode] = None
        self.right: Optional[TreapNode] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TreapNode(key={self.key!r}, priority={self.priority!r})"


def _merge(a: Optional[TreapNode], b: Optional[TreapNode]) -> Optional[TreapNode]:
    """Merge treaps ``a`` and ``b`` where every key in a < every key in b."""
    # Iterative merge: walk down, stitching the smaller-priority root on top.
    if a is None:
        return b
    if b is None:
        return a
    if a.priority <= b.priority:
        root = a
        root.right = _merge(a.right, b)
    else:
        root = b
        root.left = _merge(a, b.left)
    return root


def _split(
    node: Optional[TreapNode], key: Any
) -> tuple[Optional[TreapNode], Optional[TreapNode]]:
    """Split into (keys <= key, keys > key)."""
    if node is None:
        return None, None
    if node.key <= key:
        left, right = _split(node.right, key)
        node.right = left
        return node, right
    left, right = _split(node.left, key)
    node.left = right
    return left, node


class Treap:
    """Ordered map with heap-ordered priorities (min-heap).

    Keys must be mutually comparable; priorities are floats.  Duplicate keys
    are rejected — callers that need multiset behaviour should disambiguate
    the key (the dominance sets use ``(expiry, hash)`` pairs, unique almost
    surely).
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: Optional[TreapNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    # -- queries ---------------------------------------------------------

    def min_priority(self) -> Optional[TreapNode]:
        """Return the node with the smallest priority (the root), or None."""
        return self._root

    def find(self, key: Any) -> Optional[TreapNode]:
        """Return the node with ``key``, or None."""
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def __contains__(self, key: Any) -> bool:
        return self.find(key) is not None

    def min_key(self) -> Optional[TreapNode]:
        """Return the node with the smallest key, or None."""
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node

    def max_key(self) -> Optional[TreapNode]:
        """Return the node with the largest key, or None."""
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node

    def predecessor(self, key: Any) -> Optional[TreapNode]:
        """Return the node with the largest key strictly less than ``key``."""
        node = self._root
        best: Optional[TreapNode] = None
        while node is not None:
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return best

    def successor(self, key: Any) -> Optional[TreapNode]:
        """Return the node with the smallest key strictly greater than ``key``."""
        node = self._root
        best: Optional[TreapNode] = None
        while node is not None:
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return best

    def __iter__(self) -> Iterator[TreapNode]:
        """Yield nodes in key order (iterative in-order traversal)."""
        stack: list[TreapNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in key order."""
        for node in self:
            yield node.key, node.value

    # -- mutation ----------------------------------------------------------

    def insert(self, key: Any, priority: float, value: Any = None) -> TreapNode:
        """Insert a new ``key`` with ``priority``; returns the new node.

        Raises:
            KeyError: If ``key`` is already present.
        """
        if self.find(key) is not None:
            raise KeyError(f"duplicate treap key: {key!r}")
        node = TreapNode(key, priority, value)
        left, right = _split(self._root, key)
        self._root = _merge(_merge(left, node), right)
        self._size += 1
        return node

    def remove(self, key: Any) -> Any:
        """Remove ``key``; returns its value.

        Raises:
            KeyError: If ``key`` is absent.
        """
        parent: Optional[TreapNode] = None
        node = self._root
        went_left = False
        while node is not None and node.key != key:
            parent = node
            went_left = key < node.key
            node = node.left if went_left else node.right
        if node is None:
            raise KeyError(f"treap key not found: {key!r}")
        merged = _merge(node.left, node.right)
        if parent is None:
            self._root = merged
        elif went_left:
            parent.left = merged
        else:
            parent.right = merged
        self._size -= 1
        return node.value

    def split_leq(self, key: Any) -> list[TreapNode]:
        """Detach and return (in key order) all nodes with key <= ``key``.

        Used for bulk expiry: keys are ``(expiry, hash)`` so
        ``split_leq((now, inf))`` removes everything expiring at or before
        ``now`` in O(log n) plus output size.
        """
        left, right = _split(self._root, key)
        self._root = right
        removed: list[TreapNode] = []
        stack: list[TreapNode] = []
        node = left
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            removed.append(node)
            node = node.right
        self._size -= len(removed)
        return removed

    def clear(self) -> None:
        """Remove all nodes."""
        self._root = None
        self._size = 0

    # -- invariant checking (for tests) ------------------------------------

    def check_invariants(self) -> None:
        """Assert BST-order on keys and min-heap order on priorities.

        Raises:
            AssertionError: If either invariant is violated.
        """
        count = 0
        prev_key = None
        for node in self:
            count += 1
            if prev_key is not None:
                assert prev_key < node.key, "BST key order violated"
            prev_key = node.key
            if node.left is not None:
                assert node.left.priority >= node.priority, "heap order violated"
            if node.right is not None:
                assert node.right.priority >= node.priority, "heap order violated"
        assert count == self._size, "size bookkeeping out of sync"
