"""The unified sampler protocol: one lifecycle for every sampler variant.

Historically each sampler family grew its own surface —
``DistinctSamplerSystem.observe(site, e)`` + ``sample() -> list``,
``SlidingWindowSystem.process_slot(slot, arrivals)`` + ``query() -> e``,
divergent cost accessors — which forced every consumer (CLI, experiment
drivers, benchmarks, persistence) to special-case sampler classes.  This
module defines the single API all of them now share:

* :class:`Sampler` — the abstract base every system facade inherits.
  Lifecycle: :meth:`~Sampler.observe` / :meth:`~Sampler.observe_batch`
  ingest events, :meth:`~Sampler.advance` moves slotted time forward
  (a no-op for infinite-window samplers), :meth:`~Sampler.sample`
  returns a :class:`SampleResult`, and :meth:`~Sampler.stats` returns a
  :class:`SamplerStats`.  Persistence goes through
  :meth:`~Sampler.state_dict` / :meth:`~Sampler.load_state` plus the
  :attr:`~Sampler.config` property, which together let
  :mod:`repro.core.snapshot` checkpoint and restore *any* registered
  variant without knowing its class.
* :class:`SampleResult` — a frozen value object carrying the sample
  items, their ``(hash, item)`` pairs, the acceptance threshold, and
  window metadata.  It behaves as a read-only sequence of items so that
  existing comparisons against plain lists keep working.
* :class:`SamplerStats` — uniform cost accounting: messages by
  direction, bytes, per-site memory, and slots processed.
* :class:`SamplerConfig` — the declarative construction recipe consumed
  by :func:`repro.core.api.make_sampler`.

Old per-class entry points (``process_slot``, ``query``, the ad-hoc
factories) remain available for one release as thin shims that emit
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Union,
)

import numpy as np
import numpy.typing as npt

from ..errors import ConfigurationError, ProtocolError
from ..netsim.message import MessageKind
from ..netsim.network import MessageStats, Network
from .events import EventBatch

if TYPE_CHECKING:  # runtime.topology imports this module back at call time
    from ..runtime.topology import Topology

__all__ = [
    "SampleResult",
    "SamplerStats",
    "SamplerConfig",
    "Sampler",
    "EXECUTORS",
    "deprecated_call",
    "iter_event_runs",
]

_INF = float("inf")

#: Execution backend names accepted by ``SamplerConfig.executor`` (see
#: :mod:`repro.runtime.executor` for the implementations).
EXECUTORS = ("serial", "thread", "process", "shm")


def deprecated_call(old: str, new: str) -> None:
    """Emit the standard deprecation warning for a legacy entry point."""
    warnings.warn(
        f"{old} is deprecated and will be removed in a future release; "
        f"use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# Value objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class SampleResult:
    """The current sample, uniformly shaped across every variant.

    Attributes:
        items: Sample members, ascending by hash.  Without-replacement
            samples hold ``min(s, d)`` distinct items; with-replacement
            samples hold exactly ``s`` slots whose entries may be None
            while a copy has not yet seen an element.
        pairs: ``(hash, item)`` pairs for the members whose hash is
            known, ascending by hash (with-replacement: one pair per
            non-empty copy).
        threshold: The acceptance threshold ``u`` that a new element's
            hash must undercut to be reported (None when the variant has
            no single global threshold, e.g. with-replacement).
        sample_size: The configured sample size ``s``.
        window: Window size in slots, or None for infinite-window.
        slot: The slot the sample is current for (None before any
            slotted time exists / for infinite-window samplers).
        with_replacement: Whether items are independent draws.

    The object is also a read-only sequence over ``items`` and compares
    equal to plain lists/tuples of the same items, so pre-protocol call
    sites (``system.sample() == [...]``) keep working.
    """

    items: tuple[Any, ...]
    pairs: tuple[tuple[float, Any], ...] = ()
    threshold: Optional[float] = None
    sample_size: int = 1
    window: Optional[int] = None
    slot: Optional[int] = None
    with_replacement: bool = False

    # -- sequence behaviour over ``items`` --------------------------------

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def __contains__(self, item: Any) -> bool:
        return item in self.items

    def __getitem__(self, index: Any) -> Any:
        return self.items[index]

    def __bool__(self) -> bool:
        return bool(self.items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SampleResult):
            return self.items == other.items and self.pairs == other.pairs
        if isinstance(other, (list, tuple)):
            return list(self.items) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.items)

    @property
    def first(self) -> Optional[Any]:
        """The minimum-hash member, or None if the sample is empty."""
        return self.items[0] if self.items else None


@dataclass(frozen=True)
class SamplerStats:
    """Uniform cost accounting across every sampler variant.

    Attributes:
        messages_total: All messages exchanged so far (the paper's cost
            metric).
        messages_to_coordinator: Site → coordinator messages.
        messages_to_sites: Coordinator → site messages.
        bytes_total: Sum of message sizes.
        per_site_memory: Current memory footprint per site, in stored
            entries (candidate-set sizes for sliding variants; 1 scalar
            threshold for infinite-window sites; summed across copies
            for with-replacement samplers).
        slots_processed: Distinct time slots advanced through (0 for a
            sampler that was never driven with slots).
    """

    messages_total: int
    messages_to_coordinator: int
    messages_to_sites: int
    bytes_total: int
    per_site_memory: tuple[int, ...]
    slots_processed: int

    @property
    def num_sites(self) -> int:
        """Number of sites k."""
        return len(self.per_site_memory)

    @property
    def memory_total(self) -> int:
        """Total entries held across all sites."""
        return sum(self.per_site_memory)


@dataclass(frozen=True)
class SamplerConfig:
    """Declarative recipe for :func:`repro.core.api.make_sampler`.

    Attributes:
        variant: Registry key (see ``repro.core.api.sampler_variants()``):
            ``"infinite"``, ``"sliding"``, ``"sliding-feedback"``,
            ``"sliding-local-push"``, ``"with-replacement"``,
            ``"broadcast"``, or ``"caching"``.
        num_sites: Number of distributed sites k (>= 1).
        sample_size: Sample size s (>= 1).
        window: Window size w in slots; 0 means infinite window.
            Sliding variants require ``window >= 1``.
        seed: Hash seed (fix it for reproducible runs).
        algorithm: Hash algorithm name (see ``repro.hashing``).
        structure: Candidate-set backing store for the s = 1 sliding
            system (``"treap"``/``"sorted"``).
        coordinator_mode: ``"exact"``/``"paper"`` for the s = 1 sliding
            system (see :mod:`repro.core.sliding`).
        cache_size: Per-site LRU capacity for the ``"caching"`` variant
            (None selects the variant default, ``sample_size``).
        shards: Number of independent coordinator groups S (>= 1).  Only
            ``sharded:*`` variants accept ``shards > 1`` (see
            :mod:`repro.runtime.sharded`).
        executor: Execution backend for the sharded batch-ingest path
            (see :data:`EXECUTORS` and :mod:`repro.runtime.executor`):
            ``"serial"`` (in-process, the default), ``"thread"`` (a
            thread pool over the NumPy kernels), ``"process"`` (a
            multiprocessing pool, per-batch pickling), or ``"shm"``
            (persistent workers over zero-copy shared-memory columns).
            Non-serial backends apply to ``sharded:*`` variants only.
        workers: Worker count W for the non-serial executors (0 = auto);
            ignored by the serial executor.
    """

    variant: str = "infinite"
    num_sites: int = 1
    sample_size: int = 1
    window: int = 0
    seed: int = 0
    algorithm: str = "murmur2"
    structure: str = "treap"
    coordinator_mode: str = "exact"
    cache_size: Optional[int] = None
    shards: int = 1
    executor: str = "serial"
    workers: int = 0

    def validate(self) -> "SamplerConfig":
        """Check variant-independent invariants; returns self.

        Raises:
            ConfigurationError: On any out-of-range field.
        """
        if self.num_sites < 1:
            raise ConfigurationError(
                f"num_sites must be >= 1, got {self.num_sites}"
            )
        if self.sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {self.sample_size}"
            )
        if self.window < 0:
            raise ConfigurationError(f"window must be >= 0, got {self.window}")
        if self.cache_size is not None and self.cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable), used by snapshots."""
        return asdict(self)


# ---------------------------------------------------------------------------
# State-dict encoding helpers (JSON-safe, no pickle)
# ---------------------------------------------------------------------------


def encode_expiry(value: float) -> Optional[float]:
    """Encode an expiry stamp; ``inf`` becomes None for strict JSON."""
    return None if value == _INF else value


def decode_expiry(value: Optional[float]) -> float:
    """Inverse of :func:`encode_expiry`."""
    return _INF if value is None else value


def revive_element(element: Any) -> Any:
    """Undo JSON's tuple→list coercion for tuple-valued elements."""
    if isinstance(element, list):
        return tuple(revive_element(item) for item in element)
    return element


def stats_state(network: Network) -> dict[str, Any]:
    """Capture a network's message counters as a JSON-safe dict."""
    stats = network.stats
    return {
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
        "site_to_coordinator": stats.site_to_coordinator,
        "coordinator_to_site": stats.coordinator_to_site,
        "by_kind": {kind.name: count for kind, count in stats.by_kind.items()},
    }


def load_stats_state(network: Network, state: dict[str, Any]) -> None:
    """Restore counters captured by :func:`stats_state` into ``network``."""
    stats = network.stats
    stats.total_messages = int(state["total_messages"])
    stats.total_bytes = int(state["total_bytes"])
    stats.site_to_coordinator = int(state["site_to_coordinator"])
    stats.coordinator_to_site = int(state["coordinator_to_site"])
    stats.by_kind.clear()
    for name, count in state.get("by_kind", {}).items():
        stats.by_kind[MessageKind[name]] = int(count)


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------

#: An ingestion event: ``(site_id, item)`` delivered at the current slot,
#: or ``(site_id, item, slot)`` advancing time first.
Event = Union[tuple[Any, ...], Sequence[Any]]


def iter_event_runs(
    events: Iterable[Event],
) -> Iterator[tuple[Optional[int], list[tuple[Any, Any]]]]:
    """Group an event sequence into ``(slot, [(site, item), ...])`` runs.

    A run collects consecutive events delivered at the same protocol time:
    slot-stamped events open a new run whenever their slot differs from the
    run's slot; unstamped 2-tuples always join the current run.  Replaying
    ``advance(slot)`` (when ``slot`` is not None) followed by the run's
    deliveries reproduces, event for event, what the generic
    :meth:`Sampler.observe_batch` loop does — including *where* a
    non-monotone slot stamp raises, since earlier runs have already been
    delivered by then.  The vectorized ``observe_batch`` overrides use this
    to get whole same-slot batches they can bulk-hash and pre-filter.

    Yields:
        ``(slot, batch)`` pairs where ``slot`` is None for a run delivered
        at the current slot without advancing, and ``batch`` is a list of
        ``(site_id, item)`` pairs in arrival order.
    """
    pending_slot: Optional[int] = None
    run: list[tuple[Any, Any]] = []
    for event in events:
        # Mirror the generic loop's branch exactly: anything that is not
        # a 2-tuple is treated as slot-stamped via event[2].
        if len(event) != 2 and event[2] != pending_slot:
            if run or pending_slot is not None:
                yield pending_slot, run
                run = []
            pending_slot = event[2]
        run.append((event[0], event[1]))
    if run or pending_slot is not None:
        yield pending_slot, run


class Sampler(ABC):
    """Abstract base class for every distributed sampler facade.

    Single-group facades build a :class:`~repro.runtime.topology.Topology`
    and call :meth:`_init_runtime` at the end of their ``__init__``;
    composite facades (with-replacement copies, sharded groups) own no
    topology of their own and call :meth:`_init_protocol` directly,
    overriding :meth:`message_stats`.  Subclasses implement the small
    hook surface (:meth:`_deliver`, :meth:`_advance_to`, :meth:`sample`,
    :meth:`config`, :meth:`_state`, :meth:`_load`); the base class
    provides the uniform lifecycle, accounting, and the deprecated
    compatibility shims on top.
    """

    # -- construction ------------------------------------------------------

    def _init_protocol(self) -> None:
        """Initialize the lifecycle bookkeeping (call last in __init__)."""
        self._last_slot: Optional[int] = None
        self._slots_processed = 0

    def _init_runtime(self, topology: "Topology") -> None:
        """Adopt a wired :class:`~repro.runtime.topology.Topology`.

        The topology becomes the canonical owner of the transport and the
        node roster; :attr:`network`, :attr:`coordinator`, and
        :attr:`sites` read through it.
        """
        self.topology = topology
        self._init_protocol()

    # -- runtime delegation ------------------------------------------------

    @property
    def network(self) -> Network:
        """The topology's transport (canonical; settable for rewiring)."""
        return self.topology.network

    @network.setter
    def network(self, network: Network) -> None:
        # DelayedNetwork.rewire swaps the transport under a live system;
        # routing the assignment through the topology keeps it canonical.
        self.topology.adopt_network(network)

    @property
    def coordinator(self) -> Any:
        """The topology's coordinator node."""
        return self.topology.coordinator

    @property
    def sites(self) -> list[Any]:
        """The topology's site roster, indexed by site id."""
        return self.topology.sites

    # -- lifecycle ---------------------------------------------------------

    def observe(self, site_id: int, item: Any, *, slot: Optional[int] = None) -> None:
        """Deliver ``item`` to site ``site_id``.

        Args:
            site_id: Destination site (0-based).
            item: The stream element.
            slot: Optional slot stamp; when given, time is advanced to
                ``slot`` (as by :meth:`advance`) before delivery.
        """
        if slot is not None:
            self.advance(slot)
        self._deliver(site_id, item)

    def observe_batch(self, events: Iterable[Event]) -> int:
        """Deliver a batch of events; returns the number delivered.

        Each event is ``(site_id, item)`` — delivered at the current
        slot — or ``(site_id, item, slot)``.  An
        :class:`~repro.core.events.EventBatch` is dispatched to
        :meth:`observe_columns` instead.  Subclasses may override with a
        vectorized fast path; semantics must match this loop (the
        equivalence is covered by the conformance tests).
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        count = 0
        for event in events:
            if len(event) == 2:
                self._deliver(event[0], event[1])
            else:
                self.advance(event[2])
                self._deliver(event[0], event[1])
            count += 1
        return count

    def observe_columns(self, batch: EventBatch) -> int:
        """Deliver a columnar batch; returns the number delivered.

        The base implementation replays the batch as tuple events, so
        every variant accepts :class:`~repro.core.events.EventBatch`
        input and equivalence with the tuple path holds by construction.
        Cores with a true columnar fast path (precomputed hash columns,
        no tuple materialization) override this.
        """
        # The one sanctioned tuple fallback: correctness-by-construction
        # for variants that have no columnar override yet.
        return self.observe_batch(batch.to_events())  # repro-lint: disable=RPR001

    def advance(self, slot: int) -> None:
        """Advance slotted time to ``slot`` and run boundary maintenance.

        Idempotent per slot; slots must be non-decreasing.  For
        infinite-window samplers this only tracks the slot counter.

        Raises:
            ProtocolError: If ``slot`` is before the current slot (time
                never rewinds in the synchronized-clock model).
        """
        slot = int(slot)
        if self._last_slot is not None:
            if slot < self._last_slot:
                raise ProtocolError(
                    f"slots must be non-decreasing: now at {self._last_slot}, "
                    f"got {slot}"
                )
            if slot == self._last_slot:
                return
        self._advance_to(slot)
        self._last_slot = slot
        self._slots_processed += 1

    @abstractmethod
    def sample(self) -> SampleResult:
        """The current sample as a :class:`SampleResult`."""

    def sample_columns(self) -> tuple[npt.NDArray[np.float64], list[Any]]:
        """The current sample as parallel columns, ascending by hash.

        Returns ``(hashes, items)`` where ``hashes`` is a float64 array
        and ``items`` the matching elements, both in the same ascending
        hash order :meth:`sample` reports.  This is the merge-side fast
        path for composite facades (:class:`~repro.runtime.sharded
        .ShardedSampler` concatenates the groups' columns and selects
        the global bottom-``s`` with array kernels instead of sorting
        tuples).  The default builds the columns from :meth:`sample`;
        cores whose sample store already holds a sorted backing list
        override it to slice that list directly.
        """
        pairs = self.sample().pairs
        if not pairs:
            return np.empty(0, dtype=np.float64), []
        hashes, items = zip(*pairs)
        return np.asarray(hashes, dtype=np.float64), list(items)

    def message_stats(self) -> MessageStats:
        """THE message-cost counters (canonical, via the runtime topology).

        Composite facades override this with an aggregate over their
        groups' topologies; every other cost accessor
        (:meth:`stats`, :attr:`total_messages`) derives from it.
        """
        return self.topology.message_stats()

    def stats(self) -> SamplerStats:
        """Uniform cost counters as a :class:`SamplerStats`."""
        stats = self.message_stats()
        return SamplerStats(
            messages_total=stats.total_messages,
            messages_to_coordinator=stats.site_to_coordinator,
            messages_to_sites=stats.coordinator_to_site,
            bytes_total=stats.total_bytes,
            per_site_memory=tuple(self._per_site_memory()),
            slots_processed=self._slots_processed,
        )

    # -- hooks -------------------------------------------------------------

    @abstractmethod
    def _deliver(self, site_id: int, item: Any) -> None:
        """Deliver one item to a site at the current slot."""

    def _advance_to(self, slot: int) -> None:
        """Move protocol time to ``slot`` (infinite window: nothing to do)."""

    def _per_site_memory(self) -> list[int]:
        """Per-site entry counts; sliding sites expose ``memory_size``."""
        return [getattr(site, "memory_size", 1) for site in self.sites]

    # -- introspection -----------------------------------------------------

    @property
    @abstractmethod
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` that reconstructs this sampler."""

    @property
    def current_slot(self) -> Optional[int]:
        """The last slot advanced to (None if never slotted)."""
        return self._last_slot

    @property
    def num_sites(self) -> int:
        """Number of sites k."""
        return len(self.sites)

    @property
    def total_messages(self) -> int:
        """Total messages exchanged so far (the paper's cost metric)."""
        return self.message_stats().total_messages

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Full logical state as a JSON-serializable dict (no pickle)."""
        return {
            "protocol": {
                "last_slot": self._last_slot,
                "slots_processed": self._slots_processed,
            },
            "network": stats_state(self.network),
            "system": self._state(),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`.

        Raises:
            ConfigurationError: If the state dict is malformed.
        """
        try:
            protocol = state["protocol"]
            network = state["network"]
            system = state["system"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed sampler state: {exc}") from exc
        last_slot = protocol.get("last_slot")
        self._last_slot = None if last_slot is None else int(last_slot)
        self._slots_processed = int(protocol.get("slots_processed", 0))
        load_stats_state(self.network, network)
        self._load(system)

    @abstractmethod
    def _state(self) -> dict[str, Any]:
        """Variant-specific state (JSON-serializable)."""

    @abstractmethod
    def _load(self, state: dict[str, Any]) -> None:
        """Restore variant-specific state captured by :meth:`_state`."""

    # -- deprecated shims (one release) ------------------------------------

    def process_slot(self, slot: int, arrivals: list[tuple[int, Any]]) -> None:
        """Deprecated: use ``advance(slot)`` + ``observe_batch(arrivals)``."""
        deprecated_call(
            f"{type(self).__name__}.process_slot()",
            "advance(slot) + observe_batch(arrivals)",
        )
        self.advance(slot)
        for site_id, item in arrivals:
            self._deliver(site_id, item)

    def query(self) -> Any:
        """Deprecated: use ``sample()`` (returns a :class:`SampleResult`)."""
        deprecated_call(f"{type(self).__name__}.query()", "sample()")
        return self._legacy_sample_shape()

    def sample_legacy(self) -> Any:
        """Deprecated: the pre-protocol shape of ``sample()``."""
        deprecated_call(f"{type(self).__name__}.sample_legacy()", "sample()")
        return self._legacy_sample_shape()

    def _legacy_sample_shape(self) -> Any:
        """The old per-class return shape (list of items by default)."""
        return list(self.sample().items)
