"""Sliding-window distributed distinct sampling (paper Algorithms 3 & 4).

Maintains, over a time-based window of ``w`` slots, the live distinct
element with the *smallest hash* (the paper presents sample size ``s = 1``;
see :mod:`repro.core.sliding_general` for the ``s >= 1`` generalization and
:mod:`repro.core.with_replacement` for with-replacement samples of any
size).

Protocol sketch (paper Section 4.1):

* Each **site** keeps a dominance-pruned candidate set ``T_i`` (everything
  that could still become the window minimum — expected size
  ``O(log |D_i|)`` by Lemma 10) plus its view ``(e_i, u_i, t_i)`` of the
  global sample: element, hash, and the slot at which it *expires*.
* On an arrival ``e`` at slot ``t``: refresh/insert ``(e, t + w)`` in
  ``T_i``; report to the coordinator iff ``h(e) < u_i``.
* The **coordinator** keeps one ``(e*, u*, t*)``.  A report replaces it iff
  the reported hash is smaller **or** the current sample has expired; the
  reply always carries the (possibly new) global sample *and its expiry* —
  the lazy-feedback trick that lets every synced site wake up exactly when
  the global sample dies, instead of requiring a broadcast.
* At each slot boundary a site whose view has expired (``t_i <= now``)
  falls back to its local candidate set: it selects the min-hash entry of
  ``T_i``, pushes it, and adopts the coordinator's reply.

Expiry convention: an element observed at slot ``t`` is live for queries at
slots ``t .. t+w-1`` and carries expiry stamp ``t + w``; "live at ``now``"
means ``expiry > now``.  (The thesis' pseudocode is off by one against its
own window definition ``S_i^w(t) = arrivals in (t-w, t]``; we follow the
definition.)

**Coordinator modes — a reproduction finding.**  Algorithm 4 as printed
keeps a *single* tuple ``(e*, t*)``.  That loses information: if the
coordinator abandons sample ``a`` for a smaller-hash report ``b`` whose
expiry is *earlier* (``b`` arrived before ``a`` did — e.g. a fallback push
of an older element), then when ``b`` dies only sites synced to ``b`` wake
up; ``a`` survives solely at its observing site, which sleeps until ``a``'s
own expiry — so for a period the coordinator serves a live but
*non-minimal* element, i.e. not the defined distinct sample.  (The thesis
proves space and message bounds for this algorithm but never a sliding-
window correctness lemma; the gap is real and our differential tests
trigger it within a few hundred slots.)  The repair is the paper's own
device one level up: the coordinator keeps a *dominance set* of reported
entries (expected size ``O(log d_w)``) instead of one tuple.  Both variants
are provided:

* ``coordinator_mode="exact"`` (default) — dominance-set coordinator;
  after each slot's processing the sample provably equals the minimum-hash
  live distinct element (the tests check this against a brute-force
  oracle at every slot).
* ``coordinator_mode="paper"`` — the literal Algorithm 4 single tuple;
  the sample is always a *live* window element and re-synchronizes at
  fallback storms, but can transiently be non-minimal.

Message costs of the two modes are nearly identical (see the
``ablation_sync`` experiment); the figures use ``exact``.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher, unit_hash_batch
from ..netsim.clock import SlotClock
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology
from ..structures.dominance import SortedDominanceSet, TreapDominanceSet
from .events import EventBatch
from .protocol import (
    Sampler,
    SampleResult,
    SamplerConfig,
    decode_expiry,
    encode_expiry,
    iter_event_runs,
    revive_element,
)

# SortedDominanceSet doubles as the exact coordinator's candidate store.

__all__ = [
    "SlidingWindowSite",
    "SlidingWindowCoordinator",
    "SlidingWindowSystem",
]

_INF = math.inf


def _make_structure(kind: str):
    if kind == "treap":
        return TreapDominanceSet(1)
    if kind == "sorted":
        return SortedDominanceSet(1)
    raise ConfigurationError(
        f"unknown dominance structure {kind!r}; expected 'treap' or 'sorted'"
    )


class SlidingWindowSite:
    """Algorithm 3: the per-site sliding-window protocol.

    Args:
        site_id: Network address.
        hasher: Shared hash function.
        window: Window size w in slots (>= 1).
        structure: ``"treap"`` (paper-faithful) or ``"sorted"`` backing
            store for the candidate set ``T_i``.
    """

    __slots__ = (
        "site_id",
        "hasher",
        "window",
        "candidates",
        "sample_element",
        "u_local",
        "sample_expiry",
        "reports_sent",
        "fallbacks",
    )

    def __init__(
        self,
        site_id: int,
        hasher: UnitHasher,
        window: int,
        structure: str = "treap",
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.site_id = site_id
        self.hasher = hasher
        self.window = window
        self.candidates = _make_structure(structure)
        self.sample_element: Optional[Any] = None
        self.u_local = 1.0
        self.sample_expiry: float = _INF
        self.reports_sent = 0
        self.fallbacks = 0

    @property
    def memory_size(self) -> int:
        """Current candidate-set size |T_i| (the paper's memory metric)."""
        return len(self.candidates)

    def tick(self, now: int, network: Network) -> None:
        """Slot-boundary maintenance (Algorithm 3 lines 21-25).

        If the site's view of the global sample has expired, fall back to
        the local candidate set: select the min-hash live entry, adopt it
        provisionally, and push it to the coordinator (whose reply, handled
        synchronously, re-syncs ``(e_i, u_i, t_i)`` to the global sample).
        """
        if self.sample_expiry > now:
            return
        self.fallbacks += 1
        self.candidates.expire(now)
        entry = self.candidates.min_entry()
        if entry is None:
            # Nothing live locally; accept the next arrival unconditionally.
            self.sample_element = None
            self.u_local = 1.0
            self.sample_expiry = _INF
            return
        self.sample_element = entry.element
        self.u_local = entry.hash
        self.sample_expiry = entry.expiry
        self.reports_sent += 1
        network.send(
            self.site_id,
            COORDINATOR,
            MessageKind.SW_REPORT,
            (entry.element, entry.hash, entry.expiry, self.site_id),
        )

    def observe(self, element: Any, now: int, network: Network) -> None:
        """Process an arrival in slot ``now`` (Algorithm 3 lines 3-15)."""
        h = self.hasher.unit(element)
        self.observe_hashed(element, h, now, network)

    def observe_hashed(
        self, element: Any, h: float, now: int, network: Network
    ) -> None:
        """Fast path: arrival with a precomputed hash."""
        expiry = now + self.window
        self.candidates.expire(now)
        self.candidates.observe(element, expiry, h)
        if h < self.u_local:
            self.reports_sent += 1
            network.send(
                self.site_id,
                COORDINATOR,
                MessageKind.SW_REPORT,
                (element, h, expiry, self.site_id),
            )

    def handle_message(self, message: Message, network: Network) -> None:
        """Adopt the coordinator's sample reply (Algorithm 3 lines 16-20)."""
        if message.kind is not MessageKind.SW_SAMPLE:
            raise ProtocolError(
                f"sliding-window site {self.site_id} cannot handle {message.kind!r}"
            )
        element, h, expiry = message.payload
        self.sample_element = element
        self.u_local = h
        self.sample_expiry = expiry
        # Algorithm 3 line 18: the global sample joins the local candidates,
        # pruning local entries it dominates (they can never be the global
        # minimum while it lives).
        self.candidates.observe(element, expiry, h)


class SlidingWindowCoordinator:
    """The coordinator's sliding-window protocol.

    Two modes (see the module docstring for the background):

    * ``"exact"`` — reported entries accumulate in a dominance set; the
      sample is its live minimum.  Replies carry that minimum and *its*
      expiry.
    * ``"paper"`` — the literal Algorithm 4 single tuple ``(e*, u*, t*)``,
      replaced iff a report hashes lower or the tuple has expired.

    Args:
        clock: Shared slot clock (used to detect sample expiry).
        mode: ``"exact"`` or ``"paper"``.
    """

    __slots__ = (
        "clock",
        "mode",
        "candidates",
        "sample_element",
        "u_star",
        "sample_expiry",
        "reports_received",
    )

    def __init__(self, clock: SlotClock, mode: str = "exact") -> None:
        if mode not in ("exact", "paper"):
            raise ConfigurationError(
                f"coordinator mode must be 'exact' or 'paper', got {mode!r}"
            )
        self.clock = clock
        self.mode = mode
        self.candidates = SortedDominanceSet(1) if mode == "exact" else None
        self.sample_element: Optional[Any] = None
        self.u_star = 1.0
        self.sample_expiry: float = -1.0  # expired from the start
        self.reports_received = 0

    def _refresh_exact(self, now: int) -> None:
        self.candidates.expire(now)
        entry = self.candidates.min_entry()
        if entry is None:
            self.sample_element = None
            self.u_star = 1.0
            self.sample_expiry = -1.0
        else:
            self.sample_element = entry.element
            self.u_star = entry.hash
            self.sample_expiry = entry.expiry

    def handle_message(self, message: Message, network: Network) -> None:
        """Absorb a site report; always reply with the global sample."""
        if message.kind is not MessageKind.SW_REPORT:
            raise ProtocolError(f"coordinator cannot handle {message.kind!r}")
        element, h, expiry, site_id = message.payload
        self.reports_received += 1
        now = self.clock.now
        if self.mode == "exact":
            self.candidates.observe(element, expiry, h)
            self._refresh_exact(now)
        else:
            if self.sample_expiry <= now or h < self.u_star:
                self.sample_element = element
                self.u_star = h
                self.sample_expiry = expiry
        network.send(
            COORDINATOR,
            site_id,
            MessageKind.SW_SAMPLE,
            (self.sample_element, self.u_star, self.sample_expiry),
        )

    def query(self) -> Optional[Any]:
        """The current window's distinct sample, or None if the window is
        empty (or, in paper mode, the tuple expired with no replacement)."""
        now = self.clock.now
        if self.mode == "exact":
            self._refresh_exact(now)
        if self.sample_expiry <= now:
            return None
        return self.sample_element

    @property
    def memory_size(self) -> int:
        """Coordinator candidate-set size (1 in paper mode)."""
        if self.candidates is None:
            return 1
        return len(self.candidates)


class SlidingWindowSystem(Sampler):
    """Facade: k sliding-window sites + coordinator on one network.

    Drive it slot by slot::

        system = SlidingWindowSystem(num_sites=10, window=100, seed=7)
        for slot, arrivals in schedule:          # arrivals: [(site, elem)]
            system.advance(slot)
            system.observe_batch(arrivals)
            sample = system.sample()             # SampleResult (s = 1)

    Args:
        num_sites: Number of sites k.
        window: Window size w in slots.
        seed: Hash seed (ignored if ``hasher`` given).
        algorithm: Hash algorithm name.
        structure: Candidate-set backing store (``"treap"``/``"sorted"``).
        coordinator_mode: ``"exact"`` (default, provably correct) or
            ``"paper"`` (literal Algorithm 4) — see the module docstring.
        hasher: Optional shared pre-built hasher.
    """

    def __init__(
        self,
        num_sites: int,
        window: int,
        seed: int = 0,
        algorithm: str = "murmur2",
        structure: str = "treap",
        coordinator_mode: str = "exact",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self.window = window
        self.sample_size = 1
        self.structure = structure
        self.coordinator_mode = coordinator_mode
        self.clock = SlotClock(0)
        self._init_runtime(
            Topology.build(
                coordinator=SlidingWindowCoordinator(
                    self.clock, coordinator_mode
                ),
                site_factory=lambda i: SlidingWindowSite(
                    i, self.hasher, window, structure
                ),
                num_sites=num_sites,
            )
        )

    # -- protocol hooks ----------------------------------------------------

    def _advance_to(self, slot: int) -> None:
        """Slot boundary: advance the clock and run site maintenance."""
        self.clock.advance_to(slot)
        network = self.network
        for site in self.sites:
            site.tick(slot, network)

    def _deliver(self, site_id: int, element: Any) -> None:
        """Deliver an arrival at the current slot."""
        self.sites[site_id].observe(element, self.clock.now, self.network)

    def observe_batch(self, events) -> int:
        """Vectorized batch ingestion (semantics of the generic loop).

        Splits the batch into same-slot runs, bulk-hashes each run
        (:func:`~repro.hashing.unit.unit_hash_batch`), and — on a
        synchronous network — drops exact ``(site, element)`` repeats
        within a run: for ``s = 1`` the site threshold ``u_i`` is
        non-increasing within a slot (every coordinator reply carries a
        hash no larger than the reported one), so a same-slot repeat can
        never report and its candidate refresh is a no-op.  That proof
        needs the reply to land *before* the repeat, so the dedup is
        skipped on delay-tolerant networks (``network.synchronous`` is
        False), where the generic loop really does re-report.
        Equivalence with looping :meth:`observe` is covered by the
        batch-equivalence tests for both network flavours.
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        events = events if isinstance(events, list) else list(events)
        if not events:
            return 0
        for slot, batch in iter_event_runs(events):
            if slot is not None:
                self.advance(slot)
            self._deliver_batch(batch)
        return len(events)

    def observe_columns(self, batch: EventBatch) -> int:
        """Columnar fast path: cached hash column + vectorized dedup."""
        batch.require_sites()
        for slot, run in batch.slot_runs():
            if slot is not None:
                self.advance(slot)
            self._deliver_columns(run)
        return len(batch)

    def _deliver_columns(self, run: EventBatch) -> None:
        """Columnar twin of :meth:`_deliver_batch` (same dedup proof)."""
        if not len(run):
            return
        hashes = run.hash_column(self.hasher).tolist()
        site_ids = run.sites_list()
        items = run.items_list()
        now = self.clock.now
        network = self.network
        sites = self.sites
        if not network.synchronous:
            for site_id, item, h in zip(site_ids, items, hashes):
                sites[site_id].observe_hashed(item, h, now, network)
            return
        for j in run.first_occurrence_indices().tolist():
            sites[site_ids[j]].observe_hashed(items[j], hashes[j], now, network)

    def _deliver_batch(self, batch: list) -> None:
        """Deliver one same-slot run with precomputed hashes (+ dedup)."""
        if not batch:
            return
        items = [item for _, item in batch]
        hashes = unit_hash_batch(self.hasher, items)
        now = self.clock.now
        network = self.network
        sites = self.sites
        if not network.synchronous:
            for (site_id, item), h in zip(batch, hashes):
                sites[site_id].observe_hashed(item, h, now, network)
            return
        seen: set = set()
        for (site_id, item), h in zip(batch, hashes):
            key = (site_id, item)
            if key in seen:
                continue
            seen.add(key)
            sites[site_id].observe_hashed(item, h, now, network)

    def sample(self) -> SampleResult:
        """The window's distinct sample (at most one item for s = 1)."""
        element = self.coordinator.query()
        if element is None:
            items: tuple = ()
            pairs: tuple = ()
            threshold = 1.0
        else:
            threshold = self.coordinator.u_star
            items = (element,)
            pairs = ((threshold, element),)
        return SampleResult(
            items=items,
            pairs=pairs,
            threshold=threshold,
            sample_size=1,
            window=self.window,
            slot=self.current_slot,
        )

    def _legacy_sample_shape(self) -> Optional[Any]:
        # The old ``query()`` returned the sample element or None.
        return self.sample().first

    def per_site_memory(self) -> list[int]:
        """Current candidate-set sizes, one per site (Fig 5.7/5.9 metric)."""
        return [site.memory_size for site in self.sites]

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="sliding",
            num_sites=self.num_sites,
            sample_size=1,
            window=self.window,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
            structure=self.structure,
            coordinator_mode=self.coordinator_mode,
        )

    def _state(self) -> dict[str, Any]:
        coord = self.coordinator
        return {
            "clock": self.clock.now,
            "coordinator": {
                "reports_received": coord.reports_received,
                "sample": [
                    coord.sample_element,
                    coord.u_star,
                    encode_expiry(coord.sample_expiry),
                ],
                "entries": (
                    None
                    if coord.candidates is None
                    else [
                        [e.element, e.expiry, e.hash]
                        for e in coord.candidates.entries()
                    ]
                ),
            },
            "sites": [
                {
                    "entries": [
                        [e.element, e.expiry, e.hash]
                        for e in site.candidates.entries()
                    ],
                    "sample_element": site.sample_element,
                    "u_local": site.u_local,
                    "sample_expiry": encode_expiry(site.sample_expiry),
                    "reports_sent": site.reports_sent,
                    "fallbacks": site.fallbacks,
                }
                for site in self.sites
            ],
        }

    def _load(self, state: dict[str, Any]) -> None:
        self.clock.advance_to(int(state["clock"]))
        coord_state = state["coordinator"]
        coord = self.coordinator
        coord.reports_received = int(coord_state["reports_received"])
        element, u_star, expiry = coord_state["sample"]
        coord.sample_element = revive_element(element)
        coord.u_star = float(u_star)
        coord.sample_expiry = decode_expiry(expiry)
        if coord.candidates is not None:
            coord.candidates = SortedDominanceSet(1)
            for e, exp, h in coord_state["entries"]:
                coord.candidates.observe(revive_element(e), int(exp), float(h))
        for site, site_state in zip(self.sites, state["sites"]):
            site.candidates = _make_structure(self.structure)
            for e, exp, h in site_state["entries"]:
                site.candidates.observe(revive_element(e), int(exp), float(h))
            site.sample_element = revive_element(site_state["sample_element"])
            site.u_local = float(site_state["u_local"])
            site.sample_expiry = decode_expiry(site_state["sample_expiry"])
            site.reports_sent = int(site_state["reports_sent"])
            site.fallbacks = int(site_state["fallbacks"])
