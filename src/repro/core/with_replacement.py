"""Distinct sampling *with replacement* — s parallel single-sample copies.

The paper (end of Section 3.1): "One solution to distinct sampling with
replacement is to repeat s parallel copies of the single element sampling
algorithm, each copy using a different hash function. ... the message cost
is s times the cost of a single element sampling algorithm, which is
O(sk log de)."

Each copy is an independent ``s = 1`` instance of the corresponding
without-replacement system, seeded from one
:class:`~repro.hashing.unit.SeededHashFamily`, so the ``s`` samples are
mutually independent uniform draws from the distinct population.  The
facades conform to the unified :class:`~repro.core.protocol.Sampler`
protocol and aggregate costs across the copies.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..hashing.unit import SeededHashFamily
from ..runtime.topology import aggregate_sampler_stats, merge_message_stats
from .events import EventBatch
from .infinite import DistinctSamplerSystem
from .protocol import (
    Sampler,
    SampleResult,
    SamplerConfig,
    SamplerStats,
    iter_event_runs,
)
from .sliding import SlidingWindowSystem

__all__ = ["WithReplacementSampler", "SlidingWindowWithReplacement"]


class _WithReplacementBase(Sampler):
    """Shared protocol plumbing for the two with-replacement facades.

    Subclasses build ``self.copies`` (independent s = 1 systems) before
    calling :meth:`_init_protocol`.  There is no facade-level network:
    every cost counter aggregates across the copies' networks.
    """

    copies: list

    # -- lifecycle ---------------------------------------------------------

    def _deliver(self, site_id: int, item: Any) -> None:
        for copy in self.copies:
            copy._deliver(site_id, item)

    def observe_batch(self, events) -> int:
        """Vectorized batch ingestion: one bulk call per copy per run.

        The copies are fully independent (separate hashers and networks),
        so handing each copy a whole same-slot run at once — letting it
        bulk-hash with *its* seed — produces exactly the state the
        event-by-event loop would.  The facade advances first, which (for
        the sliding flavour) moves every copy's clock to the run's slot
        before delivery.
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        events = events if isinstance(events, list) else list(events)
        if not events:
            return 0
        for slot, batch in iter_event_runs(events):
            if slot is not None:
                self.advance(slot)
            for copy in self.copies:
                copy.observe_batch(batch)
        return len(events)

    def observe_columns(self, batch: EventBatch) -> int:
        """Columnar ingestion: each copy takes the run's columnar path.

        Every copy hashes with *its own* family member, so each same-slot
        run accumulates one cached hash column per copy and the copies'
        vectorized ``observe_columns`` fast paths do the rest.
        """
        batch.require_sites()
        for slot, run in batch.slot_runs():
            if slot is not None:
                self.advance(slot)
            for copy in self.copies:
                copy.observe_columns(run)
        return len(batch)

    def sample(self) -> SampleResult:
        """One independent uniform distinct draw per copy.

        ``items`` has exactly ``s`` slots; a slot is None while its copy
        has not yet seen a live element.  ``pairs`` carries the
        ``(hash, item)`` of the non-empty copies.
        """
        draws: list[Optional[Any]] = []
        pairs: list[tuple[float, Any]] = []
        for copy in self.copies:
            result = copy.sample()
            draws.append(result.first)
            if result.pairs:
                pairs.append(result.pairs[0])
        return SampleResult(
            items=tuple(draws),
            pairs=tuple(pairs),
            threshold=None,
            sample_size=len(self.copies),
            window=self._window_meta(),
            slot=self.current_slot,
            with_replacement=True,
        )

    def _window_meta(self) -> Optional[int]:
        return None

    def message_stats(self):
        """Aggregate message counters across all s copies' transports."""
        return merge_message_stats(copy.message_stats() for copy in self.copies)

    def stats(self) -> SamplerStats:
        """Aggregate cost counters across all s copies."""
        return aggregate_sampler_stats(self.copies, self._slots_processed)

    # -- overrides for the missing facade-level topology -------------------

    @property
    def num_sites(self) -> int:
        """Number of sites k."""
        return self.copies[0].num_sites

    @property
    def sample_size(self) -> int:
        """Number of independent samples s."""
        return len(self.copies)

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "protocol": {
                "last_slot": self._last_slot,
                "slots_processed": self._slots_processed,
            },
            "copies": [copy.state_dict() for copy in self.copies],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        try:
            protocol = state["protocol"]
            copies = state["copies"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed sampler state: {exc}") from exc
        last_slot = protocol.get("last_slot")
        self._last_slot = None if last_slot is None else int(last_slot)
        self._slots_processed = int(protocol.get("slots_processed", 0))
        if len(copies) != len(self.copies):
            raise ConfigurationError(
                f"snapshot has {len(copies)} copies, sampler has "
                f"{len(self.copies)}"
            )
        for copy, copy_state in zip(self.copies, copies):
            copy.load_state(copy_state)

    def _state(self) -> dict[str, Any]:  # pragma: no cover - unused
        raise NotImplementedError

    def _load(self, state: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def _legacy_sample_shape(self) -> list[Optional[Any]]:
        # The old ``sample()`` returned the list of per-copy draws.
        return list(self.sample().items)


class WithReplacementSampler(_WithReplacementBase):
    """Infinite-window distinct sampling with replacement.

    Args:
        num_sites: Number of sites k.
        sample_size: Number of independent samples s.
        seed: Master seed for the hash family.
        algorithm: Hash algorithm for every family member.
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
    ) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.seed = int(seed)
        self.algorithm = algorithm
        family = SeededHashFamily(seed, algorithm)
        self.copies = [
            DistinctSamplerSystem(
                num_sites=num_sites, sample_size=1, hasher=family.member(i)
            )
            for i in range(sample_size)
        ]
        self._init_protocol()

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="with-replacement",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            window=0,
            seed=self.seed,
            algorithm=self.algorithm,
        )


class SlidingWindowWithReplacement(_WithReplacementBase):
    """Sliding-window distinct sampling with replacement.

    Args:
        num_sites: Number of sites k.
        window: Window size w in slots.
        sample_size: Number of independent samples s.
        seed: Master seed for the hash family.
        algorithm: Hash algorithm for every family member.
    """

    def __init__(
        self,
        num_sites: int,
        window: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
    ) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.seed = int(seed)
        self.algorithm = algorithm
        self.window = window
        family = SeededHashFamily(seed, algorithm)
        self.copies = [
            SlidingWindowSystem(
                num_sites=num_sites, window=window, hasher=family.member(i)
            )
            for i in range(sample_size)
        ]
        self._init_protocol()

    def _advance_to(self, slot: int) -> None:
        for copy in self.copies:
            copy.advance(slot)

    def _window_meta(self) -> Optional[int]:
        return self.window

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="with-replacement",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            window=self.window,
            seed=self.seed,
            algorithm=self.algorithm,
        )
