"""Distinct sampling *with replacement* — s parallel single-sample copies.

The paper (end of Section 3.1): "One solution to distinct sampling with
replacement is to repeat s parallel copies of the single element sampling
algorithm, each copy using a different hash function. ... the message cost
is s times the cost of a single element sampling algorithm, which is
O(sk log de)."

Each copy is an independent ``s = 1`` instance of the corresponding
without-replacement system, seeded from one
:class:`~repro.hashing.unit.SeededHashFamily`, so the ``s`` samples are
mutually independent uniform draws from the distinct population.  The
facade aggregates message counts across the copies.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..hashing.unit import SeededHashFamily
from .infinite import DistinctSamplerSystem
from .sliding import SlidingWindowSystem

__all__ = ["WithReplacementSampler", "SlidingWindowWithReplacement"]


class WithReplacementSampler:
    """Infinite-window distinct sampling with replacement.

    Args:
        num_sites: Number of sites k.
        sample_size: Number of independent samples s.
        seed: Master seed for the hash family.
        algorithm: Hash algorithm for every family member.
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
    ) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        family = SeededHashFamily(seed, algorithm)
        self.copies = [
            DistinctSamplerSystem(
                num_sites=num_sites, sample_size=1, hasher=family.member(i)
            )
            for i in range(sample_size)
        ]

    def observe(self, site_id: int, element: Any) -> None:
        """Deliver ``element`` to site ``site_id`` in every copy."""
        for copy in self.copies:
            copy.observe(site_id, element)

    def sample(self) -> list[Optional[Any]]:
        """One independent uniform distinct draw per copy.

        Entries are None for copies that have not yet seen any element
        (only before the first observation).
        """
        out: list[Optional[Any]] = []
        for copy in self.copies:
            members = copy.sample()
            out.append(members[0] if members else None)
        return out

    @property
    def total_messages(self) -> int:
        """Aggregate messages across all s copies."""
        return sum(copy.total_messages for copy in self.copies)

    @property
    def sample_size(self) -> int:
        """Number of independent samples s."""
        return len(self.copies)


class SlidingWindowWithReplacement:
    """Sliding-window distinct sampling with replacement.

    Args:
        num_sites: Number of sites k.
        window: Window size w in slots.
        sample_size: Number of independent samples s.
        seed: Master seed for the hash family.
        algorithm: Hash algorithm for every family member.
    """

    def __init__(
        self,
        num_sites: int,
        window: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
    ) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        family = SeededHashFamily(seed, algorithm)
        self.copies = [
            SlidingWindowSystem(
                num_sites=num_sites, window=window, hasher=family.member(i)
            )
            for i in range(sample_size)
        ]

    def process_slot(self, slot: int, arrivals: list[tuple[int, Any]]) -> None:
        """Advance every copy to ``slot`` and deliver its arrivals."""
        for copy in self.copies:
            copy.process_slot(slot, arrivals)

    def sample(self) -> list[Optional[Any]]:
        """One independent uniform distinct draw per copy (None = empty)."""
        return [copy.query() for copy in self.copies]

    @property
    def total_messages(self) -> int:
        """Aggregate messages across all s copies."""
        return sum(copy.total_messages for copy in self.copies)
