"""Infinite-window distributed distinct sampling (paper Algorithms 1 & 2).

The sample is defined as the elements achieving the ``s`` smallest values
of a shared hash ``h : U -> [0,1)`` over all distinct elements observed
anywhere — a *bottom-s* sketch of the union stream.  Distributively:

* The **coordinator** (Algorithm 2) keeps the sample ``P`` (a
  :class:`~repro.structures.bottomk.BottomK`) and the threshold
  ``u`` = ``s``-th smallest hash seen so far (1.0 until ``s`` distinct
  elements have been seen).
* Each **site** (Algorithm 1) keeps a single float ``u_i`` — its *lazily
  synchronized* view of ``u``.  It reports an element iff ``h(e) < u_i``;
  every report is answered with the fresh ``u``, so ``u_i >= u`` always
  (``u`` never increases in the infinite-window case).

Every site→coordinator report triggers exactly one coordinator→site reply,
so total messages = 2 × reports, matching the paper's accounting
(Equation 3.1).

Implementation notes:

* **Threshold nuance.**  Algorithm 2 as printed updates ``u`` only when
  ``|P| > s`` forces an eviction, leaving ``u = 1`` when ``|P| == s``.
  Lemma 1's proof instead characterizes ``u`` as *the min(s,d)-th smallest
  hash seen so far*, which equals ``max{h(f) | f in P}`` as soon as ``P``
  is full.  We implement the Lemma 1 semantics (the tighter threshold);
  it filters a few useless reports right after the sample fills and is
  required for the exactness property the tests check (coordinator sample
  ≡ centralized bottom-s at all times).
* **Duplicate reports.**  A repeat occurrence of an element that currently
  sits in the sample with ``h(e) < u`` *is* reported again (the site has
  O(1) memory and cannot remember having sent it).  For ``s = 1`` this
  never happens (``h(e) = u`` fails the strict test); for ``s > 1`` it is
  an inherent cost of Algorithms 1–2 as written, visible on duplicate-heavy
  streams.  The message-bound analysis (Lemma 2) counts first occurrences
  only; see ``analysis.bounds`` and EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher, unit_hash_vector
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology
from ..structures.bottomk import BottomK
from .events import EventBatch
from .protocol import (
    Sampler,
    SampleResult,
    SamplerConfig,
    iter_event_runs,
    revive_element,
)

__all__ = [
    "BottomSFacadeBase",
    "InfiniteWindowSite",
    "InfiniteWindowCoordinator",
    "DistinctSamplerSystem",
]


class InfiniteWindowSite:
    """Algorithm 1: the per-site protocol.

    State is exactly one float, ``u_local`` — the site's view of the
    global threshold (paper: O(1) memory per site).

    Args:
        site_id: This site's network address (0-based).
        hasher: The shared hash function h.
    """

    __slots__ = ("site_id", "hasher", "u_local")

    def __init__(self, site_id: int, hasher: UnitHasher) -> None:
        self.site_id = site_id
        self.hasher = hasher
        self.u_local = 1.0  # initialized to 1 (Algorithm 1 line 1)

    def observe(self, element: Any, network: Network) -> None:
        """Process one local stream element (hashes internally)."""
        h = self.hasher.unit(element)
        if h < self.u_local:
            network.send(
                self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
            )

    def observe_hashed(self, element: Any, h: float, network: Network) -> None:
        """Fast path: process an element whose hash is precomputed.

        The caller guarantees ``h == hasher.unit(element)``; experiment
        drivers vectorize hashing over whole streams and use this entry.
        """
        if h < self.u_local:
            network.send(
                self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
            )

    def handle_message(self, message: Message, network: Network) -> None:
        """Receive the refreshed threshold (Algorithm 1 lines 5-6)."""
        if message.kind is not MessageKind.THRESHOLD:
            raise ProtocolError(
                f"site {self.site_id} cannot handle {message.kind!r}"
            )
        self.u_local = message.payload


class InfiniteWindowCoordinator:
    """Algorithm 2: the coordinator protocol.

    Args:
        sample_size: Desired sample size s (>= 1).

    Raises:
        ConfigurationError: If ``sample_size < 1``.
    """

    __slots__ = ("sample_store", "reports_received", "reports_accepted")

    def __init__(self, sample_size: int) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_store = BottomK(sample_size)
        self.reports_received = 0
        self.reports_accepted = 0

    @property
    def threshold(self) -> float:
        """Current global threshold u (the min(s,d)-th smallest hash)."""
        return self.sample_store.threshold()

    def handle_message(self, message: Message, network: Network) -> None:
        """Process a site report and always reply with the fresh u."""
        if message.kind is not MessageKind.REPORT:
            raise ProtocolError(
                f"coordinator cannot handle {message.kind!r}"
            )
        element, h, site_id = message.payload
        self.reports_received += 1
        accepted, _evicted = self.sample_store.offer(h, element)
        if accepted:
            self.reports_accepted += 1
        # Algorithm 2 line 11: reply regardless of acceptance.
        network.send(
            COORDINATOR, site_id, MessageKind.THRESHOLD, self.sample_store.threshold()
        )

    def sample(self) -> list[Any]:
        """The current distinct sample (size min(s, d)), ascending by hash."""
        return self.sample_store.elements()

    def sample_pairs(self) -> list[tuple[float, Any]]:
        """The current ``(hash, element)`` pairs, ascending by hash."""
        return self.sample_store.pairs()


class BottomSFacadeBase(Sampler):
    """Shared facade plumbing for the infinite-window bottom-s systems.

    The infinite-window system and the broadcast/caching baselines differ
    only in protocol logic (site trigger and feedback policy); everything
    else — delivery hooks, the :class:`BottomK`-backed sample/threshold
    queries, and the sample's snapshot rows — is identical and lives here.
    Subclasses need a coordinator exposing ``sample_store``
    (a :class:`~repro.structures.bottomk.BottomK`), sites exposing
    ``observe``/``observe_hashed``, and the standard
    :meth:`~repro.core.protocol.Sampler` hook surface for the rest.
    """

    def _deliver(self, site_id: int, element: Any) -> None:
        """Deliver ``element`` to site ``site_id`` (protocol hook)."""
        self.sites[site_id].observe(element, self.network)

    def observe_hashed(self, site_id: int, element: Any, h: float) -> None:
        """Fast path with a precomputed hash (see site docs)."""
        self.sites[site_id].observe_hashed(element, h, self.network)

    def flood_hashed(self, element: Any, h: float) -> None:
        """Deliver a pre-hashed element to every site ("flooding")."""
        network = self.network
        for site in self.sites:
            site.observe_hashed(element, h, network)

    # -- columnar ingestion --------------------------------------------------

    def observe_columns(self, batch: EventBatch) -> int:
        """Columnar fast path: one cached hash column per same-slot run.

        Semantics of the generic loop (slots here are bookkeeping only);
        delivery goes through :meth:`_deliver_columns`, which subclasses
        override to add protocol-specific pre-filtering.
        """
        batch.require_sites()
        for slot, run in batch.slot_runs():
            if slot is not None:
                self.advance(slot)
            self._deliver_columns(run)
        return len(batch)

    def _deliver_columns(self, run: EventBatch) -> None:
        """Deliver one routed run through the precomputed-hash site entry."""
        if not len(run):
            return
        hashes = run.hash_column(self.hasher).tolist()
        network = self.network
        sites = self.sites
        for site_id, item, h in zip(run.sites_list(), run.items_list(), hashes):
            sites[site_id].observe_hashed(item, h, network)

    # -- queries -----------------------------------------------------------

    def sample(self) -> SampleResult:
        """The coordinator's current distinct sample."""
        pairs = tuple(self.coordinator.sample_store.pairs())
        return SampleResult(
            items=tuple(element for _, element in pairs),
            pairs=pairs,
            threshold=self.threshold,
            sample_size=self.sample_size,
            window=None,
            slot=self.current_slot,
        )

    def sample_pairs(self) -> list[tuple[float, Any]]:
        """The coordinator's ``(hash, element)`` pairs, ascending by hash."""
        return self.coordinator.sample_store.pairs()

    def sample_columns(self) -> tuple[np.ndarray, list[Any]]:
        """Merge-side fast path: slice the coordinator's sorted store
        directly (no :class:`~repro.core.protocol.SampleResult`, no
        per-pair tuples)."""
        return self.coordinator.sample_store.columns()

    @property
    def threshold(self) -> float:
        """The coordinator's current threshold u."""
        return self.coordinator.sample_store.threshold()

    @property
    def sample_size(self) -> int:
        """Configured sample size s."""
        return self.coordinator.sample_store.capacity

    # -- persistence helpers -----------------------------------------------

    def _sample_rows(self) -> list:
        """The sample as JSON-safe ``[hash, element]`` snapshot rows."""
        return [[h, element] for h, element in self.sample_pairs()]

    def _load_sample_rows(self, rows: list) -> None:
        """Rebuild the coordinator's sample store from snapshot rows."""
        store = self.coordinator.sample_store
        store.clear()
        for h, element in rows:
            accepted, _ = store.offer(float(h), revive_element(element))
            if not accepted:
                raise ConfigurationError(
                    "snapshot sample contains duplicates or unsorted entries"
                )


class DistinctSamplerSystem(BottomSFacadeBase):
    """Facade wiring ``k`` sites and a coordinator over a simulated network.

    This is the main entry point for infinite-window distributed distinct
    sampling (prefer constructing it through
    ``repro.make_sampler("infinite", ...)``)::

        system = DistinctSamplerSystem(num_sites=5, sample_size=10, seed=42)
        for site, element in my_stream:
            system.observe(site, element)
        print(system.sample().items)       # uniform distinct sample
        print(system.stats().messages_total)  # the paper's cost metric

    Args:
        num_sites: Number of sites k (>= 1).
        sample_size: Sample size s (>= 1).
        seed: Seed for the shared hash function (ignored if ``hasher``
            given).
        algorithm: Hash algorithm name (see ``repro.hashing``).
        hasher: Optional pre-built hasher shared with other components
            (e.g. a centralized oracle in differential tests).

    Raises:
        ConfigurationError: For non-positive ``num_sites``/``sample_size``.
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self._init_runtime(
            Topology.build(
                coordinator=InfiniteWindowCoordinator(sample_size),
                site_factory=lambda i: InfiniteWindowSite(i, self.hasher),
                num_sites=num_sites,
            )
        )

    # -- ingestion -------------------------------------------------------

    def observe_batch(self, events) -> int:
        """Vectorized batch ingestion (semantics of the generic loop).

        The batch is split into same-slot runs (:func:`iter_event_runs`),
        each run is bulk-hashed (:func:`~repro.hashing.unit.unit_hash_batch`
        — one NumPy pass under ``mix64``) and pushed through
        :meth:`process_batch`, which pre-filters elements that provably
        cannot be reported.  Equivalence with looping :meth:`observe` is
        covered by the conformance and batch-equivalence tests.
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        events = events if isinstance(events, list) else list(events)
        if not events:
            return 0
        if len(events[0]) == 2 and set(map(len, events)) == {2}:
            self._deliver_batch(events)
        else:
            for slot, batch in iter_event_runs(events):
                if slot is not None:
                    self.advance(slot)
                self._deliver_batch(batch)
        return len(events)

    def _deliver_batch(self, batch: list) -> None:
        """Bulk-hash one same-slot run and pre-filter silent elements.

        Uses :func:`~repro.hashing.unit.unit_hash_vector` directly (not
        ``unit_hash_batch``) to keep the hash array in NumPy form — no
        list round-trip before the filter.
        """
        if not batch:
            return
        site_ids, items = zip(*batch)
        hashes = unit_hash_vector(self.hasher, items)
        if hashes is None:
            hashes = self.hasher.unit_many(items)
        self.process_batch(site_ids, items, hashes)

    def _deliver_columns(self, run: EventBatch) -> None:
        """Columnar delivery: cached hash column + threshold pre-filter."""
        if not len(run):
            return
        self.process_batch(
            run.sites, run.items_list(), run.hash_column(self.hasher)
        )

    def process_batch(
        self,
        site_ids,
        elements,
        hashes,
        chunk: int = 1024,
    ) -> int:
        """Vectorized bulk ingestion (semantically identical to a loop of
        :meth:`observe_hashed`, verified by the equivalence tests).

        Exploits monotonicity: each site's threshold ``u_i`` only ever
        *decreases*, so any element with ``h >= u_i``-as-of-now can never
        be reported later in the batch either.  The batch is swept in
        chunks; before each chunk the live thresholds are re-read and
        NumPy filters out the provably silent elements wholesale, so only
        the surviving candidates walk the slow path (which still
        re-checks against the live threshold — it may have dropped
        further mid-chunk).  Once the sample stabilizes, whole chunks are
        skipped with a single vector compare.

        Args:
            site_ids: Per-element site assignment (array-like of int).
            elements: The elements themselves (any type; delivered as-is).
            hashes: Matching unit hashes (array-like of float).
            chunk: Elements per threshold refresh (tuning knob only —
                any value yields identical protocol behaviour).

        Returns:
            The number of elements that took the slow path.
        """
        site_arr = np.asarray(site_ids, dtype=np.intp)
        hash_arr = np.asarray(hashes, dtype=np.float64)
        n = len(hash_arr)
        if not (len(site_arr) == n == len(elements)):
            raise ConfigurationError(
                "site_ids, elements, and hashes must have equal lengths"
            )
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        network = self.network
        sites = self.sites
        slow = 0
        element_list = (
            elements if isinstance(elements, list) else list(elements)
        )
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            # Thresholds as of chunk start; u_i never increases, so
            # elements filtered out here are silent for the whole chunk.
            thresholds = np.array([site.u_local for site in sites])
            candidate_mask = (
                hash_arr[start:stop] < thresholds[site_arr[start:stop]]
            )
            for i in np.flatnonzero(candidate_mask).tolist():
                j = start + i
                sites[site_arr[j]].observe_hashed(
                    element_list[j], float(hash_arr[j]), network
                )
                slow += 1
        return slow

    def flood(self, element: Any) -> None:
        """Deliver ``element`` to every site (the "flooding" distribution)."""
        self.flood_hashed(element, self.hasher.unit(element))

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="infinite",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
        )

    def _state(self) -> dict[str, Any]:
        return {
            "sample": self._sample_rows(),
            "site_thresholds": [site.u_local for site in self.sites],
            "reports_received": self.coordinator.reports_received,
            "reports_accepted": self.coordinator.reports_accepted,
        }

    def _load(self, state: dict[str, Any]) -> None:
        self._load_sample_rows(state["sample"])
        thresholds = state.get("site_thresholds")
        if thresholds is None:
            # Soft site state: any value >= the true u is safe.
            u = self.coordinator.sample_store.threshold()
            for site in self.sites:
                site.u_local = u
        else:
            for site, u in zip(self.sites, thresholds):
                site.u_local = float(u)
        self.coordinator.reports_received = int(state.get("reports_received", 0))
        self.coordinator.reports_accepted = int(state.get("reports_accepted", 0))
