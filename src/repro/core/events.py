"""Columnar event batches: the zero-tuple ingest representation.

High-rate ingestion used to cross every layer boundary as a Python list
of ``(site, item)`` tuples: the engine zipped routing output back into
tuples, the sharded facade split shards with a per-item append loop, and
each sampler core re-extracted the item column just to hash it again.
:class:`EventBatch` replaces that with NumPy columns that flow from the
stream generators to the sampler cores untouched:

* ``items`` — the element ids (``int64``; exotic element types take the
  tuple path instead).
* ``sites`` — optional per-event site ids.  A site-less batch is a *raw*
  key stream whose routing decision is still pending; the
  :class:`~repro.runtime.engine.Engine` attaches the column.
* ``slots`` — optional per-event slot stamps (all events stamped, or
  none; a mixed stream keeps the tuple representation).

Each layer that hashes — engine routing, shard partitioning, the
sampling hash itself — asks :meth:`EventBatch.hash_column` for its
:class:`~repro.hashing.unit.UnitHasher`'s column.  Columns are computed
in one vectorized pass (``mix64``) or one scalar sweep (other
algorithms) and cached on the batch, so row subsets created by
:meth:`EventBatch.select` *slice* the already-computed hashes instead of
rehashing: the sharded facade warms the shared sampling-hash column once
per run and every coordinator group reuses its slice.

Equivalence with the tuple path is structural: :meth:`from_events` /
:meth:`to_events` are exact inverses, and every consumer's
``observe_columns`` fast path is pinned against the tuple-batch and
single-``observe`` paths by ``tests/test_batch_equivalence.py``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np
import numpy.typing as npt

from ..errors import ConfigurationError
from ..hashing.unit import UnitHasher, unit_hash_array

__all__ = ["EventBatch"]

#: One int64 column (items, sites, or slots).
IntColumn = npt.NDArray[np.int64]

#: One float64 unit-hash column.
HashColumn = npt.NDArray[np.float64]


def _as_int64(values: npt.ArrayLike, name: str) -> IntColumn:
    """Coerce a column to ``int64`` without ever silently truncating."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigurationError(
            f"{name} column must be one-dimensional, got shape {arr.shape}"
        )
    if arr.dtype == np.int64:
        return arr
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.integer):
        raise ConfigurationError(
            f"{name} column must be an integer array, got dtype {arr.dtype} "
            "(non-integer elements take the tuple-event path)"
        )
    if (
        np.issubdtype(arr.dtype, np.unsignedinteger)
        and arr.size
        and int(arr.max()) > np.iinfo(np.int64).max
    ):
        raise ConfigurationError(
            f"{name} column has values outside the int64 range "
            "(out-of-range integers take the tuple-event path)"
        )
    return arr.astype(np.int64)


class EventBatch:
    """A batch of ingestion events in columnar (structure-of-arrays) form.

    Args:
        items: Element ids (integer array-like; coerced to ``int64``).
        sites: Optional per-event site ids (same length).  ``None``
            means routing has not happened yet.
        slots: Optional per-event slot stamps (same length).  ``None``
            means every event is delivered at the current slot.

    Raises:
        ConfigurationError: For non-integer columns or length mismatches.

    ``len(batch)`` is the event count and two batches compare equal iff
    their columns match element-for-element (cached hash columns are
    derived data and never participate).
    """

    __slots__ = ("items", "sites", "slots", "_hash_columns", "_items_list",
                 "_sites_list")

    def __init__(
        self,
        items: npt.ArrayLike,
        sites: Optional[npt.ArrayLike] = None,
        slots: Optional[npt.ArrayLike] = None,
    ) -> None:
        self.items = _as_int64(items, "items")
        n = self.items.size
        self.sites = None if sites is None else _as_int64(sites, "sites")
        self.slots = None if slots is None else _as_int64(slots, "slots")
        for name, column in (("sites", self.sites), ("slots", self.slots)):
            if column is not None and column.size != n:
                raise ConfigurationError(
                    f"{name} column has {column.size} rows, items has {n}"
                )
        #: hasher -> float64 unit-hash column, computed at most once.
        self._hash_columns: dict[UnitHasher, HashColumn] = {}
        self._items_list: Optional[list[int]] = None
        self._sites_list: Optional[list[int]] = None

    # -- converters ----------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Sequence[int]]) -> "EventBatch":
        """Build a batch from tuple events (the exact tuple-path inverse).

        Accepts a uniform sequence of ``(site, item)`` or
        ``(site, item, slot)`` events over plain int64-range integer
        items — the same gate as the ``mix64`` vectorizer, so anything
        this refuses must take the tuple path anyway.

        Raises:
            ConfigurationError: For mixed arities or non-``int`` items.
        """
        events = events if isinstance(events, list) else list(events)
        if not events:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        arities = set(map(len, events))
        if arities == {2}:
            sites, items = zip(*events)
            slots = None
        elif arities == {3}:
            sites, items, slots = zip(*events)
        else:
            raise ConfigurationError(
                "EventBatch.from_events needs uniform (site, item) or "
                "(site, item, slot) events; mixed shapes keep the tuple path"
            )
        if set(map(type, items)) != {int}:
            raise ConfigurationError(
                "EventBatch holds int64 element ids; other element types "
                "keep the tuple path"
            )
        try:
            item_column = np.array(items, dtype=np.int64)
        except OverflowError:
            raise ConfigurationError(
                "EventBatch holds int64 element ids; out-of-range integers "
                "keep the tuple path"
            ) from None
        return cls(
            item_column,
            np.array(sites, dtype=np.int64),
            None if slots is None else np.array(slots, dtype=np.int64),
        )

    def to_events(self) -> list[tuple[int, ...]]:
        """The equivalent tuple-event list (the generic-loop fallback).

        Raises:
            ConfigurationError: If the batch carries no site column (a
                raw key stream must be routed through an Engine first).
        """
        self.require_sites()
        if self.slots is None:
            return list(zip(self.sites_list(), self.items_list()))
        return list(
            zip(self.sites_list(), self.items_list(), self.slots.tolist())
        )

    # -- derived batches (columns shared, hashes never recomputed) -----------

    def with_sites(self, sites: npt.ArrayLike) -> "EventBatch":
        """A new batch over the same rows with ``sites`` attached.

        The engine's routing step: items/slots and every cached hash
        column are shared with the parent (same rows, same hashes).
        """
        batch = EventBatch(self.items, sites, self.slots)
        batch._hash_columns = self._hash_columns
        batch._items_list = self._items_list
        return batch

    def select(self, index: npt.ArrayLike) -> "EventBatch":
        """The row subset ``index`` (boolean mask or index array).

        Order-preserving for sorted/boolean indices; cached hash columns
        are sliced, not recomputed — the sharded split relies on this.
        """
        batch = EventBatch(
            self.items[index],
            None if self.sites is None else self.sites[index],
            None if self.slots is None else self.slots[index],
        )
        batch._hash_columns = {
            hasher: column[index]
            for hasher, column in self._hash_columns.items()
        }
        return batch

    def slot_runs(self) -> Iterator[tuple[Optional[int], "EventBatch"]]:
        """Group the batch into same-slot runs, mirroring
        :func:`~repro.core.protocol.iter_event_runs`.

        Yields ``(slot, run)`` pairs where ``run`` carries no slot column
        (its events are all delivered after one ``advance(slot)``); a
        slot-less batch yields itself once under ``slot=None``.
        """
        if self.slots is None:
            yield None, self
            return
        n = self.items.size
        if not n:
            return
        slots = self.slots
        boundaries = (np.flatnonzero(slots[1:] != slots[:-1]) + 1).tolist()
        start = 0
        for stop in [*boundaries, n]:
            run = EventBatch(
                self.items[start:stop],
                None if self.sites is None else self.sites[start:stop],
            )
            run._hash_columns = {
                hasher: column[start:stop]
                for hasher, column in self._hash_columns.items()
            }
            yield int(slots[start]), run
            start = stop

    # -- hash columns --------------------------------------------------------

    def hash_column(self, hasher: UnitHasher) -> HashColumn:
        """The unit-hash column under ``hasher``, computed at most once.

        Element-for-element equal to ``[hasher.unit(e) for e in items]``:
        ``mix64`` vectorizes through
        :func:`~repro.hashing.unit.unit_hash_array`, every other
        algorithm takes one scalar sweep.  Each layer's hasher (engine
        routing, shard routing, sampling) gets its own cached column.
        """
        column = self._hash_columns.get(hasher)
        if column is None:
            if hasher.algorithm == "mix64":
                column = unit_hash_array(self.items, hasher.seed)
            else:
                column = np.array(
                    hasher.unit_many(self.items_list()), dtype=np.float64
                )
            self._hash_columns[hasher] = column
        return column

    def adopt_hash_column(self, hasher: UnitHasher, column: HashColumn) -> None:
        """Install a precomputed unit-hash column for ``hasher``.

        The zero-copy ingest path: a shared-memory worker reconstructs a
        batch over views into the parent's shm blocks and adopts the
        parent-warmed sampling-hash slice instead of rehashing.  The
        column must be element-for-element what :meth:`hash_column`
        would compute — callers ship slices of a column that *was*
        computed by :meth:`hash_column`, so this holds by construction.
        The adopted column may be a view into externally managed memory
        (it is only read during delivery, never retained by the cores).

        Raises:
            ConfigurationError: On a length mismatch with ``items``.
        """
        if column.shape != self.items.shape:
            raise ConfigurationError(
                f"hash column has shape {column.shape}, items has "
                f"{self.items.shape}"
            )
        self._hash_columns[hasher] = column

    def first_occurrence_indices(self) -> IntColumn:
        """Indices of the first occurrence of each ``(site, item)`` pair,
        ascending — the vectorized form of the same-slot dedup loop the
        sliding cores run on synchronous networks."""
        pairs = np.stack((self.require_sites(), self.items), axis=1)
        _, first = np.unique(pairs, axis=0, return_index=True)
        first.sort()
        return first

    # -- row views -----------------------------------------------------------

    def require_sites(self) -> IntColumn:
        """The site column, or a clear error for a still-unrouted batch."""
        if self.sites is None:
            raise ConfigurationError(
                "EventBatch has no site column; route it through an "
                "Engine (or attach one with with_sites) before delivery"
            )
        return self.sites

    def items_list(self) -> list[int]:
        """The item column as plain Python ints (cached)."""
        if self._items_list is None:
            self._items_list = self.items.tolist()
        return self._items_list

    def sites_list(self) -> list[int]:
        """The site column as plain Python ints (cached)."""
        sites = self.require_sites()
        if self._sites_list is None:
            self._sites_list = sites.tolist()
        return self._sites_list

    # -- dunder --------------------------------------------------------------

    def __reduce__(self) -> tuple[Any, ...]:
        # Cached hash columns and row-view lists are derived data: the
        # receiving side (a ProcessExecutor worker) recomputes its slice
        # locally — in parallel — so pickling ships only the defining
        # columns.
        return (EventBatch, (self.items, self.sites, self.slots))

    def __len__(self) -> int:
        return self.items.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventBatch):
            return NotImplemented

        def column_eq(a: Optional[IntColumn], b: Optional[IntColumn]) -> bool:
            if a is None or b is None:
                return a is None and b is None
            return bool(np.array_equal(a, b))

        return (
            column_eq(self.items, other.items)
            and column_eq(self.sites, other.sites)
            and column_eq(self.slots, other.slots)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventBatch(n={self.items.size}, "
            f"sites={'yes' if self.sites is not None else 'no'}, "
            f"slots={'yes' if self.slots is not None else 'no'})"
        )
