"""Centralized reference samplers — the correctness oracles.

A single-machine bottom-s sketch over the union stream defines *exactly*
the sample the distributed protocols must reproduce (given the same hash
function, the bottom-s of the union is deterministic).  The differential
tests drive a distributed system and a centralized oracle with the same
stream and assert the samples are identical at every step.

:class:`CentralizedWindowSampler` is the sliding-window analogue: it keeps
the full live window multiset (no pruning — it is an oracle, not an
algorithm) and answers bottom-s over live distinct elements.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from ..errors import ConfigurationError
from ..hashing.unit import UnitHasher
from ..structures.bottomk import BottomK

__all__ = ["CentralizedDistinctSampler", "CentralizedWindowSampler"]


class CentralizedDistinctSampler:
    """Single-stream bottom-s distinct sampler (Gibbons-style sketch).

    Args:
        sample_size: Sample size s.
        hasher: Hash function (must be shared with any system this oracle
            is compared against).
    """

    __slots__ = ("hasher", "sample_store", "elements_seen")

    def __init__(self, sample_size: int, hasher: UnitHasher) -> None:
        self.hasher = hasher
        self.sample_store = BottomK(sample_size)
        self.elements_seen = 0

    def observe(self, element: Any) -> None:
        """Process one stream element."""
        self.elements_seen += 1
        self.sample_store.offer(self.hasher.unit(element), element)

    def observe_hashed(self, element: Any, h: float) -> None:
        """Fast path with a precomputed hash."""
        self.elements_seen += 1
        self.sample_store.offer(h, element)

    def sample(self) -> list[Any]:
        """The bottom-s distinct sample, ascending by hash."""
        return self.sample_store.elements()

    def sample_pairs(self) -> list[tuple[float, Any]]:
        """``(hash, element)`` pairs, ascending by hash."""
        return self.sample_store.pairs()

    @property
    def threshold(self) -> float:
        """The s-th smallest hash seen so far (1.0 while under-full)."""
        return self.sample_store.threshold()

    @property
    def sample_size(self) -> int:
        """Configured sample size s."""
        return self.sample_store.capacity


class CentralizedWindowSampler:
    """Oracle for sliding windows: exact bottom-s over the live window.

    Memory is O(window) by design — this is the *specification*, not a
    competitive algorithm.

    Args:
        window: Window size w in slots.
        sample_size: Sample size s.
        hasher: Shared hash function.
    """

    __slots__ = ("window", "sample_size", "hasher", "_last_seen", "_now")

    def __init__(self, window: int, sample_size: int, hasher: UnitHasher) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.window = window
        self.sample_size = sample_size
        self.hasher = hasher
        self._last_seen: OrderedDict[Any, int] = OrderedDict()
        self._now = 0

    def observe(self, element: Any, now: int) -> None:
        """Record an arrival at slot ``now``."""
        self._now = max(self._now, now)
        # Move-to-end keeps the dict ordered by most-recent occurrence.
        if element in self._last_seen:
            del self._last_seen[element]
        self._last_seen[element] = now

    def advance(self, now: int) -> None:
        """Advance time without arrivals."""
        self._now = max(self._now, now)

    def _evict(self) -> None:
        horizon = self._now - self.window
        while self._last_seen:
            element, seen = next(iter(self._last_seen.items()))
            if seen > horizon:
                break
            del self._last_seen[element]

    def live_elements(self) -> list[Any]:
        """All distinct elements live in the current window."""
        self._evict()
        return list(self._last_seen)

    def sample(self) -> list[Any]:
        """Bottom-s over live distinct elements, ascending by hash."""
        self._evict()
        # Deliberately brute-force: this is the reference oracle the
        # differential tests trust, not a serving path.
        scored = sorted(  # repro-lint: disable=RPR008
            (self.hasher.unit(element), element) for element in self._last_seen
        )
        return [element for _, element in scored[: self.sample_size]]

    def min_element(self) -> Optional[Any]:
        """The live element with the smallest hash, or None."""
        members = self.sample()
        return members[0] if members else None
