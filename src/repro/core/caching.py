"""Duplicate-suppressing sites — fixing the s > 1 repeat cost.

Reproduction finding (see :mod:`repro.core.infinite`): with sample size
``s > 1``, Algorithms 1–2 as written re-report every occurrence of an
element whose hash sits strictly below the threshold — typically an
element already *in* the sample.  A site's single float of state cannot
distinguish "would enter the sample" from "already in it", so on
duplicate-heavy streams (the realistic case: OC48 has ~10 occurrences per
distinct flow) the message count carries an extra
``Θ(n·s/d)``-ish term the paper's analysis does not account for.

The minimal repair trades a little site memory for those messages: each
site keeps a bounded LRU set of elements it has recently reported.  A
repeat occurrence found in the cache is provably redundant — the
coordinator has already either sampled that element (dedup on arrival,
Algorithm 2 line 5) or rejected it with a threshold the site has since
adopted — so suppressing the report never changes the coordinator's
state, and the sample remains *exactly* the bottom-s of the union (the
differential tests check this against the oracle).

With ``cache_size = s`` the repeat cost disappears for stationary
streams; the ``ablation_cache`` experiment quantifies the savings curve.
Setting ``cache_size = 0`` reproduces the paper's exact behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology
from .infinite import BottomSFacadeBase, InfiniteWindowCoordinator
from .protocol import SamplerConfig, revive_element

__all__ = ["CachingSite", "CachingSamplerSystem"]


class CachingSite:
    """Algorithm 1 plus a bounded LRU of recently reported elements.

    Args:
        site_id: Network address.
        hasher: Shared hash function.
        cache_size: Maximum elements remembered (0 = paper behaviour).

    Raises:
        ConfigurationError: If ``cache_size < 0``.
    """

    __slots__ = ("site_id", "hasher", "u_local", "cache_size", "_cache",
                 "suppressed")

    def __init__(self, site_id: int, hasher: UnitHasher, cache_size: int) -> None:
        if cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self.site_id = site_id
        self.hasher = hasher
        self.u_local = 1.0
        self.cache_size = cache_size
        self._cache: OrderedDict[Any, None] = OrderedDict()
        self.suppressed = 0

    def observe(self, element: Any, network: Network) -> None:
        """Process one local stream element."""
        self.observe_hashed(element, self.hasher.unit(element), network)

    def observe_hashed(self, element: Any, h: float, network: Network) -> None:
        """Fast path with a precomputed hash."""
        if h >= self.u_local:
            return
        if self.cache_size:
            cache = self._cache
            if element in cache:
                cache.move_to_end(element)
                self.suppressed += 1
                return
            cache[element] = None
            if len(cache) > self.cache_size:
                cache.popitem(last=False)
        network.send(
            self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
        )

    def handle_message(self, message: Message, network: Network) -> None:
        """Adopt the refreshed threshold."""
        if message.kind is not MessageKind.THRESHOLD:
            raise ProtocolError(
                f"caching site {self.site_id} cannot handle {message.kind!r}"
            )
        self.u_local = message.payload


class CachingSamplerSystem(BottomSFacadeBase):
    """Facade: infinite-window sampling with duplicate-suppressing sites.

    Behaviourally identical to
    :class:`~repro.core.infinite.DistinctSamplerSystem` — the coordinator's
    sample is the exact bottom-s of the union at all times — but cheaper on
    duplicate-heavy streams.

    Args:
        num_sites: Number of sites k.
        sample_size: Sample size s.
        cache_size: Per-site LRU capacity (``s`` is a good default;
            0 reproduces the paper's algorithm exactly).
        seed: Hash seed (ignored if ``hasher`` given).
        algorithm: Hash algorithm name.
        hasher: Optional shared pre-built hasher.
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        cache_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self.cache_size = cache_size
        self._init_runtime(
            Topology.build(
                coordinator=InfiniteWindowCoordinator(sample_size),
                site_factory=lambda i: CachingSite(i, self.hasher, cache_size),
                num_sites=num_sites,
            )
        )

    @property
    def total_suppressed(self) -> int:
        """Reports suppressed by the caches across all sites."""
        return sum(site.suppressed for site in self.sites)

    def _per_site_memory(self) -> list[int]:
        """One threshold float plus the LRU cache contents per site."""
        return [1 + len(site._cache) for site in self.sites]

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="caching",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
            cache_size=self.cache_size,
        )

    def _state(self) -> dict[str, Any]:
        return {
            "sample": self._sample_rows(),
            "reports_received": self.coordinator.reports_received,
            "reports_accepted": self.coordinator.reports_accepted,
            "sites": [
                {
                    "u_local": site.u_local,
                    "cache": list(site._cache),
                    "suppressed": site.suppressed,
                }
                for site in self.sites
            ],
        }

    def _load(self, state: dict[str, Any]) -> None:
        self._load_sample_rows(state["sample"])
        self.coordinator.reports_received = int(state["reports_received"])
        self.coordinator.reports_accepted = int(state["reports_accepted"])
        for site, site_state in zip(self.sites, state["sites"]):
            site.u_local = float(site_state["u_local"])
            site._cache.clear()
            for element in site_state["cache"]:
                site._cache[revive_element(element)] = None
            site.suppressed = int(site_state["suppressed"])
