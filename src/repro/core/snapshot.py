"""Checkpoint / restore for **any** registered sampler variant.

Production deployments of a continuous monitor need to survive
coordinator restarts.  With the unified protocol this is variant-agnostic:
every :class:`~repro.core.protocol.Sampler` exposes its construction
recipe (:attr:`~repro.core.protocol.Sampler.config`) and its full logical
state (:meth:`~repro.core.protocol.Sampler.state_dict` /
:meth:`~repro.core.protocol.Sampler.load_state`), so :func:`snapshot`
and :func:`restore` work for the infinite-window system, all three
sliding-window systems, the with-replacement samplers, and the
broadcast/caching baselines alike — and for any variant registered later
via :func:`repro.core.api.register_variant`.

A restored sampler is indistinguishable from the original: ``sample()``
and ``stats()`` (including message counters) round-trip exactly, modulo
in-flight messages lost with the crash.

The snapshot is a plain JSON-serializable dict: no pickle, safe to store.
Version-1 snapshots (infinite-window only, written by earlier releases)
are still read.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from .api import make_sampler
from .infinite import DistinctSamplerSystem
from .protocol import Sampler, SamplerConfig, revive_element

__all__ = ["snapshot", "restore", "SNAPSHOT_VERSION"]

#: Format version written into every snapshot.
SNAPSHOT_VERSION = 2


def snapshot(sampler: Sampler) -> dict[str, Any]:
    """Capture the full logical state of any registered sampler.

    Args:
        sampler: The sampler to checkpoint (can keep running afterwards).

    Returns:
        A JSON-serializable dict.  Elements are stored as-is; they must
        themselves be JSON-friendly (int/str/tuple) for on-disk storage,
        or the caller may serialize the dict with a richer codec.
    """
    if not isinstance(sampler, Sampler):
        raise ConfigurationError(
            f"cannot snapshot {type(sampler).__name__}: not a Sampler"
        )
    return {
        "version": SNAPSHOT_VERSION,
        "config": sampler.config.to_dict(),
        "state": sampler.state_dict(),
    }


def restore(state: dict[str, Any]) -> Sampler:
    """Rebuild a sampler from a :func:`snapshot` dict.

    Args:
        state: A snapshot produced by :func:`snapshot` (version 2) or by
            an earlier release (version 1, infinite-window only).

    Returns:
        A fresh sampler of the snapshotted variant holding the
        checkpointed sample, thresholds, and cost counters.

    Raises:
        ConfigurationError: If the snapshot is malformed or from an
            unsupported version.
    """
    try:
        version = state["version"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed snapshot: {exc}") from exc
    if version == 1:
        return _restore_v1(state)
    if version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {version}; "
            f"this build reads versions 1 and {SNAPSHOT_VERSION}"
        )
    try:
        config_dict = dict(state["config"])
        sampler_state = state["state"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed snapshot: {exc}") from exc
    try:
        config = SamplerConfig(**config_dict)
    except TypeError as exc:
        raise ConfigurationError(f"malformed snapshot config: {exc}") from exc
    sampler = make_sampler(config)
    sampler.load_state(sampler_state)
    return sampler


def _restore_v1(state: dict[str, Any]) -> DistinctSamplerSystem:
    """Read the legacy infinite-window-only snapshot layout."""
    try:
        num_sites = state["num_sites"]
        sample_size = state["sample_size"]
        seed = state["hash_seed"]
        algorithm = state["hash_algorithm"]
        sample = state["sample"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed snapshot: {exc}") from exc
    system = make_sampler(
        "infinite",
        num_sites=num_sites,
        sample_size=sample_size,
        seed=seed,
        algorithm=algorithm,
    )
    store = system.coordinator.sample_store
    for h, element in sample:
        accepted, _ = store.offer(float(h), revive_element(element))
        if not accepted:
            raise ConfigurationError(
                "snapshot sample contains duplicates or unsorted entries"
            )
    threshold = store.threshold()
    for site in system.sites:
        site.u_local = threshold
    return system
