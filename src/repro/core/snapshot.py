"""Checkpoint / restore for the infinite-window system.

Production deployments of a continuous monitor need to survive
coordinator restarts.  The infinite-window protocol makes this cheap:
the *entire* global state is the coordinator's ``(hash, element)``
bottom-s plus each site's scalar threshold — and the site thresholds are
soft state (any value ≥ the true ``u`` is safe; sites re-learn the exact
threshold on their next report).

:func:`snapshot` captures the coordinator's sample and threshold;
:func:`restore` rebuilds a working system around it.  Restored sites
start with ``u_i = u`` (the checkpointed threshold), which is exact —
messages after restore are what they would have been, modulo the
in-flight reports lost with the crash.

The snapshot is a plain JSON-serializable dict: no pickle, safe to store.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..hashing.unit import UnitHasher
from .infinite import DistinctSamplerSystem

__all__ = ["snapshot", "restore", "SNAPSHOT_VERSION"]

#: Format version written into every snapshot.
SNAPSHOT_VERSION = 1


def snapshot(system: DistinctSamplerSystem) -> dict[str, Any]:
    """Capture the full logical state of an infinite-window system.

    Args:
        system: The system to checkpoint (can keep running afterwards).

    Returns:
        A JSON-serializable dict.  Elements are stored as-is; they must
        themselves be JSON-friendly (int/str) for on-disk storage, or the
        caller may serialize the dict with a richer codec.
    """
    return {
        "version": SNAPSHOT_VERSION,
        "num_sites": system.num_sites,
        "sample_size": system.sample_size,
        "hash_seed": system.hasher.seed,
        "hash_algorithm": system.hasher.algorithm,
        "sample": [[h, element] for h, element in system.sample_pairs()],
        "messages_so_far": system.total_messages,
    }


def restore(state: dict[str, Any]) -> DistinctSamplerSystem:
    """Rebuild a system from a :func:`snapshot` dict.

    Args:
        state: A snapshot produced by :func:`snapshot`.

    Returns:
        A fresh :class:`~repro.core.infinite.DistinctSamplerSystem` whose
        coordinator holds the checkpointed sample and whose sites start
        from the checkpointed threshold.  Message counters restart at
        zero (the pre-crash count is in ``state["messages_so_far"]``).

    Raises:
        ConfigurationError: If the snapshot is malformed or from an
            unsupported version.
    """
    try:
        version = state["version"]
        num_sites = state["num_sites"]
        sample_size = state["sample_size"]
        seed = state["hash_seed"]
        algorithm = state["hash_algorithm"]
        sample = state["sample"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed snapshot: {exc}") from exc
    if version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {version}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    system = DistinctSamplerSystem(
        num_sites=num_sites,
        sample_size=sample_size,
        hasher=UnitHasher(seed, algorithm),
    )
    store = system.coordinator.sample_store
    for h, element in sample:
        accepted, _ = store.offer(float(h), _revive(element))
        if not accepted:
            raise ConfigurationError(
                "snapshot sample contains duplicates or unsorted entries"
            )
    threshold = store.threshold()
    for site in system.sites:
        site.u_local = threshold
    return system


def _revive(element: Any) -> Any:
    """JSON round-trips tuples into lists; undo that for tuple elements."""
    if isinstance(element, list):
        return tuple(_revive(item) for item in element)
    return element
