"""Reductions between with- and without-replacement distinct samples.

The paper's Section 3.1 closes with two observations we make executable:

* A without-replacement sample *of a larger size* yields a
  with-replacement sample: draw ``s`` members independently (with
  repetition) from a without-replacement sample of size ``s' >= s`` —
  each draw is uniform over the distinct population **conditioned on the
  retained set**, which is itself uniform, so the composition is a valid
  with-replacement sample as long as ``s' >= s`` gives enough variety.
  (Exactness requires drawing from the *whole* population; conditioning
  on a uniform subset of size ``s'`` is exchangeable, hence uniform.)

* A with-replacement sample of size slightly above ``s`` yields a
  without-replacement sample of size ``s``: deduplicate the draws and
  keep the first ``s`` distinct values — uniform by exchangeability.
  :func:`without_replacement_needed` computes (via the birthday/coupon
  bound) how many with-replacement draws make that succeed with
  probability ``1 − delta``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from ..errors import EstimationError

__all__ = [
    "with_replacement_from_without",
    "without_replacement_from_with",
    "without_replacement_needed",
]


def with_replacement_from_without(
    sample: Sequence[Any], draws: int, rng: np.random.Generator
) -> list[Any]:
    """Derive ``draws`` with-replacement draws from a without-replacement
    distinct sample.

    Args:
        sample: A uniform without-replacement distinct sample (its size
            bounds the variety available; use ``len(sample) >= draws``
            for full fidelity).
        draws: Number of independent draws wanted.
        rng: Randomness for the resampling.

    Returns:
        ``draws`` elements, each uniform over the distinct population.

    Raises:
        EstimationError: If the source sample is empty.
    """
    if len(sample) == 0:
        raise EstimationError("cannot resample from an empty sample")
    indices = rng.integers(0, len(sample), size=draws)
    return [sample[int(i)] for i in indices]


def without_replacement_from_with(
    draws: Sequence[Any], sample_size: int
) -> list[Any]:
    """Derive a without-replacement sample from with-replacement draws.

    Deduplicates in draw order and keeps the first ``sample_size``
    distinct values — uniform over distinct-subsets by exchangeability.

    Args:
        draws: Independent uniform draws (with repetition possible).
        sample_size: Desired without-replacement size s.

    Returns:
        The first ``sample_size`` distinct draws.

    Raises:
        EstimationError: If the draws contain fewer than ``sample_size``
            distinct values (caller should have drawn more; see
            :func:`without_replacement_needed`).
    """
    seen: dict[Any, None] = {}
    for draw in draws:
        if draw not in seen:
            seen[draw] = None
            if len(seen) == sample_size:
                return list(seen)
    raise EstimationError(
        f"only {len(seen)} distinct values among {len(draws)} draws; "
        f"needed {sample_size} — draw more copies "
        "(see without_replacement_needed)"
    )


def without_replacement_needed(
    sample_size: int, population: int, delta: float = 0.01
) -> int:
    """How many with-replacement draws guarantee ``sample_size`` distinct
    values with probability at least ``1 − delta``.

    Uses the coupon-collector tail: after ``m`` uniform draws from a
    population of ``d``, the expected shortfall below ``s`` distinct is at
    most ``s·exp(−m·(d−s)/(d·s))``-ish; we use the standard union bound
    ``m = ceil( s + d·ln(s/delta)·s/(d−s+1) )`` simplified conservatively.

    Args:
        sample_size: Desired distinct count s.
        population: Distinct population size d (s <= d).
        delta: Allowed failure probability.

    Returns:
        A sufficient number of draws m.

    Raises:
        EstimationError: If ``sample_size > population``.
    """
    if sample_size > population:
        raise EstimationError(
            f"cannot collect {sample_size} distinct from a population of "
            f"{population}"
        )
    if sample_size == population:
        # Full coupon collection: d·(H_d + ln(1/delta)) draws suffice.
        d = population
        return math.ceil(d * (math.log(d) + 1 + math.log(1.0 / delta)))
    # While fewer than s of d coupons are held, each draw is fresh with
    # probability >= (d - s + 1)/d; a Chernoff-ish inflation covers delta.
    p_fresh = (population - sample_size + 1) / population
    base = sample_size / p_fresh
    slack = 3.0 * math.sqrt(base * math.log(1.0 / delta)) + math.log(1.0 / delta)
    return math.ceil(base + slack)
