"""Algorithm Broadcast — the eager-synchronization baseline (Section 5.2).

The only difference from Algorithms 1–2 is the feedback policy: instead of
lazily refreshing a single site's threshold in reply to its report, the
coordinator *broadcasts* the new global threshold ``u`` to **all** ``k``
sites every time ``u`` changes.  Site views are then always exact
(``u_i == u``), so sites never send a report the coordinator would reject
on threshold grounds — but each sample change costs ``k`` messages, which
the paper shows is far more expensive overall ("typically it is not worth
keeping the different sites synchronized with respect to the value of u").
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..structures.bottomk import BottomK
from .protocol import Sampler, SampleResult, SamplerConfig, revive_element

__all__ = [
    "BroadcastSite",
    "BroadcastCoordinator",
    "BroadcastSamplerSystem",
]


class BroadcastSite:
    """Site protocol under eager synchronization.

    Identical trigger to Algorithm 1 (report iff ``h(e) < u_i``) but the
    threshold is updated by coordinator broadcasts rather than replies.
    """

    __slots__ = ("site_id", "hasher", "u_local")

    def __init__(self, site_id: int, hasher: UnitHasher) -> None:
        self.site_id = site_id
        self.hasher = hasher
        self.u_local = 1.0

    def observe(self, element: Any, network: Network) -> None:
        """Process one local stream element (hashes internally)."""
        h = self.hasher.unit(element)
        if h < self.u_local:
            network.send(
                self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
            )

    def observe_hashed(self, element: Any, h: float, network: Network) -> None:
        """Fast path with a precomputed hash."""
        if h < self.u_local:
            network.send(
                self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
            )

    def handle_message(self, message: Message, network: Network) -> None:
        """Adopt a broadcast threshold."""
        if message.kind is not MessageKind.BROADCAST:
            raise ProtocolError(
                f"broadcast site {self.site_id} cannot handle {message.kind!r}"
            )
        self.u_local = message.payload


class BroadcastCoordinator:
    """Coordinator that broadcasts ``u`` to all sites whenever it changes."""

    __slots__ = ("sample_store", "site_ids", "reports_received", "broadcasts_sent")

    def __init__(self, sample_size: int, site_ids: list[int]) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_store = BottomK(sample_size)
        self.site_ids = list(site_ids)
        self.reports_received = 0
        self.broadcasts_sent = 0

    @property
    def threshold(self) -> float:
        """Current global threshold u."""
        return self.sample_store.threshold()

    def handle_message(self, message: Message, network: Network) -> None:
        """Absorb a report; broadcast iff the threshold changed."""
        if message.kind is not MessageKind.REPORT:
            raise ProtocolError(f"coordinator cannot handle {message.kind!r}")
        element, h, _site_id = message.payload
        self.reports_received += 1
        before = self.sample_store.threshold()
        self.sample_store.offer(h, element)
        after = self.sample_store.threshold()
        if after != before:
            self.broadcasts_sent += 1
            network.broadcast(
                COORDINATOR, self.site_ids, MessageKind.BROADCAST, after
            )

    def sample(self) -> list[Any]:
        """The current distinct sample, ascending by hash."""
        return self.sample_store.elements()


class BroadcastSamplerSystem(Sampler):
    """Facade for Algorithm Broadcast, mirroring
    :class:`~repro.core.infinite.DistinctSamplerSystem`.

    Args:
        num_sites: Number of sites k.
        sample_size: Sample size s.
        seed: Hash seed (ignored if ``hasher`` given).
        algorithm: Hash algorithm name.
        hasher: Optional shared pre-built hasher.
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self.network = Network()
        self.sites = [BroadcastSite(i, self.hasher) for i in range(num_sites)]
        self.coordinator = BroadcastCoordinator(
            sample_size, [site.site_id for site in self.sites]
        )
        self.network.register(COORDINATOR, self.coordinator)
        for site in self.sites:
            self.network.register(site.site_id, site)
        self._init_protocol()

    def _deliver(self, site_id: int, element: Any) -> None:
        """Deliver ``element`` to site ``site_id`` (protocol hook)."""
        self.sites[site_id].observe(element, self.network)

    def observe_hashed(self, site_id: int, element: Any, h: float) -> None:
        """Fast path with a precomputed hash."""
        self.sites[site_id].observe_hashed(element, h, self.network)

    def flood_hashed(self, element: Any, h: float) -> None:
        """Deliver a pre-hashed element to every site."""
        network = self.network
        for site in self.sites:
            site.observe_hashed(element, h, network)

    def sample(self) -> SampleResult:
        """The coordinator's current distinct sample."""
        pairs = tuple(self.coordinator.sample_store.pairs())
        return SampleResult(
            items=tuple(element for _, element in pairs),
            pairs=pairs,
            threshold=self.coordinator.threshold,
            sample_size=self.sample_size,
            window=None,
            slot=self.current_slot,
        )

    @property
    def threshold(self) -> float:
        """The coordinator's current threshold u."""
        return self.coordinator.threshold

    @property
    def sample_size(self) -> int:
        """Configured sample size s."""
        return self.coordinator.sample_store.capacity

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="broadcast",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
        )

    def _state(self) -> dict[str, Any]:
        return {
            "sample": [
                [h, element]
                for h, element in self.coordinator.sample_store.pairs()
            ],
            "site_thresholds": [site.u_local for site in self.sites],
            "reports_received": self.coordinator.reports_received,
            "broadcasts_sent": self.coordinator.broadcasts_sent,
        }

    def _load(self, state: dict[str, Any]) -> None:
        store = self.coordinator.sample_store
        store.clear()
        for h, element in state["sample"]:
            accepted, _ = store.offer(float(h), revive_element(element))
            if not accepted:
                raise ConfigurationError(
                    "snapshot sample contains duplicates or unsorted entries"
                )
        for site, u in zip(self.sites, state["site_thresholds"]):
            site.u_local = float(u)
        self.coordinator.reports_received = int(state["reports_received"])
        self.coordinator.broadcasts_sent = int(state["broadcasts_sent"])
