"""Algorithm Broadcast — the eager-synchronization baseline (Section 5.2).

The only difference from Algorithms 1–2 is the feedback policy: instead of
lazily refreshing a single site's threshold in reply to its report, the
coordinator *broadcasts* the new global threshold ``u`` to **all** ``k``
sites every time ``u`` changes.  Site views are then always exact
(``u_i == u``), so sites never send a report the coordinator would reject
on threshold grounds — but each sample change costs ``k`` messages, which
the paper shows is far more expensive overall ("typically it is not worth
keeping the different sites synchronized with respect to the value of u").
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology
from ..structures.bottomk import BottomK
from .infinite import BottomSFacadeBase
from .protocol import SamplerConfig

__all__ = [
    "BroadcastSite",
    "BroadcastCoordinator",
    "BroadcastSamplerSystem",
]


class BroadcastSite:
    """Site protocol under eager synchronization.

    Identical trigger to Algorithm 1 (report iff ``h(e) < u_i``) but the
    threshold is updated by coordinator broadcasts rather than replies.
    """

    __slots__ = ("site_id", "hasher", "u_local")

    def __init__(self, site_id: int, hasher: UnitHasher) -> None:
        self.site_id = site_id
        self.hasher = hasher
        self.u_local = 1.0

    def observe(self, element: Any, network: Network) -> None:
        """Process one local stream element (hashes internally)."""
        h = self.hasher.unit(element)
        if h < self.u_local:
            network.send(
                self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
            )

    def observe_hashed(self, element: Any, h: float, network: Network) -> None:
        """Fast path with a precomputed hash."""
        if h < self.u_local:
            network.send(
                self.site_id, COORDINATOR, MessageKind.REPORT, (element, h, self.site_id)
            )

    def handle_message(self, message: Message, network: Network) -> None:
        """Adopt a broadcast threshold."""
        if message.kind is not MessageKind.BROADCAST:
            raise ProtocolError(
                f"broadcast site {self.site_id} cannot handle {message.kind!r}"
            )
        self.u_local = message.payload


class BroadcastCoordinator:
    """Coordinator that broadcasts ``u`` to all sites whenever it changes."""

    __slots__ = ("sample_store", "site_ids", "reports_received", "broadcasts_sent")

    def __init__(self, sample_size: int, site_ids: list[int]) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_store = BottomK(sample_size)
        self.site_ids = list(site_ids)
        self.reports_received = 0
        self.broadcasts_sent = 0

    @property
    def threshold(self) -> float:
        """Current global threshold u."""
        return self.sample_store.threshold()

    def handle_message(self, message: Message, network: Network) -> None:
        """Absorb a report; broadcast iff the threshold changed."""
        if message.kind is not MessageKind.REPORT:
            raise ProtocolError(f"coordinator cannot handle {message.kind!r}")
        element, h, _site_id = message.payload
        self.reports_received += 1
        before = self.sample_store.threshold()
        self.sample_store.offer(h, element)
        after = self.sample_store.threshold()
        if after != before:
            self.broadcasts_sent += 1
            network.broadcast(
                COORDINATOR, self.site_ids, MessageKind.BROADCAST, after
            )

    def sample(self) -> list[Any]:
        """The current distinct sample, ascending by hash."""
        return self.sample_store.elements()


class BroadcastSamplerSystem(BottomSFacadeBase):
    """Facade for Algorithm Broadcast, mirroring
    :class:`~repro.core.infinite.DistinctSamplerSystem`.

    Args:
        num_sites: Number of sites k.
        sample_size: Sample size s.
        seed: Hash seed (ignored if ``hasher`` given).
        algorithm: Hash algorithm name.
        hasher: Optional shared pre-built hasher.
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: int = 0,
        algorithm: str = "murmur2",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self._init_runtime(
            Topology.build(
                coordinator=BroadcastCoordinator(
                    sample_size, list(range(num_sites))
                ),
                site_factory=lambda i: BroadcastSite(i, self.hasher),
                num_sites=num_sites,
            )
        )

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="broadcast",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
        )

    def _state(self) -> dict[str, Any]:
        return {
            "sample": self._sample_rows(),
            "site_thresholds": [site.u_local for site in self.sites],
            "reports_received": self.coordinator.reports_received,
            "broadcasts_sent": self.coordinator.broadcasts_sent,
        }

    def _load(self, state: dict[str, Any]) -> None:
        self._load_sample_rows(state["sample"])
        for site, u in zip(self.sites, state["site_thresholds"]):
            site.u_local = float(u)
        self.coordinator.reports_received = int(state["reports_received"])
        self.coordinator.broadcasts_sent = int(state["broadcasts_sent"])
