"""The paper's core contribution: distributed distinct sampling protocols."""

from .api import (
    SHARDABLE_VARIANTS,
    SamplerVariant,
    get_variant,
    infinite_window_sampler,
    make_sampler,
    register_sharded_variant,
    register_variant,
    sampler_variants,
    sliding_window_sampler,
    with_replacement_sampler,
)
from .events import EventBatch
from .protocol import Sampler, SampleResult, SamplerConfig, SamplerStats
from .broadcast import BroadcastCoordinator, BroadcastSamplerSystem, BroadcastSite
from .caching import CachingSamplerSystem, CachingSite
from .centralized import CentralizedDistinctSampler, CentralizedWindowSampler
from .infinite import (
    DistinctSamplerSystem,
    InfiniteWindowCoordinator,
    InfiniteWindowSite,
)
from .reductions import (
    with_replacement_from_without,
    without_replacement_from_with,
    without_replacement_needed,
)
from .snapshot import restore, snapshot
from .sliding import SlidingWindowCoordinator, SlidingWindowSite, SlidingWindowSystem
from .sliding_feedback import (
    FeedbackBottomSCoordinator,
    FeedbackBottomSSite,
    SlidingWindowBottomSFeedback,
)
from .sliding_general import LocalPushCoordinator, LocalPushSite, SlidingWindowBottomS
from .with_replacement import SlidingWindowWithReplacement, WithReplacementSampler

__all__ = [
    "EventBatch",
    "Sampler",
    "SampleResult",
    "SamplerConfig",
    "SamplerStats",
    "SamplerVariant",
    "SHARDABLE_VARIANTS",
    "make_sampler",
    "register_variant",
    "register_sharded_variant",
    "sampler_variants",
    "get_variant",
    "infinite_window_sampler",
    "sliding_window_sampler",
    "with_replacement_sampler",
    "DistinctSamplerSystem",
    "InfiniteWindowSite",
    "InfiniteWindowCoordinator",
    "BroadcastSamplerSystem",
    "BroadcastSite",
    "BroadcastCoordinator",
    "CachingSamplerSystem",
    "CachingSite",
    "SlidingWindowSystem",
    "SlidingWindowSite",
    "SlidingWindowCoordinator",
    "SlidingWindowBottomS",
    "LocalPushSite",
    "LocalPushCoordinator",
    "SlidingWindowBottomSFeedback",
    "FeedbackBottomSSite",
    "FeedbackBottomSCoordinator",
    "WithReplacementSampler",
    "SlidingWindowWithReplacement",
    "CentralizedDistinctSampler",
    "CentralizedWindowSampler",
    "snapshot",
    "restore",
    "with_replacement_from_without",
    "without_replacement_from_with",
    "without_replacement_needed",
]
