"""General-s sliding-window sampling with lazy feedback.

The full generalization of Algorithms 3–4 to sample size ``s >= 1``,
combining the two devices this package already has:

* every node (sites *and* the coordinator) maintains an **s-dominance
  set** of live candidates;
* the coordinator's replies carry a *threshold with an expiry*:
  ``u`` = the s-th smallest live hash it knows (1.0 while it knows fewer
  than ``s``), valid until ``t_u`` = the earliest expiry among its
  current bottom-s — the first moment the threshold could *rise*.

Protocol:

* **Site, arrival ``e`` at slot ``t``:** refresh ``(e, t+w)`` in ``T_i``;
  report ``(e, h(e), t+w)`` iff ``h(e) < u_i``.
* **Coordinator, report:** merge into its candidate set, then reply
  ``(u, t_u)``.
* **Site, slot boundary:** if ``t_i <= now`` (threshold validity
  expired), push its **entire local bottom-s** (up to ``s`` reports —
  each a constant-size message, counted individually) and adopt the last
  reply.

Correctness (checked against a brute-force oracle every slot): suppose
``g`` is in the true global bottom-s at slot ``t`` and lives at site
``j``.  If ``h(g) >= u_j`` with ``t_j > t``, then the coordinator
bottom-s that produced ``(u_j, t_j)`` consists of ``s`` elements, each
with hash ``<= u_j <= h(g)`` and expiry ``>= t_j > t`` — i.e. ``s`` live
elements all hashing below ``g``, contradicting ``g``'s membership.  So
either ``g`` cleared the threshold when it (last) arrived and was
reported fresh, or site ``j``'s validity lapsed by ``t`` and its
fallback pushed its local bottom-s, which provably contains ``g``
(s-dominance cannot evict a global bottom-s member).  Either way the
coordinator knows ``g`` with a current expiry.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher, unit_hash_batch
from ..netsim.clock import SlotClock
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology
from ..structures.dominance import DominanceEntry, SortedDominanceSet
from .events import EventBatch
from .protocol import (
    Sampler,
    SampleResult,
    SamplerConfig,
    decode_expiry,
    encode_expiry,
    iter_event_runs,
    revive_element,
)

__all__ = [
    "FeedbackBottomSSite",
    "FeedbackBottomSCoordinator",
    "SlidingWindowBottomSFeedback",
]

_INF = math.inf


class FeedbackBottomSSite:
    """Per-site protocol: s-dominance candidates + expiring threshold."""

    __slots__ = (
        "site_id",
        "hasher",
        "window",
        "sample_size",
        "candidates",
        "u_local",
        "valid_until",
        "reports_sent",
        "fallbacks",
    )

    def __init__(
        self, site_id: int, hasher: UnitHasher, window: int, sample_size: int
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.site_id = site_id
        self.hasher = hasher
        self.window = window
        self.sample_size = sample_size
        self.candidates = SortedDominanceSet(sample_size)
        self.u_local = 1.0
        self.valid_until: float = _INF
        self.reports_sent = 0
        self.fallbacks = 0

    @property
    def memory_size(self) -> int:
        """Current candidate-set size |T_i|."""
        return len(self.candidates)

    def tick(self, now: int, network: Network) -> None:
        """Slot boundary: on threshold lapse, push the local bottom-s."""
        if self.valid_until > now:
            return
        self.fallbacks += 1
        self.candidates.expire(now)
        bottom = self.candidates.bottom(self.sample_size)
        if not bottom:
            self.u_local = 1.0
            self.valid_until = _INF
            return
        # Each push is answered; the last reply leaves the freshest
        # (u, t_u).  Conservatively reset the threshold first so replies
        # rule.
        self.u_local = 1.0
        self.valid_until = _INF
        for entry in bottom:
            self.reports_sent += 1
            network.send(
                self.site_id,
                COORDINATOR,
                MessageKind.SW_REPORT,
                (entry.element, entry.hash, entry.expiry, self.site_id),
            )

    def observe(self, element: Any, now: int, network: Network) -> None:
        """Process an arrival in slot ``now``."""
        self.observe_hashed(element, self.hasher.unit(element), now, network)

    def observe_hashed(
        self, element: Any, h: float, now: int, network: Network
    ) -> None:
        """Fast path: arrival with a precomputed hash."""
        expiry = now + self.window
        self.candidates.expire(now)
        self.candidates.observe(element, expiry, h)
        if h < self.u_local:
            self.reports_sent += 1
            network.send(
                self.site_id,
                COORDINATOR,
                MessageKind.SW_REPORT,
                (element, h, expiry, self.site_id),
            )

    def handle_message(self, message: Message, network: Network) -> None:
        """Adopt the coordinator's (threshold, validity) reply."""
        if message.kind is not MessageKind.SW_SAMPLE:
            raise ProtocolError(
                f"feedback site {self.site_id} cannot handle {message.kind!r}"
            )
        u, valid_until = message.payload
        self.u_local = u
        self.valid_until = valid_until


class FeedbackBottomSCoordinator:
    """Coordinator: s-dominance candidate set + expiring threshold replies."""

    __slots__ = ("clock", "sample_size", "candidates", "reports_received")

    def __init__(self, clock: SlotClock, sample_size: int) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.clock = clock
        self.sample_size = sample_size
        self.candidates = SortedDominanceSet(sample_size)
        self.reports_received = 0

    def _threshold(self, now: int) -> tuple[float, float]:
        """Current ``(u, valid_until)`` over live candidates."""
        self.candidates.expire(now)
        bottom = self.candidates.bottom(self.sample_size)
        if len(bottom) < self.sample_size:
            return 1.0, _INF
        u = bottom[-1].hash
        valid_until = min(entry.expiry for entry in bottom)
        return u, valid_until

    def handle_message(self, message: Message, network: Network) -> None:
        """Merge a report; reply with the fresh (u, t_u)."""
        if message.kind is not MessageKind.SW_REPORT:
            raise ProtocolError(f"coordinator cannot handle {message.kind!r}")
        element, h, expiry, site_id = message.payload
        self.reports_received += 1
        now = self.clock.now
        self.candidates.observe(element, expiry, h)
        u, valid_until = self._threshold(now)
        network.send(
            COORDINATOR, site_id, MessageKind.SW_SAMPLE, (u, valid_until)
        )

    def query(self, now: int) -> list[Any]:
        """The window's bottom-s distinct sample, ascending by hash."""
        return [entry.element for entry in self.sample_entries(now)]

    def sample_entries(self, now: int) -> list[DominanceEntry]:
        """The live bottom-s entries at slot ``now``, ascending by hash."""
        self.candidates.expire(now)
        return self.candidates.bottom(self.sample_size)


class SlidingWindowBottomSFeedback(Sampler):
    """Facade: general-s sliding-window sampling with lazy feedback.

    Args:
        num_sites: Number of sites k.
        window: Window size w in slots.
        sample_size: Sample size s (>= 1).
        seed: Hash seed (ignored if ``hasher`` given).
        algorithm: Hash algorithm name.
        hasher: Optional shared pre-built hasher.
    """

    def __init__(
        self,
        num_sites: int,
        window: int,
        sample_size: int = 1,
        seed: int = 0,
        algorithm: str = "murmur2",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self.window = window
        self.sample_size = sample_size
        self.clock = SlotClock(0)
        self._init_runtime(
            Topology.build(
                coordinator=FeedbackBottomSCoordinator(self.clock, sample_size),
                site_factory=lambda i: FeedbackBottomSSite(
                    i, self.hasher, window, sample_size
                ),
                num_sites=num_sites,
            )
        )

    # -- protocol hooks ----------------------------------------------------

    def _advance_to(self, slot: int) -> None:
        """Slot boundary: lapse-triggered fallback pushes at every site."""
        self.clock.advance_to(slot)
        network = self.network
        for site in self.sites:
            site.tick(slot, network)

    def _deliver(self, site_id: int, element: Any) -> None:
        """Deliver an arrival at the current slot."""
        self.sites[site_id].observe(element, self.clock.now, self.network)

    def observe_batch(self, events) -> int:
        """Vectorized batch ingestion (semantics of the generic loop).

        Same-slot runs are bulk-hashed and delivered through the
        precomputed-hash fast path.  Unlike the ``s = 1`` system, repeats
        are *not* dropped: the expiring threshold ``u_i`` can rise within
        a slot (a reply is 1.0 while the coordinator knows fewer than
        ``s`` candidates), so a same-slot repeat may legitimately report
        where its first occurrence did not.
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        events = events if isinstance(events, list) else list(events)
        if not events:
            return 0
        for slot, batch in iter_event_runs(events):
            if slot is not None:
                self.advance(slot)
            self._deliver_batch(batch)
        return len(events)

    def observe_columns(self, batch: EventBatch) -> int:
        """Columnar fast path: cached hash column, no dedup (see above)."""
        batch.require_sites()
        for slot, run in batch.slot_runs():
            if slot is not None:
                self.advance(slot)
            self._deliver_columns(run)
        return len(batch)

    def _deliver_columns(self, run: EventBatch) -> None:
        """Columnar twin of :meth:`_deliver_batch` (repeats kept)."""
        if not len(run):
            return
        hashes = run.hash_column(self.hasher).tolist()
        now = self.clock.now
        network = self.network
        sites = self.sites
        for site_id, item, h in zip(run.sites_list(), run.items_list(), hashes):
            sites[site_id].observe_hashed(item, h, now, network)

    def _deliver_batch(self, batch: list) -> None:
        """Deliver one same-slot run with precomputed hashes."""
        if not batch:
            return
        items = [item for _, item in batch]
        hashes = unit_hash_batch(self.hasher, items)
        now = self.clock.now
        network = self.network
        sites = self.sites
        for (site_id, item), h in zip(batch, hashes):
            sites[site_id].observe_hashed(item, h, now, network)

    def sample(self) -> SampleResult:
        """The current window's bottom-s distinct sample."""
        now = self.clock.now
        entries = self.coordinator.sample_entries(now)
        threshold, _valid_until = self.coordinator._threshold(now)
        return SampleResult(
            items=tuple(entry.element for entry in entries),
            pairs=tuple((entry.hash, entry.element) for entry in entries),
            threshold=threshold,
            sample_size=self.sample_size,
            window=self.window,
            slot=self.current_slot,
        )

    def per_site_memory(self) -> list[int]:
        """Current candidate-set sizes, one per site."""
        return [site.memory_size for site in self.sites]

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="sliding-feedback",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            window=self.window,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
        )

    def _state(self) -> dict[str, Any]:
        return {
            "clock": self.clock.now,
            "coordinator": {
                "reports_received": self.coordinator.reports_received,
                "entries": [
                    [e.element, e.expiry, e.hash]
                    for e in self.coordinator.candidates.entries()
                ],
            },
            "sites": [
                {
                    "entries": [
                        [e.element, e.expiry, e.hash]
                        for e in site.candidates.entries()
                    ],
                    "u_local": site.u_local,
                    "valid_until": encode_expiry(site.valid_until),
                    "reports_sent": site.reports_sent,
                    "fallbacks": site.fallbacks,
                }
                for site in self.sites
            ],
        }

    def _load(self, state: dict[str, Any]) -> None:
        self.clock.advance_to(int(state["clock"]))
        coord_state = state["coordinator"]
        self.coordinator.reports_received = int(coord_state["reports_received"])
        self.coordinator.candidates = SortedDominanceSet(self.sample_size)
        for e, exp, h in coord_state["entries"]:
            self.coordinator.candidates.observe(
                revive_element(e), int(exp), float(h)
            )
        for site, site_state in zip(self.sites, state["sites"]):
            site.candidates = SortedDominanceSet(self.sample_size)
            for e, exp, h in site_state["entries"]:
                site.candidates.observe(revive_element(e), int(exp), float(h))
            site.u_local = float(site_state["u_local"])
            site.valid_until = decode_expiry(site_state["valid_until"])
            site.reports_sent = int(site_state["reports_sent"])
            site.fallbacks = int(site_state["fallbacks"])
