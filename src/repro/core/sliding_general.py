"""Sliding-window distinct sampling for general sample size ``s`` —
the *local-push* protocol.

The paper presents its sliding-window algorithm for ``s = 1`` and notes the
extension to larger samples is straightforward.  This module implements the
generalization along the lines of the paper's "Intuition" paragraph
(Section 4.1): each site continuously tracks its **local bottom-s** (the
``s`` smallest-hash live local distinct elements, maintained inside an
*s-dominance* candidate set) and informs the coordinator whenever its local
bottom-s gains an entry or an entry's expiry is refreshed.  The coordinator
merges all reports into its own s-dominance set; its live bottom-s is then
exactly the global bottom-s — a perfect without-replacement distinct sample
of size ``min(s, |D_w|)``.

Unlike Algorithms 3–4 there is **no coordinator feedback**: messages flow
one way.  For ``s = 1`` this is precisely the paper's pre-optimization
algorithm, making it the natural ablation baseline quantifying the value of
lazy feedback (see ``repro.experiments.ablations``).

Correctness sketch: a member ``g`` of the global bottom-s is live at some
site; fewer than ``s`` live elements hash below ``g`` globally, hence
locally at any site where ``g`` is live — so ``g`` survives local
s-dominance pruning *and* sits in the local bottom-s there, and the site
holding ``g``'s freshest occurrence reports that freshest expiry.  The
coordinator therefore knows every global bottom-s member with its current
expiry; s-dominance pruning at the coordinator never discards a current or
future bottom-s member.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher, unit_hash_batch
from ..netsim.message import COORDINATOR, Message, MessageKind
from ..netsim.network import Network
from ..runtime.topology import Topology
from ..structures.dominance import DominanceEntry, SortedDominanceSet
from .events import EventBatch
from .protocol import (
    Sampler,
    SampleResult,
    SamplerConfig,
    iter_event_runs,
    revive_element,
)

__all__ = [
    "LocalPushSite",
    "LocalPushCoordinator",
    "SlidingWindowBottomS",
]


class LocalPushSite:
    """A site that pushes every change of its local bottom-s.

    Args:
        site_id: Network address.
        hasher: Shared hash function.
        window: Window size w in slots.
        sample_size: Sample size s (>= 1).
    """

    __slots__ = (
        "site_id",
        "hasher",
        "window",
        "sample_size",
        "candidates",
        "_reported",
        "reports_sent",
    )

    def __init__(
        self, site_id: int, hasher: UnitHasher, window: int, sample_size: int
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.site_id = site_id
        self.hasher = hasher
        self.window = window
        self.sample_size = sample_size
        self.candidates = SortedDominanceSet(sample_size)
        # element -> expiry most recently reported to the coordinator
        self._reported: dict[Any, int] = {}
        self.reports_sent = 0

    @property
    def memory_size(self) -> int:
        """Current candidate-set size |T_i|."""
        return len(self.candidates)

    def _sync_bottom(self, now: int, network: Network) -> None:
        """Report every (element, expiry) newly in the local bottom-s."""
        bottom = self.candidates.bottom(self.sample_size)
        live_elements = set()
        for entry in bottom:
            live_elements.add(entry.element)
            if self._reported.get(entry.element) != entry.expiry:
                self._reported[entry.element] = entry.expiry
                self.reports_sent += 1
                network.send(
                    self.site_id,
                    COORDINATOR,
                    MessageKind.SW_REPORT,
                    (entry.element, entry.hash, entry.expiry, self.site_id),
                )
        # Forget book-keeping for elements that left the bottom or expired,
        # so a later re-entry is re-reported.
        for element in [e for e in self._reported if e not in live_elements]:
            del self._reported[element]

    def tick(self, now: int, network: Network) -> None:
        """Slot-boundary maintenance: expire, then re-sync the bottom-s."""
        before = len(self.candidates)
        self.candidates.expire(now)
        if len(self.candidates) != before or self._reported:
            self._sync_bottom(now, network)

    def observe(self, element: Any, now: int, network: Network) -> None:
        """Process an arrival in slot ``now``."""
        self.observe_hashed(element, self.hasher.unit(element), now, network)

    def observe_hashed(
        self, element: Any, h: float, now: int, network: Network
    ) -> None:
        """Fast path: arrival with a precomputed hash."""
        self.candidates.expire(now)
        self.candidates.observe(element, now + self.window, h)
        self._sync_bottom(now, network)

    def handle_message(self, message: Message, network: Network) -> None:
        """Local-push sites receive no protocol messages."""
        raise ProtocolError(
            f"local-push site {self.site_id} received unexpected {message.kind!r}"
        )


class LocalPushCoordinator:
    """Merges site reports into a global s-dominance set.

    Args:
        sample_size: Sample size s.
    """

    __slots__ = ("sample_size", "candidates", "reports_received")

    def __init__(self, sample_size: int) -> None:
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_size = sample_size
        self.candidates = SortedDominanceSet(sample_size)
        self.reports_received = 0

    def handle_message(self, message: Message, network: Network) -> None:
        if message.kind is not MessageKind.SW_REPORT:
            raise ProtocolError(f"coordinator cannot handle {message.kind!r}")
        element, h, expiry, _site_id = message.payload
        self.reports_received += 1
        self.candidates.observe(element, expiry, h)

    def query(self, now: int) -> list[Any]:
        """The window's distinct sample (size min(s, |D_w|)) at slot ``now``."""
        return [entry.element for entry in self.sample_entries(now)]

    def sample_entries(self, now: int) -> list[DominanceEntry]:
        """The live bottom-s entries at slot ``now``, ascending by hash."""
        self.candidates.expire(now)
        return self.candidates.bottom(self.sample_size)


class SlidingWindowBottomS(Sampler):
    """Facade: general-s sliding-window distinct sampling (local push).

    Args:
        num_sites: Number of sites k.
        window: Window size w in slots.
        sample_size: Sample size s (>= 1).
        seed: Hash seed (ignored if ``hasher`` given).
        algorithm: Hash algorithm name.
        hasher: Optional shared pre-built hasher.
    """

    def __init__(
        self,
        num_sites: int,
        window: int,
        sample_size: int = 1,
        seed: int = 0,
        algorithm: str = "murmur2",
        hasher: Optional[UnitHasher] = None,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.hasher = hasher if hasher is not None else UnitHasher(seed, algorithm)
        self.window = window
        self.sample_size = sample_size
        self._now = 0
        self._init_runtime(
            Topology.build(
                coordinator=LocalPushCoordinator(sample_size),
                site_factory=lambda i: LocalPushSite(
                    i, self.hasher, window, sample_size
                ),
                num_sites=num_sites,
            )
        )

    # -- protocol hooks ----------------------------------------------------

    def _advance_to(self, slot: int) -> None:
        """Slot boundary: run per-site expiry + bottom-s re-sync."""
        self._now = slot
        network = self.network
        for site in self.sites:
            site.tick(slot, network)

    def _deliver(self, site_id: int, element: Any) -> None:
        """Deliver an arrival at the current slot."""
        self.sites[site_id].observe(element, self._now, self.network)

    def observe_batch(self, events) -> int:
        """Vectorized batch ingestion (semantics of the generic loop).

        Same-slot runs are bulk-hashed, and exact ``(site, element)``
        repeats within a run are dropped: a repeat's candidate refresh is
        a no-op (equal expiry) and the follow-up bottom-s sync therefore
        finds ``_reported`` already consistent — messages flow one way
        here, so nothing else can have invalidated it.  Covered by the
        batch-equivalence tests.
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        events = events if isinstance(events, list) else list(events)
        if not events:
            return 0
        for slot, batch in iter_event_runs(events):
            if slot is not None:
                self.advance(slot)
            self._deliver_batch(batch)
        return len(events)

    def observe_columns(self, batch: EventBatch) -> int:
        """Columnar fast path: cached hash column + vectorized dedup."""
        batch.require_sites()
        for slot, run in batch.slot_runs():
            if slot is not None:
                self.advance(slot)
            self._deliver_columns(run)
        return len(batch)

    def _deliver_columns(self, run: EventBatch) -> None:
        """Columnar twin of :meth:`_deliver_batch` (dedup always valid
        here — messages flow one way, see :meth:`observe_batch`)."""
        if not len(run):
            return
        hashes = run.hash_column(self.hasher).tolist()
        site_ids = run.sites_list()
        items = run.items_list()
        now = self._now
        network = self.network
        sites = self.sites
        for j in run.first_occurrence_indices().tolist():
            sites[site_ids[j]].observe_hashed(items[j], hashes[j], now, network)

    def _deliver_batch(self, batch: list) -> None:
        """Deliver one same-slot run with precomputed hashes + dedup."""
        if not batch:
            return
        items = [item for _, item in batch]
        hashes = unit_hash_batch(self.hasher, items)
        now = self._now
        network = self.network
        sites = self.sites
        seen: set = set()
        for (site_id, item), h in zip(batch, hashes):
            key = (site_id, item)
            if key in seen:
                continue
            seen.add(key)
            sites[site_id].observe_hashed(item, h, now, network)

    def sample(self) -> SampleResult:
        """The current window's bottom-s distinct sample."""
        entries = self.coordinator.sample_entries(self._now)
        threshold = (
            entries[-1].hash if len(entries) == self.sample_size else 1.0
        )
        return SampleResult(
            items=tuple(entry.element for entry in entries),
            pairs=tuple((entry.hash, entry.element) for entry in entries),
            threshold=threshold,
            sample_size=self.sample_size,
            window=self.window,
            slot=self.current_slot,
        )

    def per_site_memory(self) -> list[int]:
        """Current candidate-set sizes, one per site."""
        return [site.memory_size for site in self.sites]

    # -- protocol: construction recipe + persistence -----------------------

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this system."""
        return SamplerConfig(
            variant="sliding-local-push",
            num_sites=self.num_sites,
            sample_size=self.sample_size,
            window=self.window,
            seed=self.hasher.seed,
            algorithm=self.hasher.algorithm,
        )

    def _state(self) -> dict[str, Any]:
        return {
            "now": self._now,
            "coordinator": {
                "reports_received": self.coordinator.reports_received,
                "entries": [
                    [e.element, e.expiry, e.hash]
                    for e in self.coordinator.candidates.entries()
                ],
            },
            "sites": [
                {
                    "entries": [
                        [e.element, e.expiry, e.hash]
                        for e in site.candidates.entries()
                    ],
                    "reported": [
                        [element, expiry]
                        for element, expiry in site._reported.items()
                    ],
                    "reports_sent": site.reports_sent,
                }
                for site in self.sites
            ],
        }

    def _load(self, state: dict[str, Any]) -> None:
        self._now = int(state["now"])
        coord_state = state["coordinator"]
        self.coordinator.reports_received = int(coord_state["reports_received"])
        self.coordinator.candidates = SortedDominanceSet(self.sample_size)
        for e, exp, h in coord_state["entries"]:
            self.coordinator.candidates.observe(
                revive_element(e), int(exp), float(h)
            )
        for site, site_state in zip(self.sites, state["sites"]):
            site.candidates = SortedDominanceSet(self.sample_size)
            for e, exp, h in site_state["entries"]:
                site.candidates.observe(revive_element(e), int(exp), float(h))
            site._reported = {
                revive_element(element): int(expiry)
                for element, expiry in site_state["reported"]
            }
            site.reports_sent = int(site_state["reports_sent"])
