"""The front door: ``SamplerConfig`` + ``make_sampler`` + variant registry.

Every sampler in this package is constructed the same way::

    from repro import SamplerConfig, make_sampler

    config = SamplerConfig(variant="sliding", num_sites=10, window=100,
                           sample_size=8, seed=42)
    sampler = make_sampler(config)           # or make_sampler("sliding", ...)

    sampler.advance(slot)
    sampler.observe(site_id, element)        # or observe_batch(events)
    result = sampler.sample()                # SampleResult
    costs = sampler.stats()                  # SamplerStats

The registry maps variant names to factories; consumers (CLI, experiment
drivers, benchmarks, :mod:`repro.core.snapshot`) iterate it instead of
hard-coding classes, and downstream code can plug in new backends with
:func:`register_variant`.

The pre-registry factories (``infinite_window_sampler`` & co) remain for
one release as deprecated shims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..errors import ConfigurationError
from .infinite import DistinctSamplerSystem
from .protocol import Sampler, SamplerConfig, deprecated_call
from .sliding import SlidingWindowSystem
from .sliding_feedback import SlidingWindowBottomSFeedback
from .sliding_general import SlidingWindowBottomS
from .with_replacement import SlidingWindowWithReplacement, WithReplacementSampler

__all__ = [
    "SamplerConfig",
    "SamplerVariant",
    "SHARDABLE_VARIANTS",
    "make_sampler",
    "register_variant",
    "register_sharded_variant",
    "sampler_variants",
    "get_variant",
    "infinite_window_sampler",
    "sliding_window_sampler",
    "with_replacement_sampler",
]


@dataclass(frozen=True)
class SamplerVariant:
    """A registered sampler variant.

    Attributes:
        name: Registry key.
        factory: Builds a :class:`~repro.core.protocol.Sampler` from a
            validated :class:`~repro.core.protocol.SamplerConfig`.
        summary: One-line description (CLI ``variants`` listing, README).
        windowed: Whether the variant requires ``window >= 1``
            (with-replacement accepts both and keys off ``window``).
        with_replacement: Whether samples are independent draws.
        baseline: True for comparison baselines rather than the paper's
            recommended protocols.
        sharded: Whether the variant runs S coordinator groups and
            accepts ``shards > 1`` (the ``sharded:*`` wrappers).
        routing: How events reach a coordinator group: every variant
            addresses sites explicitly (``"explicit-site"``); sharded
            wrappers additionally hash-partition the key space across
            groups (``"hash-partition"``).
    """

    name: str
    factory: Callable[[SamplerConfig], Sampler]
    summary: str
    windowed: bool = False
    with_replacement: bool = False
    baseline: bool = False
    sharded: bool = False
    routing: str = "explicit-site"


_REGISTRY: dict[str, SamplerVariant] = {}


def register_variant(variant: SamplerVariant) -> SamplerVariant:
    """Add a variant to the registry (last registration wins).

    Args:
        variant: The variant description + factory.

    Returns:
        The registered variant (so the call can be used as a decorator
        helper in downstream packages).
    """
    _REGISTRY[variant.name] = variant
    return variant


def sampler_variants() -> tuple[str, ...]:
    """All registered variant names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_variant(name: str) -> SamplerVariant:
    """Look up a registered variant.

    Raises:
        ConfigurationError: For an unknown name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sampler variant {name!r}; expected one of "
            f"{sampler_variants()}"
        ) from None


def make_sampler(config=None, /, **overrides) -> Sampler:
    """Build any registered sampler from a config — the package front door.

    Accepts either a full :class:`~repro.core.protocol.SamplerConfig`, or
    a variant name plus field overrides::

        make_sampler(SamplerConfig(variant="infinite", num_sites=4,
                                   sample_size=16))
        make_sampler("infinite", num_sites=4, sample_size=16)

    Args:
        config: A ``SamplerConfig``, a variant-name string, or None
            (fields given entirely via ``overrides``).
        **overrides: ``SamplerConfig`` fields overriding ``config``.

    Returns:
        A ready :class:`~repro.core.protocol.Sampler`.

    Raises:
        ConfigurationError: Unknown variant or invalid field values.
    """
    if config is None:
        config = SamplerConfig(**overrides)
    elif isinstance(config, str):
        config = SamplerConfig(variant=config, **overrides)
    elif isinstance(config, SamplerConfig):
        if overrides:
            config = replace(config, **overrides)
    else:
        raise ConfigurationError(
            "make_sampler expects a SamplerConfig or a variant name, got "
            f"{type(config).__name__}"
        )
    variant = get_variant(config.variant)
    config.validate()
    if variant.windowed and config.window < 1:
        raise ConfigurationError(
            f"variant {config.variant!r} needs window >= 1, got {config.window}"
        )
    if not variant.windowed and not variant.with_replacement and config.window:
        raise ConfigurationError(
            f"variant {config.variant!r} is infinite-window; "
            f"window must be 0, got {config.window}"
        )
    if config.shards > 1 and not variant.sharded:
        raise ConfigurationError(
            f"variant {config.variant!r} is single-coordinator; shards must "
            f"be 1, got {config.shards} (use 'sharded:{config.variant}')"
        )
    if config.executor != "serial" and not variant.sharded:
        raise ConfigurationError(
            f"variant {config.variant!r} is single-coordinator; the "
            f"{config.executor!r} executor applies only to 'sharded:*' "
            f"variants (use 'sharded:{config.variant}')"
        )
    return variant.factory(config)


# ---------------------------------------------------------------------------
# Built-in variants
# ---------------------------------------------------------------------------


def _make_infinite(config: SamplerConfig) -> Sampler:
    return DistinctSamplerSystem(
        num_sites=config.num_sites,
        sample_size=config.sample_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


def _make_sliding(config: SamplerConfig) -> Sampler:
    if config.sample_size == 1:
        return SlidingWindowSystem(
            num_sites=config.num_sites,
            window=config.window,
            seed=config.seed,
            algorithm=config.algorithm,
            structure=config.structure,
            coordinator_mode=config.coordinator_mode,
        )
    return SlidingWindowBottomSFeedback(
        num_sites=config.num_sites,
        window=config.window,
        sample_size=config.sample_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


def _make_sliding_feedback(config: SamplerConfig) -> Sampler:
    return SlidingWindowBottomSFeedback(
        num_sites=config.num_sites,
        window=config.window,
        sample_size=config.sample_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


def _make_sliding_local_push(config: SamplerConfig) -> Sampler:
    return SlidingWindowBottomS(
        num_sites=config.num_sites,
        window=config.window,
        sample_size=config.sample_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


def _make_with_replacement(config: SamplerConfig) -> Sampler:
    if config.window == 0:
        return WithReplacementSampler(
            num_sites=config.num_sites,
            sample_size=config.sample_size,
            seed=config.seed,
            algorithm=config.algorithm,
        )
    return SlidingWindowWithReplacement(
        num_sites=config.num_sites,
        window=config.window,
        sample_size=config.sample_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


def _make_broadcast(config: SamplerConfig) -> Sampler:
    from .broadcast import BroadcastSamplerSystem

    return BroadcastSamplerSystem(
        num_sites=config.num_sites,
        sample_size=config.sample_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


def _make_caching(config: SamplerConfig) -> Sampler:
    from .caching import CachingSamplerSystem

    cache_size = config.cache_size
    if cache_size is None:
        cache_size = config.sample_size
    return CachingSamplerSystem(
        num_sites=config.num_sites,
        sample_size=config.sample_size,
        cache_size=cache_size,
        seed=config.seed,
        algorithm=config.algorithm,
    )


register_variant(
    SamplerVariant(
        name="infinite",
        factory=_make_infinite,
        summary="bottom-s over the full history (Algorithms 1-2)",
    )
)
register_variant(
    SamplerVariant(
        name="sliding",
        factory=_make_sliding,
        summary="sliding window, lazy feedback (Algorithms 3-4; "
        "bottom-s generalization for s > 1)",
        windowed=True,
    )
)
register_variant(
    SamplerVariant(
        name="sliding-feedback",
        factory=_make_sliding_feedback,
        summary="sliding window, bottom-s with expiring-threshold feedback",
        windowed=True,
    )
)
register_variant(
    SamplerVariant(
        name="sliding-local-push",
        factory=_make_sliding_local_push,
        summary="sliding window, one-way local bottom-s push (no feedback)",
        windowed=True,
    )
)
register_variant(
    SamplerVariant(
        name="with-replacement",
        factory=_make_with_replacement,
        summary="s independent draws via parallel single-sample copies "
        "(window=0 for infinite)",
        with_replacement=True,
    )
)
register_variant(
    SamplerVariant(
        name="broadcast",
        factory=_make_broadcast,
        summary="eager-synchronization baseline (threshold broadcasts)",
        baseline=True,
    )
)
register_variant(
    SamplerVariant(
        name="caching",
        factory=_make_caching,
        summary="infinite window with duplicate-suppressing site LRUs",
        baseline=True,
    )
)


# ---------------------------------------------------------------------------
# Sharded scale-out wrappers: S coordinator groups, hash-partitioned keys
# ---------------------------------------------------------------------------

#: Base variants that admit hash-partitioned sharding.  With-replacement
#: is excluded: its per-copy samples use different hash functions, so a
#: bottom-s merge across disjoint key spaces is meaningless there (see
#: :mod:`repro.runtime.sharded`).
SHARDABLE_VARIANTS = (
    "infinite",
    "sliding",
    "sliding-feedback",
    "sliding-local-push",
    "broadcast",
    "caching",
)


def _sharded_factory(base_name: str) -> Callable[[SamplerConfig], Sampler]:
    def factory(config: SamplerConfig) -> Sampler:
        # Lazy import: repro.runtime imports this module's protocol layer.
        from ..runtime.sharded import ShardedSampler

        base = get_variant(base_name)
        # Every group is a full base-variant sampler sharing the same
        # sampling hash (same seed/algorithm); only the key space differs.
        # Groups always carry the serial executor: the facade owns the
        # execution backend, and workers rebuild groups from this config.
        inner = replace(
            config, variant=base_name, shards=1, executor="serial", workers=0
        )
        groups = [base.factory(inner) for _ in range(config.shards)]
        return ShardedSampler(groups, config)

    return factory


def register_sharded_variant(base_name: str) -> SamplerVariant:
    """Register ``sharded:<base_name>`` wrapping a registered base variant.

    The wrapper inherits the base's windowing and baseline flags and is
    reachable everywhere the registry is — ``make_sampler``, the CLI,
    snapshots, and the perf suite.

    Raises:
        ConfigurationError: If the base is unknown or with-replacement.
    """
    base = get_variant(base_name)
    if base.with_replacement or base.sharded:
        raise ConfigurationError(
            f"variant {base_name!r} cannot be sharded (see repro.runtime.sharded)"
        )
    return register_variant(
        SamplerVariant(
            name=f"sharded:{base_name}",
            factory=_sharded_factory(base_name),
            summary=f"S hash-partitioned coordinator groups of {base_name!r} "
            "cores, merged at query time",
            windowed=base.windowed,
            baseline=base.baseline,
            sharded=True,
            routing="hash-partition",
        )
    )


for _base_name in SHARDABLE_VARIANTS:
    register_sharded_variant(_base_name)


# ---------------------------------------------------------------------------
# Deprecated pre-registry factories (one release)
# ---------------------------------------------------------------------------


def infinite_window_sampler(
    num_sites: int,
    sample_size: int,
    seed: int = 0,
    algorithm: str = "murmur2",
) -> DistinctSamplerSystem:
    """Deprecated: use ``make_sampler("infinite", ...)``."""
    deprecated_call(
        "infinite_window_sampler()", 'make_sampler("infinite", ...)'
    )
    return make_sampler(
        "infinite",
        num_sites=num_sites,
        sample_size=sample_size,
        seed=seed,
        algorithm=algorithm,
    )


def sliding_window_sampler(
    num_sites: int,
    window: int,
    sample_size: int = 1,
    seed: int = 0,
    algorithm: str = "murmur2",
    feedback: bool = True,
):
    """Deprecated: use ``make_sampler("sliding", ...)`` (or
    ``"sliding-local-push"`` for the historical ``feedback=False``)."""
    deprecated_call("sliding_window_sampler()", 'make_sampler("sliding", ...)')
    if sample_size < 1:
        raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
    variant = (
        "sliding" if feedback or sample_size == 1 else "sliding-local-push"
    )
    return make_sampler(
        variant,
        num_sites=num_sites,
        window=window,
        sample_size=sample_size,
        seed=seed,
        algorithm=algorithm,
    )


def with_replacement_sampler(
    num_sites: int,
    sample_size: int,
    window: int = 0,
    seed: int = 0,
    algorithm: str = "murmur2",
):
    """Deprecated: use ``make_sampler("with-replacement", ...)``."""
    deprecated_call(
        "with_replacement_sampler()", 'make_sampler("with-replacement", ...)'
    )
    return make_sampler(
        "with-replacement",
        num_sites=num_sites,
        sample_size=sample_size,
        window=window,
        seed=seed,
        algorithm=algorithm,
    )
