"""High-level convenience API.

Most users want one of three things; each maps to a factory here:

* a distinct sample of *everything seen so far* across distributed streams
  → :func:`infinite_window_sampler`
* a distinct sample of the *last w time slots* → :func:`sliding_window_sampler`
* independent draws (with replacement) → :func:`with_replacement_sampler`

The returned objects are the full-featured system facades from the
submodules; these factories only centralize defaults and validation.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .infinite import DistinctSamplerSystem
from .sliding import SlidingWindowSystem
from .sliding_feedback import SlidingWindowBottomSFeedback
from .sliding_general import SlidingWindowBottomS
from .with_replacement import SlidingWindowWithReplacement, WithReplacementSampler

__all__ = [
    "infinite_window_sampler",
    "sliding_window_sampler",
    "with_replacement_sampler",
]


def infinite_window_sampler(
    num_sites: int,
    sample_size: int,
    seed: int = 0,
    algorithm: str = "murmur2",
) -> DistinctSamplerSystem:
    """Distributed distinct sampler over the full stream history.

    Args:
        num_sites: Number of distributed sites.
        sample_size: Desired sample size s (sample has size min(s, d)).
        seed: Hash seed (fix it for reproducible runs).
        algorithm: Hash algorithm (see ``repro.hashing.HASH_ALGORITHMS``).

    Returns:
        A :class:`~repro.core.infinite.DistinctSamplerSystem`.
    """
    return DistinctSamplerSystem(
        num_sites=num_sites, sample_size=sample_size, seed=seed, algorithm=algorithm
    )


def sliding_window_sampler(
    num_sites: int,
    window: int,
    sample_size: int = 1,
    seed: int = 0,
    algorithm: str = "murmur2",
    feedback: bool = True,
):
    """Distributed distinct sampler over a sliding window of ``window`` slots.

    For ``sample_size == 1`` this returns the paper-faithful lazy-feedback
    system (Algorithms 3–4).  For larger samples: the general-s
    lazy-feedback system (``feedback=True``, default) or the one-way
    local-push variant (``feedback=False``).

    Args:
        num_sites: Number of distributed sites.
        window: Window size in time slots.
        sample_size: Desired sample size s.
        seed: Hash seed.
        algorithm: Hash algorithm name.
        feedback: Whether the coordinator replies with expiring thresholds
            (ignored for s = 1, which always uses Algorithms 3-4).

    Returns:
        A :class:`~repro.core.sliding.SlidingWindowSystem` (s = 1),
        :class:`~repro.core.sliding_feedback.SlidingWindowBottomSFeedback`,
        or :class:`~repro.core.sliding_general.SlidingWindowBottomS`.
    """
    if sample_size < 1:
        raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
    if sample_size == 1:
        return SlidingWindowSystem(
            num_sites=num_sites, window=window, seed=seed, algorithm=algorithm
        )
    cls = SlidingWindowBottomSFeedback if feedback else SlidingWindowBottomS
    return cls(
        num_sites=num_sites,
        window=window,
        sample_size=sample_size,
        seed=seed,
        algorithm=algorithm,
    )


def with_replacement_sampler(
    num_sites: int,
    sample_size: int,
    window: int = 0,
    seed: int = 0,
    algorithm: str = "murmur2",
):
    """Distinct sampler producing s independent (with-replacement) draws.

    Args:
        num_sites: Number of distributed sites.
        sample_size: Number of independent draws s.
        window: 0 for infinite window, otherwise the sliding-window size.
        seed: Master seed for the hash family.
        algorithm: Hash algorithm name.

    Returns:
        A :class:`~repro.core.with_replacement.WithReplacementSampler` or
        :class:`~repro.core.with_replacement.SlidingWindowWithReplacement`.
    """
    if window < 0:
        raise ConfigurationError(f"window must be >= 0, got {window}")
    if window == 0:
        return WithReplacementSampler(
            num_sites=num_sites, sample_size=sample_size, seed=seed, algorithm=algorithm
        )
    return SlidingWindowWithReplacement(
        num_sites=num_sites,
        window=window,
        sample_size=sample_size,
        seed=seed,
        algorithm=algorithm,
    )
