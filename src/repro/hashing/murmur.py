"""Pure-Python MurmurHash implementations.

The paper's experiments use "MurmurHash 2.0 (Holub)".  We implement, from
scratch:

* :func:`murmur2_32`   — Austin Appleby's original 32-bit MurmurHash2.
* :func:`murmur2_64a`  — MurmurHash64A, the 64-bit variant for 64-bit
  platforms (the one production Java ports expose as ``hash64``).
* :func:`murmur3_32`   — MurmurHash3 x86 32-bit.
* :func:`murmur3_128_x64` — MurmurHash3 x64 128-bit (returned as a pair of
  64-bit halves); its first half is a convenient high-quality 64-bit hash.
* :func:`fmix64`       — the MurmurHash3 64-bit finalizer, useful as a cheap
  integer mixer.

All functions take ``bytes`` and an integer ``seed`` and return unsigned
Python ints.  Arithmetic is done on Python ints with explicit masking to 32
or 64 bits, which is exact (no overflow surprises) and fast enough for the
streaming workloads in this package: per-element cost is constant.

A vectorized batch path for 64-bit *integer* keys is provided in
:func:`fmix64_array` using NumPy ``uint64`` arithmetic; stream generators use
it to pre-hash large element batches.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "murmur2_32",
    "murmur2_64a",
    "murmur3_32",
    "murmur3_128_x64",
    "fmix64",
    "fmix64_array",
]

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def murmur2_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash2, 32-bit output.

    Direct translation of Appleby's reference ``MurmurHash2``; processes the
    input four bytes at a time (little-endian) and finishes with the
    avalanche mix.

    Args:
        data: Key to hash.
        seed: 32-bit seed.

    Returns:
        Unsigned 32-bit hash value.
    """
    m = 0x5BD1E995
    r = 24
    length = len(data)
    h = (seed ^ length) & _MASK32

    i = 0
    # Body: 4-byte little-endian chunks.
    while length - i >= 4:
        k = int.from_bytes(data[i : i + 4], "little")
        k = (k * m) & _MASK32
        k ^= k >> r
        k = (k * m) & _MASK32
        h = (h * m) & _MASK32
        h ^= k
        i += 4

    # Tail: the remaining 0-3 bytes.
    tail = length - i
    if tail >= 3:
        h ^= data[i + 2] << 16
    if tail >= 2:
        h ^= data[i + 1] << 8
    if tail >= 1:
        h ^= data[i]
        h = (h * m) & _MASK32

    h ^= h >> 13
    h = (h * m) & _MASK32
    h ^= h >> 15
    return h


def murmur2_64a(data: bytes, seed: int = 0) -> int:
    """MurmurHash64A — the 64-bit MurmurHash2 variant.

    This is the variant used by most Java "MurmurHash 2.0" ports (including
    the Holub implementation cited by the paper) for 64-bit hashes.

    Args:
        data: Key to hash.
        seed: 64-bit seed.

    Returns:
        Unsigned 64-bit hash value.
    """
    m = 0xC6A4A7935BD1E995
    r = 47
    length = len(data)
    h = (seed ^ ((length * m) & _MASK64)) & _MASK64

    i = 0
    while length - i >= 8:
        k = int.from_bytes(data[i : i + 8], "little")
        k = (k * m) & _MASK64
        k ^= k >> r
        k = (k * m) & _MASK64
        h ^= k
        h = (h * m) & _MASK64
        i += 8

    tail = length - i
    if tail:
        # Remaining 1-7 bytes, little-endian into the low bits.
        k = int.from_bytes(data[i:], "little")
        h ^= k
        h = (h * m) & _MASK64

    h ^= h >> r
    h = (h * m) & _MASK64
    h ^= h >> r
    return h


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit.

    Args:
        data: Key to hash.
        seed: 32-bit seed.

    Returns:
        Unsigned 32-bit hash value.
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    length = len(data)
    h = seed & _MASK32

    i = 0
    while length - i >= 4:
        k = int.from_bytes(data[i : i + 4], "little")
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32
        i += 4

    tail = length - i
    k = 0
    if tail >= 3:
        k ^= data[i + 2] << 16
    if tail >= 2:
        k ^= data[i + 1] << 8
    if tail >= 1:
        k ^= data[i]
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k

    h ^= length
    # fmix32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def fmix64(k: int) -> int:
    """MurmurHash3's 64-bit finalizer (avalanche mixer).

    A bijection on 64-bit integers with excellent avalanche behaviour; used
    standalone to hash integer keys cheaply.

    Args:
        k: 64-bit integer (masked internally).

    Returns:
        Unsigned 64-bit mixed value.
    """
    k &= _MASK64
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def fmix64_array(keys: npt.ArrayLike) -> npt.NDArray[np.uint64]:
    """Vectorized :func:`fmix64` over a ``uint64`` NumPy array.

    Args:
        keys: Array of integer keys; converted to ``uint64``.

    Returns:
        ``uint64`` array of mixed values, same shape as ``keys``.
    """
    k = np.asarray(keys, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        k ^= k >> np.uint64(33)
        k *= np.uint64(0xFF51AFD7ED558CCD)
        k ^= k >> np.uint64(33)
        k *= np.uint64(0xC4CEB9FE1A85EC53)
        k ^= k >> np.uint64(33)
    return k


def murmur3_128_x64(data: bytes, seed: int = 0) -> tuple[int, int]:
    """MurmurHash3 x64 128-bit.

    Args:
        data: Key to hash.
        seed: 64-bit seed (applied to both lanes, as in the reference).

    Returns:
        Tuple ``(h1, h2)`` of unsigned 64-bit halves.
    """
    c1 = 0x87C37B91114253D5
    c2 = 0x4CF5AD432745937F
    length = len(data)
    h1 = seed & _MASK64
    h2 = seed & _MASK64

    i = 0
    while length - i >= 16:
        k1 = int.from_bytes(data[i : i + 8], "little")
        k2 = int.from_bytes(data[i + 8 : i + 16], "little")

        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1
        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64
        i += 16

    tail = data[i:]
    k1 = 0
    k2 = 0
    tl = len(tail)
    if tl >= 9:
        k2 = int.from_bytes(tail[8:], "little")
        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
    if tl >= 1:
        k1 = int.from_bytes(tail[:8], "little")
        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = fmix64(h1)
    h2 = fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return h1, h2
