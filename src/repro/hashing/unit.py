"""Hashing elements to the unit interval ``[0, 1)``.

The sampling algorithms treat ``h(e)`` as an i.i.d. Uniform(0,1) random
variable per distinct element (the "hash-as-randomness" idealization used
throughout the paper's analysis).  :class:`UnitHasher` realizes this with a
seeded 64-bit MurmurHash mapped to a float in ``[0, 1)`` with 53 bits of
precision.

:class:`SeededHashFamily` mints independent :class:`UnitHasher` instances
(distinct seeds derived from a master seed); the with-replacement sampler
uses one family member per parallel copy.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Optional

import numpy as np
import numpy.typing as npt

from .encoding import Element, encode_element
from .murmur import fmix64, fmix64_array, murmur2_64a, murmur3_128_x64, murmur3_32

__all__ = [
    "UnitHasher",
    "SeededHashFamily",
    "HASH_ALGORITHMS",
    "unit_hash_array",
    "unit_hash_batch",
    "unit_hash_vector",
]

_TWO_53 = float(1 << 53)
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Supported algorithm names for :class:`UnitHasher`.
HASH_ALGORITHMS = ("murmur2", "murmur3", "python", "mix64")


class UnitHasher:
    """Maps elements to floats in ``[0, 1)`` using a seeded hash.

    Instances are immutable and cheap; they are shared between every site
    and the coordinator of a simulated system (the paper's initialization
    step "receive hash function h from the coordinator").

    Args:
        seed: Seed defining this member of the hash family.
        algorithm: One of :data:`HASH_ALGORITHMS`.  ``murmur2`` matches the
            paper's choice (MurmurHash 2.0, 64-bit variant); ``murmur3``
            uses the 128-bit x64 variant's first lane; ``python`` uses the
            built-in ``hash`` mixed through fmix64 (fast, but process-seed
            dependent unless ``PYTHONHASHSEED`` is fixed — intended only for
            throwaway exploration); ``mix64`` accepts **integer elements
            only** and applies the fmix64 finalizer — the fast path used by
            the experiment drivers, with a NumPy-vectorized companion
            :func:`unit_hash_array`.

    Raises:
        ValueError: For an unknown algorithm name.
    """

    __slots__ = ("seed", "algorithm", "_fn")

    _fn: Callable[[Element], int]

    def __init__(self, seed: int = 0, algorithm: str = "murmur2") -> None:
        if algorithm not in HASH_ALGORITHMS:
            raise ValueError(
                f"unknown hash algorithm {algorithm!r}; expected one of {HASH_ALGORITHMS}"
            )
        self.seed = int(seed)
        self.algorithm = algorithm
        if algorithm == "murmur2":
            self._fn = self._hash64_murmur2
        elif algorithm == "murmur3":
            self._fn = self._hash64_murmur3
        elif algorithm == "mix64":
            self._fn = self._hash64_mix
        else:
            self._fn = self._hash64_python

    # -- 64-bit integer hash -------------------------------------------------

    def _hash64_murmur2(self, element: Element) -> int:
        return murmur2_64a(encode_element(element), self.seed)

    def _hash64_murmur3(self, element: Element) -> int:
        return murmur3_128_x64(encode_element(element), self.seed)[0]

    def _hash64_python(self, element: Element) -> int:
        return fmix64(hash(element) ^ self.seed)

    def _hash64_mix(self, element: Element) -> int:
        if not isinstance(element, int):
            raise TypeError(
                "the 'mix64' hash algorithm accepts integer elements only; "
                f"got {type(element).__name__}"
            )
        return fmix64((element ^ (self.seed * 0x9E3779B97F4A7C15)) & _MASK64)

    def hash64(self, element: Element) -> int:
        """Return the raw unsigned 64-bit hash of ``element``."""
        return self._fn(element)

    def hash32(self, element: Element) -> int:
        """Return an unsigned 32-bit hash of ``element`` (murmur3_32 based)."""
        return murmur3_32(encode_element(element), self.seed & 0xFFFFFFFF)

    # -- unit interval --------------------------------------------------------

    def unit(self, element: Element) -> float:
        """Map ``element`` to a float in ``[0, 1)``.

        Uses the top 53 bits of the 64-bit hash so the result is exactly
        representable as a double and uniform over the 2^53 grid.
        """
        return (self._fn(element) >> 11) / _TWO_53

    __call__ = unit

    def unit_many(self, elements: Iterable[Element]) -> list[float]:
        """Hash an iterable of elements; convenience for tests/tools."""
        fn = self._fn
        return [(fn(e) >> 11) / _TWO_53 for e in elements]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UnitHasher(seed={self.seed}, algorithm={self.algorithm!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnitHasher)
            and other.seed == self.seed
            and other.algorithm == self.algorithm
        )

    def __hash__(self) -> int:
        return hash((self.seed, self.algorithm))


def unit_hash_array(ids: npt.ArrayLike, seed: int = 0) -> npt.NDArray[np.float64]:
    """Vectorized unit-interval hashes for integer element ids.

    Matches ``UnitHasher(seed, "mix64").unit(id)`` exactly, element-wise —
    experiment drivers pre-hash whole streams with this and feed
    ``observe_hashed`` (see DESIGN.md §6).

    Args:
        ids: Integer element ids (any integer dtype).
        seed: Hash seed (same value as the systems' hashers).

    Returns:
        Float64 array in ``[0, 1)``, same shape as ``ids``.
    """
    with np.errstate(over="ignore"):
        keys = np.asarray(ids, dtype=np.uint64) ^ np.uint64(
            (seed * 0x9E3779B97F4A7C15) & _MASK64
        )
    mixed = fmix64_array(keys)
    return (mixed >> np.uint64(11)).astype(np.float64) / _TWO_53


def unit_hash_vector(
    hasher: UnitHasher, items: Sequence[Element]
) -> Optional[npt.NDArray[np.float64]]:
    """Vectorized unit hashes for a batch, or None when ineligible.

    THE single definition of the mix64 vectorization gate: a batch is
    NumPy-hashable iff the hasher is ``mix64`` and every item is a plain
    int64-range Python int.  The type gate is deliberately exact
    (``type(e) is int``) and runs at C speed via ``set(map(type, items))``
    — it must exclude ``bool`` (NumPy would coerce ``True`` to ``1`` and
    lose element identity downstream) and ``np.integer`` (the scalar
    ``mix64`` path rejects those, and the batch must fail identically).
    Out-of-int64 ints return None too; the scalar hasher handles them.

    Args:
        hasher: The shared :class:`UnitHasher`.
        items: A sequence of elements (materialized, not a generator).

    Returns:
        A float64 array matching ``[hasher.unit(e) for e in items]``
        element-for-element, or None when the batch must take the scalar
        loop.
    """
    if (
        hasher.algorithm != "mix64"
        or not items
        or set(map(type, items)) != {int}
    ):
        return None
    try:
        ids = np.array(items, dtype=np.int64)
    except OverflowError:
        return None
    return unit_hash_array(ids, hasher.seed)


def unit_hash_batch(hasher: UnitHasher, items: Sequence[Element]) -> list[float]:
    """Unit hashes for a whole batch, vectorized when the hasher allows.

    Element-for-element equal to ``[hasher.unit(e) for e in items]``,
    including the scalar path's error behaviour (e.g. ``mix64``
    rejecting non-integers with TypeError).  See
    :func:`unit_hash_vector` for the vectorization gate.
    """
    hashes = unit_hash_vector(hasher, items)
    if hashes is not None:
        return hashes.tolist()
    return hasher.unit_many(items)


class SeededHashFamily:
    """A family of independent :class:`UnitHasher` members.

    Member seeds are derived from the master seed through fmix64 so that
    consecutive indices yield statistically unrelated hash functions.

    Args:
        master_seed: Seed of the family.
        algorithm: Algorithm passed through to each member.
    """

    __slots__ = ("master_seed", "algorithm")

    def __init__(self, master_seed: int = 0, algorithm: str = "murmur2") -> None:
        if algorithm not in HASH_ALGORITHMS:
            raise ValueError(
                f"unknown hash algorithm {algorithm!r}; expected one of {HASH_ALGORITHMS}"
            )
        self.master_seed = int(master_seed)
        self.algorithm = algorithm

    def member(self, index: int) -> UnitHasher:
        """Return the ``index``-th member of the family (deterministic)."""
        if index < 0:
            raise ValueError("hash family index must be non-negative")
        seed = fmix64((self.master_seed << 16) ^ (index * 0x9E3779B97F4A7C15))
        return UnitHasher(seed=seed, algorithm=self.algorithm)

    def members(self, count: int) -> Iterator[UnitHasher]:
        """Yield the first ``count`` members."""
        for i in range(count):
            yield self.member(i)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SeededHashFamily(master_seed={self.master_seed}, "
            f"algorithm={self.algorithm!r})"
        )
