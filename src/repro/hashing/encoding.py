"""Canonical element-to-bytes encoding.

Stream elements may be strings (IP pairs, email pairs), integers (synthetic
ids), bytes, or tuples of those.  Hash functions need a stable byte
representation that is injective across the supported types, so that e.g.
the int ``1`` and the string ``"1"`` never collide by construction.

The encoding is a one-byte type tag followed by a type-specific payload.
Tuples are encoded recursively with length-prefixed components.
"""

from __future__ import annotations

from typing import Union

Element = Union[int, str, bytes, tuple["Element", ...]]
"""Type alias for the element types accepted by the samplers
(recursively: tuples of elements are elements)."""

_TAG_INT = b"\x01"
_TAG_STR = b"\x02"
_TAG_BYTES = b"\x03"
_TAG_TUPLE = b"\x04"

__all__ = ["Element", "encode_element"]


def encode_element(element: Element) -> bytes:
    """Encode ``element`` into a canonical, injective byte string.

    Args:
        element: An ``int`` (arbitrary precision, may be negative), ``str``,
            ``bytes``, or a (possibly nested) tuple of those.

    Returns:
        A byte string such that distinct elements (across all supported
        types) map to distinct byte strings.

    Raises:
        TypeError: If the element type is not supported.
    """
    if isinstance(element, bool):
        # bool is an int subclass; refuse rather than silently aliasing 0/1.
        raise TypeError("bool elements are ambiguous; use int 0/1 explicitly")
    if isinstance(element, int):
        # Two's-complement-ish minimal encoding: sign byte + magnitude.
        sign = b"\x01" if element >= 0 else b"\x00"
        mag = abs(element)
        payload = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "little")
        return _TAG_INT + sign + payload
    if isinstance(element, str):
        return _TAG_STR + element.encode("utf-8")
    if isinstance(element, (bytes, bytearray)):
        return _TAG_BYTES + bytes(element)
    if isinstance(element, tuple):
        parts = [_TAG_TUPLE, len(element).to_bytes(4, "little")]
        for item in element:
            enc = encode_element(item)
            parts.append(len(enc).to_bytes(4, "little"))
            parts.append(enc)
        return b"".join(parts)
    raise TypeError(
        f"unsupported element type {type(element).__name__!r}; "
        "expected int, str, bytes, or tuple thereof"
    )
