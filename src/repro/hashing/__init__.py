"""Hashing substrate: MurmurHash implementations and unit-interval mapping.

The sampling algorithms in :mod:`repro.core` consume a single abstraction,
:class:`~repro.hashing.unit.UnitHasher`, which maps arbitrary stream
elements to floats in ``[0, 1)``.  Everything else in this subpackage
supports that: canonical byte encodings and from-scratch MurmurHash2/3.
"""

from .encoding import Element, encode_element
from .murmur import (
    fmix64,
    fmix64_array,
    murmur2_32,
    murmur2_64a,
    murmur3_32,
    murmur3_128_x64,
)
from .unit import (
    HASH_ALGORITHMS,
    SeededHashFamily,
    UnitHasher,
    unit_hash_array,
    unit_hash_batch,
    unit_hash_vector,
)

__all__ = [
    "Element",
    "encode_element",
    "murmur2_32",
    "murmur2_64a",
    "murmur3_32",
    "murmur3_128_x64",
    "fmix64",
    "fmix64_array",
    "UnitHasher",
    "SeededHashFamily",
    "HASH_ALGORITHMS",
    "unit_hash_array",
    "unit_hash_batch",
    "unit_hash_vector",
]
