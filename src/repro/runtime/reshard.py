"""Elastic re-partitioning of sharded group state (snapshot-v2 level).

A :class:`~repro.runtime.sharded.ShardedSampler` owns S coordinator
groups over hash-partitioned key spaces.  Because every group shares the
*same sampling hash* — the property that makes the query-time bottom-s
merge exact — the retained per-group state can be re-partitioned under a
new group count **without resampling**: each retained element already
carries its true sampling hash, and the routing layer is a pure function
of (seed, algorithm, element), so re-routing a group's entries to S' new
groups reproduces exactly the state those entries would occupy had the
sampler always had S' groups.

Why the merged query stays exact (at the reshard instant *and* under
continued ingest):

* **Infinite family** (``infinite`` / ``broadcast`` / ``caching``): the
  union of the old groups' bottom-s stores is a superset of the global
  bottom-s.  Routing that union and keeping each new group's bottom-s
  preserves the superset property, so the facade merge — the s smallest
  of the union — is unchanged.  New site thresholds are set to their new
  group's store threshold, the same "any value >= the true u is safe"
  rule the soft snapshot-restore path uses.
* **Windowed family** (``sliding*``): an entry pruned by s-dominance had
  s smaller-hash, later-expiry entries in its old group, so while it is
  live it is never in the *global* bottom-s — re-partitioning the
  surviving entries therefore preserves the facade-level merge at every
  future slot, even though a single group's restricted sample may differ
  from a from-scratch run's.  Survivor sets are insertion-order
  independent (``SortedDominanceSet.observe`` keeps the maximal expiry
  per element and prunes to the unique minimal survivor set), so the new
  coordinator simply observes every routed live entry.  Site protocol
  fields reset to their safe report-everything states (``u_local = 1``,
  no suppressed feedback), which costs a transient burst of extra
  reports and loses nothing.

Aggregate observability counters (message stats, ``reports_received``,
``reports_sent``, ...) are preserved as *totals*: the sums land on new
group 0 (site-indexed counters on group 0's matching site) and every
other group starts at zero, so the facade-level aggregates are unchanged
by a reshard.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.protocol import SamplerConfig, decode_expiry, revive_element
from ..errors import ConfigurationError
from ..streams.partition import HashDistributor

__all__ = ["repartition_group_states"]

#: Variants whose group state this module knows how to re-partition
#: (the shardable registry, spelled locally to avoid an import cycle
#: with :mod:`repro.core.api`).
_INFINITE_FAMILY = ("infinite", "broadcast", "caching")
_WINDOWED_FAMILY = ("sliding", "sliding-feedback", "sliding-local-push")


def _base_variant(config: SamplerConfig) -> str:
    name = config.variant
    return name.split(":", 1)[1] if name.startswith("sharded:") else name


def _zero_network() -> dict[str, Any]:
    return {
        "total_messages": 0,
        "total_bytes": 0,
        "site_to_coordinator": 0,
        "coordinator_to_site": 0,
        "by_kind": {},
    }


def _summed_network(states: list[dict[str, Any]]) -> dict[str, Any]:
    total = _zero_network()
    by_kind: dict[str, int] = {}
    for state in states:
        network = state["network"]
        for key in (
            "total_messages",
            "total_bytes",
            "site_to_coordinator",
            "coordinator_to_site",
        ):
            total[key] += int(network.get(key, 0))
        for name, count in network.get("by_kind", {}).items():
            by_kind[name] = by_kind.get(name, 0) + int(count)
    total["by_kind"] = by_kind
    return total


def _validate_group_states(
    group_states: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Structural up-front validation: every group state must be a full
    snapshot-v2 group wrapper before anything is rebuilt from it."""
    if not isinstance(group_states, list) or not group_states:
        raise ConfigurationError(
            "snapshot must carry a non-empty list of shard group states"
        )
    for g, state in enumerate(group_states):
        if not isinstance(state, dict):
            raise ConfigurationError(
                f"shard group {g} state is not a dict: {type(state).__name__}"
            )
        for key in ("protocol", "network", "system"):
            if not isinstance(state.get(key), dict):
                raise ConfigurationError(
                    f"shard group {g} state is missing the {key!r} section"
                )
    return group_states


def repartition_group_states(
    group_states: list[dict[str, Any]],
    config: SamplerConfig,
    new_shards: int,
) -> list[dict[str, Any]]:
    """Re-partition S captured group states into ``new_shards`` states.

    Args:
        group_states: The ``"groups"`` list of a sharded snapshot — one
            ``state_dict()`` per old group, any old group count >= 1.
        config: The facade's config (supplies the shared routing recipe:
            seed, algorithm, sample size, site count; ``variant`` may be
            the ``sharded:<base>`` registry key or the bare base name).
        new_shards: The target group count S' (>= 1).

    Returns:
        ``new_shards`` group state dicts, loadable by freshly built base
        groups via ``group.load_state``.

    Raises:
        ConfigurationError: For a malformed snapshot, an unsupported
            variant, or ``new_shards < 1``.
    """
    new_shards = int(new_shards)
    if new_shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {new_shards}")
    group_states = _validate_group_states(group_states)
    base = _base_variant(config)
    # Late import: sharded.py lazily imports this module, so the salt can
    # be imported here without a cycle at module-load time.
    from .sharded import _SHARD_SALT

    router = HashDistributor(
        new_shards,
        seed=config.seed,
        algorithm=config.algorithm,
        salt=_SHARD_SALT,
    )
    systems = [state["system"] for state in group_states]
    if base in _INFINITE_FAMILY:
        new_systems = _repartition_infinite_family(
            base, systems, config, router, new_shards
        )
    elif base in _WINDOWED_FAMILY:
        new_systems = _repartition_windowed_family(
            base, systems, config, router, new_shards
        )
    else:
        raise ConfigurationError(
            f"variant {config.variant!r} does not support re-partitioning"
        )
    protocol = dict(group_states[0]["protocol"])
    return [
        {
            "protocol": dict(protocol),
            "network": (
                _summed_network(group_states) if g == 0 else _zero_network()
            ),
            "system": system,
        }
        for g, system in enumerate(new_systems)
    ]


# ---------------------------------------------------------------------------
# Infinite family: route the bottom-s stores, soft-reset site thresholds
# ---------------------------------------------------------------------------


def _repartition_infinite_family(
    base: str,
    systems: list[dict[str, Any]],
    config: SamplerConfig,
    router: HashDistributor,
    new_shards: int,
) -> list[dict[str, Any]]:
    s = config.sample_size
    k = config.num_sites
    routed: list[list[tuple[float, Any]]] = [[] for _ in range(new_shards)]
    reports_received = 0
    reports_accepted = 0
    broadcasts_sent = 0
    suppressed = 0
    for system in systems:
        try:
            rows = system["sample"]
        except KeyError as exc:
            raise ConfigurationError(
                f"malformed {base} group state: missing {exc}"
            ) from exc
        for h, element in rows:
            g = router.assign_one(revive_element(element))
            routed[g].append((float(h), element))
        reports_received += int(system.get("reports_received", 0))
        reports_accepted += int(system.get("reports_accepted", 0))
        broadcasts_sent += int(system.get("broadcasts_sent", 0))
        if base == "caching":
            suppressed += sum(
                int(site.get("suppressed", 0))
                for site in system.get("sites", [])
            )
    out: list[dict[str, Any]] = []
    for g in range(new_shards):
        # Keep each new group's bottom-s: ascending by hash, truncated to
        # capacity.  Elements are distinct across groups by construction,
        # so no dedup pass is needed.
        routed[g].sort(key=lambda row: row[0])
        rows = routed[g][:s]
        threshold = rows[-1][0] if len(rows) == s else 1.0
        first = g == 0
        system_state: dict[str, Any] = {
            "sample": [[h, element] for h, element in rows],
            "reports_received": reports_received if first else 0,
        }
        if base == "broadcast":
            system_state["site_thresholds"] = [threshold] * k
            system_state["broadcasts_sent"] = broadcasts_sent if first else 0
        elif base == "caching":
            system_state["reports_accepted"] = reports_accepted if first else 0
            system_state["sites"] = [
                {
                    "u_local": threshold,
                    "cache": [],
                    "suppressed": suppressed if first and i == 0 else 0,
                }
                for i in range(k)
            ]
        else:  # infinite
            system_state["site_thresholds"] = [threshold] * k
            system_state["reports_accepted"] = reports_accepted if first else 0
        out.append(system_state)
    return out


# ---------------------------------------------------------------------------
# Windowed family: route live dominance entries, reset site protocol state
# ---------------------------------------------------------------------------


def _route_live_entries(
    rows: list[list[Any]],
    clock: int,
    router: HashDistributor,
    buckets: list[list[list[Any]]],
) -> None:
    """Route every still-live ``[element, expiry, hash]`` row."""
    for element, expiry, h in rows:
        expiry = int(expiry)
        if expiry <= clock:
            continue
        g = router.assign_one(revive_element(element))
        buckets[g].append([element, expiry, float(h)])


def _repartition_windowed_family(
    base: str,
    systems: list[dict[str, Any]],
    config: SamplerConfig,
    router: HashDistributor,
    new_shards: int,
) -> list[dict[str, Any]]:
    k = config.num_sites
    clock_key = "now" if base == "sliding-local-push" else "clock"
    try:
        clock = max(int(system[clock_key]) for system in systems)
        site_lists = [system["sites"] for system in systems]
        coord_states = [system["coordinator"] for system in systems]
    except KeyError as exc:
        raise ConfigurationError(
            f"malformed {base} group state: missing {exc}"
        ) from exc
    # Everything live lands at the new coordinators (survivor sets are
    # order-independent, and a coordinator knowing *more* live entries
    # than a from-scratch run is always safe — queries take the bottom-s
    # of the live set either way).  Site candidate sets keep physical
    # locality: new group g's site i receives only entries that lived at
    # some old group's site i.
    coord_entries: list[list[list[Any]]] = [[] for _ in range(new_shards)]
    site_entries: list[list[list[list[Any]]]] = [
        [[] for _ in range(k)] for _ in range(new_shards)
    ]
    reports_received = 0
    reports_sent = [0] * k
    fallbacks = [0] * k
    paper_mode = base == "sliding" and coord_states[0].get("entries") is None
    for coord_state, sites in zip(coord_states, site_lists):
        reports_received += int(coord_state.get("reports_received", 0))
        rows = coord_state.get("entries")
        if rows is not None:
            _route_live_entries(rows, clock, router, coord_entries)
        elif base == "sliding":
            # Paper-mode coordinator: the single retained (e*, u*, t*)
            # tuple is its whole candidate state.
            element, u_star, expiry = coord_state["sample"]
            stamp = decode_expiry(expiry)
            if element is not None and stamp > clock:
                g = router.assign_one(revive_element(element))
                coord_entries[g].append([element, int(stamp), float(u_star)])
        if len(sites) != k:
            raise ConfigurationError(
                f"malformed {base} group state: expected {k} sites, "
                f"got {len(sites)}"
            )
        for i, site_state in enumerate(sites):
            _route_live_entries(
                site_state.get("entries", []),
                clock,
                router,
                [bucket[i] for bucket in site_entries],
            )
            reports_sent[i] += int(site_state.get("reports_sent", 0))
            fallbacks[i] += int(site_state.get("fallbacks", 0))
    out: list[dict[str, Any]] = []
    for g in range(new_shards):
        # The new coordinator observes every live entry routed to its key
        # space — its own plus the sites' — so its candidate structure is
        # a superset of what any report schedule could have built.
        all_entries = list(coord_entries[g])
        for i in range(k):
            all_entries.extend(site_entries[g][i])
        first = g == 0
        if base == "sliding":
            out.append(
                _sliding_group_state(
                    all_entries,
                    site_entries[g],
                    paper_mode,
                    clock,
                    reports_received if first else 0,
                    reports_sent if first else [0] * k,
                    fallbacks if first else [0] * k,
                )
            )
        elif base == "sliding-feedback":
            out.append(
                {
                    "clock": clock,
                    "coordinator": {
                        "reports_received": reports_received if first else 0,
                        "entries": all_entries,
                    },
                    "sites": [
                        {
                            "entries": site_entries[g][i],
                            # Report-everything reset: the first reply
                            # re-establishes the genuine (u, valid_until).
                            "u_local": 1.0,
                            "valid_until": None,  # encode_expiry(inf)
                            "reports_sent": reports_sent[i] if first else 0,
                            "fallbacks": fallbacks[i] if first else 0,
                        }
                        for i in range(k)
                    ],
                }
            )
        else:  # sliding-local-push
            out.append(
                {
                    "now": clock,
                    "coordinator": {
                        "reports_received": reports_received if first else 0,
                        "entries": all_entries,
                    },
                    "sites": [
                        {
                            "entries": site_entries[g][i],
                            # Empty push memory: the next local observe
                            # re-pushes its bottom-s (idempotent at the
                            # coordinator, which already has the entries).
                            "reported": [],
                            "reports_sent": reports_sent[i] if first else 0,
                        }
                        for i in range(k)
                    ],
                }
            )
    return out


def _min_hash_entry(entries: list[list[Any]]) -> Optional[list[Any]]:
    best: Optional[list[Any]] = None
    for entry in entries:
        if best is None or entry[2] < best[2]:
            best = entry
    return best


def _sliding_group_state(
    all_entries: list[list[Any]],
    site_entries: list[list[list[Any]]],
    paper_mode: bool,
    clock: int,
    reports_received: int,
    reports_sent: list[int],
    fallbacks: list[int],
) -> dict[str, Any]:
    """One new s = 1 sliding group: exact mode keeps the full candidate
    staircase (the query refreshes the cached tuple from it); paper mode
    keeps only the minimum-hash live entry, the best its single-tuple
    coordinator can represent."""
    if paper_mode:
        best = _min_hash_entry(all_entries)
        sample = (
            [None, 1.0, -1.0]
            if best is None
            else [best[0], best[2], float(best[1])]
        )
        coordinator = {
            "reports_received": reports_received,
            "sample": sample,
            "entries": None,
        }
    else:
        coordinator = {
            "reports_received": reports_received,
            # Stale-expired cache tuple: the next query recomputes it
            # from the candidate entries.
            "sample": [None, 1.0, -1.0],
            "entries": all_entries,
        }
    return {
        "clock": clock,
        "coordinator": coordinator,
        "sites": [
            {
                "entries": entries,
                # Report-everything, never-fallback reset: u = 1 accepts
                # every arrival, an infinite local expiry never triggers
                # the fallback path.
                "sample_element": None,
                "u_local": 1.0,
                "sample_expiry": None,  # encode_expiry(inf)
                "reports_sent": sent,
                "fallbacks": fell,
            }
            for entries, sent, fell in zip(
                site_entries, reports_sent, fallbacks
            )
        ],
    }
