"""Topology: the wiring layer every coordinator–site system shares.

All of the paper's protocols are instances of one runtime pattern — ``k``
sites and one coordinator exchanging counted messages over a transport.
Historically every system facade re-implemented that wiring (build a
:class:`~repro.netsim.network.Network`, register the coordinator at
:data:`~repro.netsim.message.COORDINATOR`, register each site at its
``site_id``) and hand-rolled its own message-cost accessors, which let the
copies drift.  :class:`Topology` owns it once:

* **Node registration and addressing.**  :meth:`Topology.build` validates
  the site count, constructs the sites through a factory, and registers
  every node on the transport.  No facade touches
  ``network.register`` anymore.
* **Pluggable transport.**  Any :class:`~repro.netsim.network.Network`
  (including :class:`~repro.netsim.delayed.DelayedNetwork`) can be passed
  in; the default is the paper's synchronous zero-delay network.  A
  transport swapped in later (``DelayedNetwork.rewire``) is re-adopted
  through :meth:`adopt_network`, keeping the topology canonical.
* **Canonical message stats.**  :meth:`message_stats` /
  :attr:`total_messages` are THE cost counters; the
  :class:`~repro.core.protocol.Sampler` base class reads them through the
  topology, so no facade keeps its own copy.  Multi-network facades
  (with-replacement copies, sharded coordinator groups) aggregate with
  :func:`merge_message_stats`.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # the runtime import happens lazily at call time
    from ..core.protocol import SamplerStats

from ..errors import ConfigurationError
from ..netsim.message import COORDINATOR
from ..netsim.network import MessageStats, Network

__all__ = ["Topology", "aggregate_sampler_stats", "merge_message_stats"]


class Topology:
    """One coordinator + ``k`` addressed sites on a shared transport.

    Args:
        coordinator: The coordinator node (handles protocol messages).
        sites: Site nodes; each must expose a ``site_id`` used as its
            network address.
        network: Transport to wire the nodes onto (default: a fresh
            synchronous :class:`~repro.netsim.network.Network`).

    Raises:
        ConfigurationError: If ``sites`` is empty.
        ProtocolError: If two nodes claim the same address.
    """

    __slots__ = ("network", "coordinator", "sites")

    def __init__(
        self,
        coordinator: Any,
        sites: Iterable[Any],
        network: Optional[Network] = None,
    ) -> None:
        sites = list(sites)
        if not sites:
            raise ConfigurationError("num_sites must be >= 1, got 0")
        self.network = Network() if network is None else network
        self.coordinator = coordinator
        self.sites = sites
        self.network.register(COORDINATOR, coordinator)
        for site in sites:
            self.network.register(site.site_id, site)

    @classmethod
    def build(
        cls,
        coordinator: Any,
        site_factory: Callable[[int], Any],
        num_sites: int,
        network: Optional[Network] = None,
    ) -> "Topology":
        """Validate ``num_sites`` and wire ``site_factory(0..k-1)`` up.

        This is the constructor the system facades use::

            topology = Topology.build(
                coordinator=InfiniteWindowCoordinator(s),
                site_factory=lambda i: InfiniteWindowSite(i, hasher),
                num_sites=k,
            )

        Raises:
            ConfigurationError: If ``num_sites < 1``.
        """
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        return cls(coordinator, [site_factory(i) for i in range(num_sites)], network)

    # -- addressing ----------------------------------------------------------

    @property
    def num_sites(self) -> int:
        """Number of sites k."""
        return len(self.sites)

    def site_at(self, site_id: int) -> Any:
        """The site registered at ``site_id`` (0-based).

        Raises:
            ConfigurationError: For an out-of-range id.
        """
        if not 0 <= site_id < len(self.sites):
            raise ConfigurationError(
                f"site_id must be in [0, {len(self.sites)}), got {site_id}"
            )
        return self.sites[site_id]

    def adopt_network(self, network: Network) -> Network:
        """Make ``network`` the canonical transport (nodes already moved).

        Used when a transport is swapped underneath a live system
        (:meth:`~repro.netsim.delayed.DelayedNetwork.rewire`); the caller
        is responsible for having registered the nodes on the new
        transport.
        """
        self.network = network
        return network

    # -- canonical cost accounting -------------------------------------------

    def message_stats(self) -> MessageStats:
        """THE message-cost counters for this coordinator group."""
        return self.network.stats

    @property
    def total_messages(self) -> int:
        """Total messages exchanged so far (the paper's cost metric)."""
        return self.network.stats.total_messages


def merge_message_stats(parts: Iterable[MessageStats]) -> MessageStats:
    """Aggregate message counters across independent transports.

    Used by facades composed of several coordinator groups — the
    with-replacement samplers (one network per parallel copy) and
    :class:`~repro.runtime.sharded.ShardedSampler` (one per shard group).

    Returns:
        A fresh :class:`~repro.netsim.network.MessageStats` holding the
        field-wise sums (``by_kind`` merged per kind).
    """
    merged = MessageStats()
    by_kind: Counter[Any] = merged.by_kind
    for stats in parts:
        merged.total_messages += stats.total_messages
        merged.total_bytes += stats.total_bytes
        merged.site_to_coordinator += stats.site_to_coordinator
        merged.coordinator_to_site += stats.coordinator_to_site
        by_kind.update(stats.by_kind)
    return merged


def aggregate_sampler_stats(
    parts: Iterable[Any], slots_processed: int
) -> "SamplerStats":
    """Uniform cost counters for a sampler composed of independent parts.

    ``parts`` are samplers sharing one physical site roster (each runs
    one sub-site per physical site): message counters sum via
    :func:`merge_message_stats` and ``per_site_memory`` sums index-wise.
    Shared by the with-replacement facades (parts = copies) and
    :class:`~repro.runtime.sharded.ShardedSampler` (parts = groups).
    """
    # Imported here, not at module top: the runtime layer must stay
    # importable while repro.core is still mid-initialization (the core
    # facades import this module from inside their own import).
    from ..core.protocol import SamplerStats

    parts = list(parts)
    messages = merge_message_stats(part.message_stats() for part in parts)
    per_site = [0] * parts[0].num_sites
    for part in parts:
        for i, size in enumerate(part.stats().per_site_memory):
            per_site[i] += size
    return SamplerStats(
        messages_total=messages.total_messages,
        messages_to_coordinator=messages.site_to_coordinator,
        messages_to_sites=messages.coordinator_to_site,
        bytes_total=messages.total_bytes,
        per_site_memory=tuple(per_site),
        slots_processed=slots_processed,
    )
