"""Pluggable execution backends for the sharded scale-out ingest path.

:class:`~repro.runtime.sharded.ShardedSampler` runs S independent
coordinator groups over disjoint key spaces.  Until this module existed,
the facade always ingested those groups **sequentially** in-process and
only *modeled* parallelism through per-group timers (the simulated
critical path).  An :class:`ExecutionBackend` makes the ingest strategy a
configuration choice:

* :class:`SerialExecutor` — today's behavior and the default: every
  group's sub-batch is delivered in-process, run-major, sharing one
  warmed sampling-hash column.  ``critical_path_seconds`` stays a
  *simulated* quantity (max of per-group serial timers).
* :class:`ProcessExecutor` — a ``multiprocessing`` pool of ``W`` worker
  processes.  Each shard group's column slices (or tuple sub-batches)
  are shipped to a worker via pickle together with the group's
  construction recipe (:class:`~repro.core.protocol.SamplerConfig`) and
  full logical state (``state_dict`` — the snapshot-v2 substrate, so the
  cores need no new serialization code).  The worker rebuilds the group,
  replays its ``advance``/``observe_batch`` plan, and returns the new
  state plus its *measured* ingest wall-clock; the parent merges the
  state back and accumulates the measurement, making
  ``critical_path_seconds`` a measured quantity under real parallelism.

Both backends produce **bit-identical** results: the per-group plans are
built by the same routing pass, groups share no state, and the worker
replays exactly the serial per-group delivery order (the property suite
in ``tests/test_properties.py`` pins ``sample()``, ``stats()``, and the
full ``state_dict`` across backends for every ``sharded:*`` variant).

Two documented differences, neither visible on a valid stream:

* A non-monotone slot stamp raises *before* any delivery under
  :class:`ProcessExecutor` (plans are validated up front), while the
  serial generic loop has already delivered the earlier runs by the time
  it raises.
* Groups rewired onto a non-default transport (``DelayedNetwork``) are
  rebuilt by the workers on the config's default synchronous network —
  the same limitation snapshot/restore already has.  Keep the serial
  backend for delayed-transport studies.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Optional

from ..core.events import EventBatch
from ..core.protocol import EXECUTORS, SamplerConfig
from ..errors import ConfigurationError

if TYPE_CHECKING:  # sharded imports this module; annotate without a cycle
    from .sharded import ShardedSampler

__all__ = [
    "ExecutionBackend",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
]

#: One group's replay plan: ``(slot, None)`` advances, ``(None, batch)``
#: delivers (a tuple sub-batch or a columnar sub-run).
GroupPlan = list[tuple[Optional[int], Any]]

#: What ships to a worker: ``(config_dict, state_dict, plan)``.
WorkerPayload = tuple[dict[str, Any], dict[str, Any], GroupPlan]


def _ingest_group(payload: WorkerPayload) -> tuple[dict[str, Any], float]:
    """Worker entry point: rebuild one group, replay its plan.

    ``payload`` is ``(config_dict, state, tasks)`` where ``tasks`` is the
    group's ``(slot, None) | (None, batch)`` plan.  Returns the group's
    new ``state_dict`` and the measured ingest seconds (timer starts
    after the rebuild, so the measurement is the group's actual compute,
    not the serialization overhead).
    """
    # Lazy import: repro.core.api lazily imports this runtime package's
    # sharded module, so the dependency must not exist at import time.
    from ..core.api import make_sampler

    config_dict, state, tasks = payload
    group = make_sampler(SamplerConfig(**config_dict))
    group.load_state(state)
    started = time.perf_counter()
    for slot, batch in tasks:
        if slot is not None:
            group.advance(slot)
        else:
            group.observe_batch(batch)
    elapsed = time.perf_counter() - started
    return group.state_dict(), elapsed


def _noop(_: int) -> None:
    """Pool warm-up task (forces the worker processes to exist)."""


class ExecutionBackend(ABC):
    """How a :class:`~repro.runtime.sharded.ShardedSampler` ingests.

    One backend instance may be shared between samplers (it holds no
    per-sampler state); tests reuse a single :class:`ProcessExecutor`
    pool across many short-lived samplers this way.
    """

    #: Registry-style name (``config.executor``).
    name: str

    @abstractmethod
    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        """Deliver a tuple-event batch to the groups; returns the count."""

    @abstractmethod
    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        """Deliver a columnar :class:`~repro.core.events.EventBatch`."""

    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""


class SerialExecutor(ExecutionBackend):
    """In-process sequential ingest — the default backend.

    Delegates straight back to the facade's run-major delivery loops
    (vectorized shard split, shared warmed hash column), exactly the
    pre-backend behavior.  Per-group timers accumulate around each
    group's in-process delivery, so ``critical_path_seconds`` *simulates*
    the slowest group of a parallel deployment.
    """

    name = "serial"

    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        from ..core.protocol import iter_event_runs

        for slot, run in iter_event_runs(events):
            if slot is not None:
                sharded.advance(slot)
            sharded._deliver_batch(run)
        return len(events)

    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        for slot, run in batch.slot_runs():
            if slot is not None:
                sharded.advance(slot)
            sharded._deliver_columns(run)
        return len(batch)


class ProcessExecutor(ExecutionBackend):
    """Multi-core ingest over a lazily created ``multiprocessing`` pool.

    Args:
        workers: Pool size ``W``; ``0`` picks ``min(8, cpu_count)``.

    Each batch call builds the per-group plans up front (one vectorized
    routing pass, slot monotonicity validated before anything ships),
    fans the non-empty plans out to the pool, and merges the returned
    group states.  Per-call cost is one state round-trip per group, so
    the backend pays off for large batches — the intended shape of the
    scale-out pipeline — and is pure overhead for event-at-a-time
    ingest (single ``observe`` calls stay in-process).

    Raises:
        ConfigurationError: For a negative ``workers``.
    """

    name = "process"

    def __init__(self, workers: int = 0) -> None:
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self.workers
            )
        return self._pool

    def warmup(self) -> None:
        """Force the worker processes into existence (benchmark hygiene:
        keeps pool start-up out of timed ingest windows)."""
        self._ensure_pool().map(_noop, range(self.workers))

    def close(self) -> None:
        """Terminate the pool (idempotent); the next ingest re-creates it."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict[str, int]:
        # The pool is an OS resource owned by this process; a pickled
        # executor (snapshot tooling, deepcopy of a ShardedSampler
        # facade) carries only its configuration and re-creates a pool
        # lazily on first ingest.
        return {"workers": self.workers}

    def __setstate__(self, state: dict[str, int]) -> None:
        self.workers = state["workers"]
        self._pool = None

    # -- ingest --------------------------------------------------------------

    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        plans, last_slot, advances = sharded._plan_events(events)
        self._run(sharded, plans, last_slot, advances)
        return len(events)

    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        plans, last_slot, advances = sharded._plan_columns(batch)
        self._run(sharded, plans, last_slot, advances)
        return len(batch)

    def _run(
        self,
        sharded: "ShardedSampler",
        plans: list[GroupPlan],
        last_slot: Optional[int],
        advances: int,
    ) -> None:
        payloads = [
            (g, (group.config.to_dict(), group.state_dict(), tasks))
            for g, (group, tasks) in enumerate(zip(sharded.groups, plans))
            if tasks
        ]
        if payloads:
            results = self._ensure_pool().map(
                _ingest_group, [payload for _, payload in payloads], chunksize=1
            )
            for (g, _), (state, elapsed) in zip(payloads, results):
                sharded.groups[g].load_state(state)
                sharded.group_ingest_seconds[g] += elapsed
        sharded._commit_slots(last_slot, advances)


def make_executor(config: SamplerConfig) -> ExecutionBackend:
    """Build the backend a :class:`SamplerConfig` asks for.

    Raises:
        ConfigurationError: For an unknown ``config.executor`` name.
    """
    if config.executor == "serial":
        return SerialExecutor()
    if config.executor == "process":
        return ProcessExecutor(config.workers)
    raise ConfigurationError(
        f"unknown executor {config.executor!r}; expected one of {EXECUTORS}"
    )
